//! `limac` — command-line runner for LIMA scripts.
//!
//! ```text
//! limac run <script.dml> [options]       execute a script
//!     --config base|lt|ltd|lima          LIMA configuration (default lima)
//!     --policy lru|dag-height|cost-size|hybrid
//!     --budget-mb <N>                    cache budget (default 512)
//!     --dedup                            enable lineage deduplication
//!     --no-compiler-assist               disable §4.4 rewrites/unmarking
//!     --stats                            print LIMA statistics after the run
//!     --lineage <VAR>                    print VAR's lineage log after the run
//!     --seed <N>                         system-seed base (reproducible runs)
//!     --timeout-ms <N>                   abort the run after N milliseconds
//!     --trace-out <FILE>                 write a Chrome trace_event JSON file
//!     --trace-sample <N>                 keep 1-in-N high-frequency events
//!     --cost-top <K>                     per-lineage-item cost report (top K)
//!     --quiet                            suppress script print() output
//!
//! limac stats <script.dml> [run options] [--format prom|text]
//!     execute a script, then print its statistics (Prometheus text
//!     exposition by default) to stdout
//!
//! limac lineage-diff <a.lineage> <b.lineage>
//!     compare two lineage logs (paper Example 3's debugging workflow)
//!
//! limac recompute <trace.lineage>
//!     reconstruct and re-execute a lineage log; `read` paths load from disk
//! ```
//!
//! Scripts `read(...)` matrix text/CSV files from disk and `write(...)`
//! results (plus `<path>.lineage` logs) back.
//!
//! Failures exit with the same typed codes the `lima-client` crate maps for
//! `limad` responses, so scripts driving either surface branch identically:
//! 4 = deadline exceeded, 5 = cancelled, 6 = resource exhausted, 7 =
//! overloaded, 2 = usage, 1 = everything else. The stderr line is
//! machine-readable: `limac: error=<code> <message>`.

use lima::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

/// A CLI failure: a typed code (shared with `lima_client::ErrorCode`) plus a
/// human message. Untyped string errors map to `Internal` (exit 1).
struct CliError {
    code: ErrorCode,
    msg: String,
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError {
            code: ErrorCode::Internal,
            msg,
        }
    }
}

/// The exit-code mapping for runtime failures, shared in spirit (and in
/// numbers, via [`ErrorCode::exit_code`]) with the `limad` wire protocol.
fn runtime_code(e: &RuntimeError) -> ErrorCode {
    match e {
        RuntimeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        RuntimeError::Cancelled => ErrorCode::Cancelled,
        RuntimeError::ResourceExhausted(_) => ErrorCode::ResourceExhausted,
        _ => ErrorCode::Runtime,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("lineage-diff") => cmd_lineage_diff(&args[1..]).map_err(CliError::from),
        Some("recompute") => cmd_recompute(&args[1..]).map_err(CliError::from),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::from(2);
        }
        Some(other) => Err(CliError::from(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("limac: error={} {}", e.code.as_str(), e.msg);
            ExitCode::from(e.code.exit_code())
        }
    }
}

const USAGE: &str = "usage:\n  limac run <script> [--config base|lt|ltd|lima] [--policy P] \
[--budget-mb N] [--dedup] [--no-compiler-assist] [--stats] [--lineage VAR] [--seed N] \
[--timeout-ms N] [--trace-out FILE] [--trace-sample N] [--cost-top K] [--quiet]\n  \
limac stats <script> [run options] [--format prom|text]\n  \
limac lineage-diff <a.lineage> <b.lineage>\n  limac recompute <trace.lineage>\n";

/// Parses the `run` option list into a configuration.
fn parse_run_options(args: &[String]) -> Result<(String, LimaConfig, RunFlags), String> {
    let mut script_path = None;
    let mut config = LimaConfig::lima();
    let mut flags = RunFlags::default();
    let mut i = 0;
    let take_value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                let v = take_value(args, &mut i, "--config")?;
                config = match v.as_str() {
                    "base" => LimaConfig::base(),
                    "lt" => LimaConfig::tracing_only(),
                    "ltd" => LimaConfig::tracing_dedup(),
                    "lima" => LimaConfig::lima(),
                    other => return Err(format!("unknown config '{other}'")),
                };
            }
            "--policy" => {
                let v = take_value(args, &mut i, "--policy")?;
                config.policy = match v.as_str() {
                    "lru" => EvictionPolicy::Lru,
                    "dag-height" => EvictionPolicy::DagHeight,
                    "cost-size" => EvictionPolicy::CostSize,
                    "hybrid" => EvictionPolicy::Hybrid,
                    other => return Err(format!("unknown policy '{other}'")),
                };
            }
            "--budget-mb" => {
                let v = take_value(args, &mut i, "--budget-mb")?;
                let mb: usize = v.parse().map_err(|_| format!("bad budget '{v}'"))?;
                config.budget_bytes = mb * 1024 * 1024;
            }
            "--dedup" => config.dedup = true,
            "--no-compiler-assist" => config.compiler_assist = false,
            "--stats" => flags.stats = true,
            "--lineage" => flags.lineage_var = Some(take_value(args, &mut i, "--lineage")?),
            "--seed" => {
                let v = take_value(args, &mut i, "--seed")?;
                flags.seed = Some(v.parse().map_err(|_| format!("bad seed '{v}'"))?);
            }
            "--timeout-ms" => {
                let v = take_value(args, &mut i, "--timeout-ms")?;
                flags.timeout_ms = Some(v.parse().map_err(|_| format!("bad timeout '{v}'"))?);
            }
            "--trace-out" => flags.trace_out = Some(take_value(args, &mut i, "--trace-out")?),
            "--trace-sample" => {
                let v = take_value(args, &mut i, "--trace-sample")?;
                flags.trace_sample = Some(v.parse().map_err(|_| format!("bad sample rate '{v}'"))?);
            }
            "--cost-top" => {
                let v = take_value(args, &mut i, "--cost-top")?;
                flags.cost_top = Some(v.parse().map_err(|_| format!("bad top-K '{v}'"))?);
            }
            "--quiet" => flags.quiet = true,
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            path => {
                if script_path.replace(path.to_string()).is_some() {
                    return Err("multiple script paths given".into());
                }
            }
        }
        i += 1;
    }
    let script_path = script_path.ok_or("missing script path")?;
    Ok((script_path, config, flags))
}

#[derive(Default)]
struct RunFlags {
    stats: bool,
    lineage_var: Option<String>,
    seed: Option<u64>,
    timeout_ms: Option<u64>,
    trace_out: Option<String>,
    trace_sample: Option<u64>,
    cost_top: Option<usize>,
    quiet: bool,
}

/// Parses, compiles, and executes a `run` invocation; writes the trace file
/// when requested and hands the finished context back to the caller for
/// output rendering.
fn execute_run(args: &[String]) -> Result<(ExecutionContext, RunFlags), CliError> {
    let (path, mut config, flags) = parse_run_options(args)?;
    let obs = flags.trace_out.as_ref().map(|_| Arc::new(Obs::new()));
    if let Some(o) = &obs {
        if let Some(n) = flags.trace_sample {
            o.set_sample_every(n);
        }
        config = config.with_obs(Arc::clone(o));
    }
    let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let program = compile_script(&src, &config).map_err(|e| {
        // Render the source-anchored caret snippet up front; the one-line
        // `limac: error=compile ...` summary still follows from main().
        for d in e.diagnostics() {
            eprint!("{}", d.render(&src, &path));
        }
        CliError {
            code: ErrorCode::Compile,
            msg: e.to_string(),
        }
    })?;
    let mut ctx = ExecutionContext::new(config);
    if let Some(seed) = flags.seed {
        ctx.reset_seed_counter(seed);
    }
    if let Some(ms) = flags.timeout_ms {
        ctx.arm_deadline(std::time::Duration::from_millis(ms));
    }
    execute_program(&program, &mut ctx).map_err(|e| CliError {
        code: runtime_code(&e),
        msg: match (&e, flags.timeout_ms) {
            (RuntimeError::DeadlineExceeded, Some(ms)) => {
                format!("deadline exceeded: script did not finish within {ms} ms")
            }
            _ => e.to_string(),
        },
    })?;
    if let (Some(o), Some(out)) = (&obs, &flags.trace_out) {
        std::fs::write(out, o.chrome_trace()).map_err(|e| format!("{out}: {e}"))?;
    }
    Ok((ctx, flags))
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let (ctx, flags) = execute_run(args)?;
    if !flags.quiet {
        for line in &ctx.stdout {
            println!("{line}");
        }
    }
    if let Some(var) = &flags.lineage_var {
        let lin = ctx
            .lineage
            .get(var)
            .ok_or_else(|| format!("no lineage for variable '{var}'"))?;
        print!("{}", serialize_lineage(lin));
    }
    if flags.stats {
        println!("{}", ctx.stats.report());
    }
    if let Some(k) = flags.cost_top {
        match &ctx.cache {
            Some(cache) => {
                println!("lineage cost attribution (top {k}):");
                for item in cache.cost_report(k) {
                    println!("{}", item.render());
                }
            }
            None => {
                return Err("--cost-top requires a reuse-enabled config (lt/ltd/lima)"
                    .to_string()
                    .into());
            }
        }
    }
    Ok(())
}

/// `limac stats <script> [run options] [--format prom|text]`: runs the script
/// and prints its statistics to stdout in the chosen format. Script print()
/// output is suppressed so the exposition stays machine-readable.
fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let mut format = "prom".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--format" {
            i += 1;
            format = args
                .get(i)
                .cloned()
                .ok_or_else(|| "--format requires a value".to_string())?;
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    if !matches!(format.as_str(), "prom" | "text") {
        return Err(format!("unknown stats format '{format}' (expected prom|text)").into());
    }
    let (ctx, _) = execute_run(&rest)?;
    match format.as_str() {
        "prom" => print!("{}", ctx.stats.prometheus()),
        _ => println!("{}", ctx.stats.report()),
    }
    Ok(())
}

/// Normalizes a lineage-log line for diffing: the session-specific IDs are
/// stripped so only structure and payloads compare.
fn normalize_log_line(line: &str) -> String {
    line.split(' ')
        .map(|tok| {
            if tok.starts_with('(')
                && tok.ends_with(')')
                && tok[1..tok.len() - 1].parse::<u64>().is_ok()
            {
                "(#)".to_string()
            } else {
                tok.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn cmd_lineage_diff(args: &[String]) -> Result<(), String> {
    let [a_path, b_path] = args else {
        return Err("lineage-diff takes exactly two files".into());
    };
    let read = |p: &String| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))
    };
    let (a_log, b_log) = (read(a_path)?, read(b_path)?);
    // Validate both logs parse.
    let a = deserialize_lineage(&a_log).map_err(|e| format!("{a_path}: {e}"))?;
    let b = deserialize_lineage(&b_log).map_err(|e| format!("{b_path}: {e}"))?;
    if lima::lima_core::lineage::item::lineage_eq(&a, &b) {
        println!("lineage logs are equivalent ({} nodes)", a.dag_size());
        return Ok(());
    }
    println!("lineage logs DIFFER:");
    let a_lines: Vec<String> = a_log.lines().map(normalize_log_line).collect();
    let b_lines: Vec<String> = b_log.lines().map(normalize_log_line).collect();
    let n = a_lines.len().max(b_lines.len());
    let mut shown = 0;
    for i in 0..n {
        let la = a_lines.get(i).map(String::as_str).unwrap_or("<missing>");
        let lb = b_lines.get(i).map(String::as_str).unwrap_or("<missing>");
        if la != lb {
            println!("  - {la}\n  + {lb}");
            shown += 1;
            if shown >= 20 {
                println!("  ... (truncated)");
                break;
            }
        }
    }
    Err("traces are not equivalent".into())
}

fn cmd_recompute(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("recompute takes exactly one lineage log".into());
    };
    let log = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let root = deserialize_lineage(&log).map_err(|e| format!("{path}: {e}"))?;
    let mut ctx = ExecutionContext::new(LimaConfig::base());
    let value = recompute(&root, &mut ctx).map_err(|e| e.to_string())?;
    match &value {
        Value::Matrix(m) => {
            println!("recomputed matrix {}x{}:", m.rows(), m.cols());
            print!("{}", lima::lima_runtime::kernels::display(&value));
        }
        other => println!(
            "recomputed value: {}",
            lima::lima_runtime::kernels::display(other)
        ),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_options_parse() {
        let args: Vec<String> = [
            "s.dml",
            "--config",
            "ltd",
            "--policy",
            "lru",
            "--budget-mb",
            "64",
            "--stats",
            "--lineage",
            "B",
            "--seed",
            "7",
            "--timeout-ms",
            "1500",
            "--trace-out",
            "t.json",
            "--trace-sample",
            "4",
            "--cost-top",
            "10",
            "--quiet",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (path, config, flags) = parse_run_options(&args).unwrap();
        assert_eq!(path, "s.dml");
        assert!(config.dedup);
        assert_eq!(config.policy, EvictionPolicy::Lru);
        assert_eq!(config.budget_bytes, 64 * 1024 * 1024);
        assert!(flags.stats);
        assert_eq!(flags.lineage_var.as_deref(), Some("B"));
        assert_eq!(flags.seed, Some(7));
        assert_eq!(flags.timeout_ms, Some(1500));
        assert_eq!(flags.trace_out.as_deref(), Some("t.json"));
        assert_eq!(flags.trace_sample, Some(4));
        assert_eq!(flags.cost_top, Some(10));
        assert!(flags.quiet);
    }

    #[test]
    fn run_options_reject_garbage() {
        let to_args = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(parse_run_options(&to_args(&["--config"])).is_err());
        assert!(parse_run_options(&to_args(&["s", "--config", "nope"])).is_err());
        assert!(parse_run_options(&to_args(&["s", "--what"])).is_err());
        assert!(parse_run_options(&to_args(&["s", "--timeout-ms", "soon"])).is_err());
        assert!(parse_run_options(&to_args(&["s", "--trace-sample", "often"])).is_err());
        assert!(parse_run_options(&to_args(&["s", "--trace-out"])).is_err());
        assert!(parse_run_options(&to_args(&["s", "--cost-top", "all"])).is_err());
        assert!(parse_run_options(&to_args(&["a", "b"])).is_err());
        assert!(parse_run_options(&to_args(&[])).is_err());
    }

    #[test]
    fn interrupt_family_maps_to_distinct_exit_codes() {
        let codes = [
            runtime_code(&RuntimeError::DeadlineExceeded),
            runtime_code(&RuntimeError::Cancelled),
            runtime_code(&RuntimeError::ResourceExhausted("cap".into())),
        ];
        assert_eq!(
            codes,
            [
                ErrorCode::DeadlineExceeded,
                ErrorCode::Cancelled,
                ErrorCode::ResourceExhausted,
            ]
        );
        // Distinct nonzero exit codes, none colliding with the generic 1 or
        // the usage 2.
        let exits: Vec<u8> = codes.iter().map(|c| c.exit_code()).collect();
        assert_eq!(exits, [4, 5, 6]);
        // Everything else stays on the generic failure exit.
        let panic = RuntimeError::WorkerPanic("boom".into());
        assert_eq!(runtime_code(&panic).exit_code(), 1);
    }

    #[test]
    fn log_lines_normalize_ids() {
        assert_eq!(normalize_log_line("(12) I + (3) (4)"), "(#) I + (#) (#)");
        assert_eq!(normalize_log_line("(12) L f:0.1"), "(#) L f:0.1");
        assert_eq!(normalize_log_line("::out (9)"), "::out (#)");
    }
}
