//! `lima-lint` — static checks for LIMA scripts, lineage logs, and persist
//! directories.
//!
//! Three modes sharing one exit-code contract (DESIGN.md §14):
//!
//! * `lima-lint check <script.dml>...` — parse, compile, and lint DML
//!   scripts; renders caret diagnostics (or `--format json`).
//! * `lima-lint <log-file>...` — lint serialized lineage logs (`-` reads
//!   stdin); one typed diagnostic per problem.
//! * `lima-lint fsck <dir>...` — offline persistence verification: WAL
//!   framing, value checksums, lineage parse/DAG checks, orphan/debris
//!   detection.
//!
//! Exit codes (all modes): `0` clean, `1` findings (lint errors, denied
//! warnings, log diagnostics, or corruption), `2` usage or internal errors
//! (unknown flags, unreadable inputs).

use lima_analysis::lint_log;
use lima_core::{diagnostics_to_json, LimaConfig, Severity};
use lima_lang::lint_script;
use std::io::Read as _;
use std::process::ExitCode;

const EXIT_CLEAN: u8 = 0;
const EXIT_FINDINGS: u8 = 1;
const EXIT_USAGE: u8 = 2;

const HELP: &str = "usage: lima-lint check [--deny warnings] [--format text|json] <script.dml>...
       lima-lint [--verbose] <lineage-log>...
       lima-lint fsck [--verbose] <persist-dir>...

check lints DML scripts: parse/compile errors (L0001-L0100) and lint
findings (L02xx) render as caret snippets; --format json prints one JSON
array of diagnostics per input file. Warnings exit 0 unless --deny
warnings promotes them; notes never affect the exit code.

The default mode lints serialized lineage logs ('-' reads stdin); fsck
verifies persist directories offline (WAL framing, checksums, lineage,
orphans). Debris findings are informational.

exit codes (every mode): 0 clean, 1 findings, 2 usage/internal error";

/// Output format for `check`.
#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

/// The `check` subcommand: lint DML scripts with source-anchored output.
fn run_check(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut deny_warnings = false;
    let mut format = Format::Text;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => deny_warnings = true,
                other => {
                    eprintln!(
                        "lima-lint: --deny takes 'warnings', got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "lima-lint: --format takes 'text' or 'json', got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::from(EXIT_CLEAN);
            }
            flag if flag.starts_with('-') && flag != "-" => {
                eprintln!("lima-lint: unknown flag '{flag}' (try --help)");
                return ExitCode::from(EXIT_USAGE);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("lima-lint: check needs at least one script (try --help)");
        return ExitCode::from(EXIT_USAGE);
    }

    let config = LimaConfig::lima();
    let mut findings = false;
    let mut internal_error = false;
    for path in &paths {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lima-lint: {path}: {e}");
                internal_error = true;
                continue;
            }
        };
        let diags = lint_script(&src, &config);
        match format {
            Format::Json => println!("{}", diagnostics_to_json(&diags)),
            Format::Text => {
                for d in &diags {
                    print!("{}", d.render(&src, path));
                    println!();
                }
                if diags.is_empty() && verbose {
                    println!("{path}: ok");
                }
            }
        }
        findings |= diags.iter().any(|d| match d.severity {
            Severity::Error => true,
            Severity::Warning => deny_warnings,
            Severity::Note => false,
        });
    }
    if internal_error {
        ExitCode::from(EXIT_USAGE)
    } else if findings {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::from(EXIT_CLEAN)
    }
}

/// The `fsck` subcommand: read-only verification of persist directories.
fn run_fsck(dirs: &[String], verbose: bool) -> ExitCode {
    if dirs.is_empty() {
        eprintln!("lima-lint: fsck needs at least one directory (try --help)");
        return ExitCode::from(EXIT_USAGE);
    }
    let mut corrupt = false;
    let mut internal_error = false;
    for dir in dirs {
        let path = std::path::Path::new(dir);
        if !path.is_dir() {
            eprintln!("lima-lint: {dir}: not a directory");
            internal_error = true;
            continue;
        }
        let report = lima_core::fsck(path);
        for finding in &report.findings {
            println!("{dir}: {}", finding.render());
        }
        if report.has_corruption() {
            corrupt = true;
        }
        if verbose || !report.findings.is_empty() {
            let generation = report
                .generation
                .map(|g| g.to_string())
                .unwrap_or_else(|| "none".to_string());
            println!(
                "{dir}: generation={generation} live_entries={} live_bytes={} findings={} {}",
                report.live_entries,
                report.live_bytes,
                report.findings.len(),
                if report.has_corruption() {
                    "CORRUPT"
                } else {
                    "ok"
                }
            );
        }
    }
    if internal_error {
        ExitCode::from(EXIT_USAGE)
    } else if corrupt {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::from(EXIT_CLEAN)
    }
}

/// The default mode: lint serialized lineage logs.
fn run_log_lint(paths: &[String], verbose: bool) -> ExitCode {
    if paths.is_empty() {
        eprintln!("lima-lint: no input files (try --help)");
        return ExitCode::from(EXIT_USAGE);
    }
    let mut failed = false;
    let mut internal_error = false;
    for path in paths {
        let log = if path == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("lima-lint: stdin: {e}");
                    internal_error = true;
                    continue;
                }
            }
        } else {
            match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lima-lint: {path}: {e}");
                    internal_error = true;
                    continue;
                }
            }
        };
        let diags = lint_log(&log);
        if diags.is_empty() {
            if verbose {
                println!("{path}: ok");
            }
        } else {
            failed = true;
            for d in &diags {
                println!("{path}: {d}");
            }
        }
    }
    if internal_error {
        ExitCode::from(EXIT_USAGE)
    } else if failed {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::from(EXIT_CLEAN)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => return run_check(&args[1..]),
        Some("fsck") => {
            let rest = &args[1..];
            let verbose = rest.iter().any(|a| a == "--verbose" || a == "-v");
            let dirs: Vec<String> = rest
                .iter()
                .filter(|a| *a != "--verbose" && *a != "-v")
                .cloned()
                .collect();
            return run_fsck(&dirs, verbose);
        }
        _ => {}
    }
    let mut paths = Vec::new();
    let mut verbose = false;
    for arg in &args {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::from(EXIT_CLEAN);
            }
            _ => paths.push(arg.clone()),
        }
    }
    run_log_lint(&paths, verbose)
}
