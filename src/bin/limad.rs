//! `limad` — the LIMA lineage-cache service daemon.
//!
//! ```text
//! limad [options]
//!     --listen <ADDR>        wire-protocol address (default 127.0.0.1:7461)
//!     --metrics <ADDR>       metrics HTTP address (default 127.0.0.1:7462)
//!     --shards <N>           cache shards (default 4)
//!     --persist-dir <DIR>    per-shard WAL root (default: memory-only)
//!     --budget-mb <N>        per-shard cache budget (default 256)
//!     --governor-mb <N>      per-shard governor budget (default: off)
//!     --tenant-quota <N>     concurrent submits per tenant, 0=unlimited (default 8)
//!     --deadline-ms <N>      default submit deadline (default 30000)
//!     --scrub-interval-ms <N> background scrub cadence per shard, 0=off (default 500)
//!     --scrub-chunk-kb <N>   byte budget per scrub chunk (default 4096)
//!     --replicas <R>         run R replicated members in this process
//!                            (default 1 = standalone; member i listens on
//!                            listen-port + i, metrics-port + i)
//! ```
//!
//! Runs until killed. Prints the bound addresses on startup (useful with
//! `--listen 127.0.0.1:0` in scripts).

use lima_core::LimaConfig;
use limad::{LimadConfig, ReplicaGroup, Server};
use std::process::ExitCode;

const USAGE: &str = "usage: limad [--listen ADDR] [--metrics ADDR] [--shards N] \
[--persist-dir DIR] [--budget-mb N] [--governor-mb N] [--tenant-quota N] [--deadline-ms N] \
[--scrub-interval-ms N] [--scrub-chunk-kb N] [--replicas R]\n";

fn parse_args(args: &[String]) -> Result<(LimadConfig, usize), String> {
    let mut replicas = 1usize;
    let mut cfg = LimadConfig {
        listen: "127.0.0.1:7461".into(),
        metrics_listen: "127.0.0.1:7462".into(),
        ..LimadConfig::default()
    };
    let mut template = LimaConfig::lima();
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => cfg.listen = take(args, &mut i, "--listen")?,
            "--metrics" => cfg.metrics_listen = take(args, &mut i, "--metrics")?,
            "--shards" => {
                let v = take(args, &mut i, "--shards")?;
                cfg.shards = v.parse().map_err(|_| format!("bad shard count '{v}'"))?;
            }
            "--persist-dir" => {
                cfg.persist_root = Some(take(args, &mut i, "--persist-dir")?.into());
            }
            "--budget-mb" => {
                let v = take(args, &mut i, "--budget-mb")?;
                let mb: usize = v.parse().map_err(|_| format!("bad budget '{v}'"))?;
                template.budget_bytes = mb * 1024 * 1024;
            }
            "--governor-mb" => {
                let v = take(args, &mut i, "--governor-mb")?;
                let mb: usize = v.parse().map_err(|_| format!("bad budget '{v}'"))?;
                template.governor_budget_bytes = mb * 1024 * 1024;
            }
            "--tenant-quota" => {
                let v = take(args, &mut i, "--tenant-quota")?;
                cfg.tenant_max_sessions = v.parse().map_err(|_| format!("bad quota '{v}'"))?;
            }
            "--deadline-ms" => {
                let v = take(args, &mut i, "--deadline-ms")?;
                cfg.default_deadline_ms = v.parse().map_err(|_| format!("bad deadline '{v}'"))?;
            }
            "--scrub-interval-ms" => {
                let v = take(args, &mut i, "--scrub-interval-ms")?;
                cfg.scrub_interval_ms = v.parse().map_err(|_| format!("bad interval '{v}'"))?;
            }
            "--scrub-chunk-kb" => {
                let v = take(args, &mut i, "--scrub-chunk-kb")?;
                let kb: u64 = v.parse().map_err(|_| format!("bad chunk size '{v}'"))?;
                cfg.scrub_chunk_bytes = kb * 1024;
            }
            "--replicas" => {
                let v = take(args, &mut i, "--replicas")?;
                replicas = v.parse().map_err(|_| format!("bad replica count '{v}'"))?;
                if replicas == 0 {
                    return Err("--replicas must be at least 1".into());
                }
            }
            other => return Err(format!("unknown option '{other}'\n{USAGE}")),
        }
        i += 1;
    }
    cfg.template = template;
    Ok((cfg, replicas))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let (cfg, replicas) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("limad: {msg}");
            return ExitCode::from(2);
        }
    };
    if replicas > 1 {
        let group = match ReplicaGroup::start(&cfg, replicas) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("limad: failed to start replica group: {e}");
                return ExitCode::FAILURE;
            }
        };
        for i in 0..group.len() {
            let server = group.get(i).expect("freshly started member");
            println!("limad member {i} listening on {}", server.addr());
            println!(
                "limad member {i} metrics on http://{}/metrics",
                server.metrics_addr()
            );
        }
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("limad: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("limad listening on {}", server.addr());
    println!("limad metrics on http://{}/metrics", server.metrics_addr());
    for shard in server.shards().iter() {
        println!(
            "limad shard {} state {}",
            shard.index(),
            shard.state().as_str()
        );
    }
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides_parse() {
        let (cfg, replicas) = parse_args(&[]).unwrap();
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.tenant_max_sessions, 8);
        assert!(cfg.persist_root.is_none());
        assert_eq!(replicas, 1);

        let (cfg, replicas) = parse_args(&to_args(&[
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--persist-dir",
            "/tmp/limad",
            "--budget-mb",
            "64",
            "--governor-mb",
            "128",
            "--tenant-quota",
            "3",
            "--deadline-ms",
            "500",
            "--scrub-interval-ms",
            "250",
            "--scrub-chunk-kb",
            "512",
            "--replicas",
            "2",
        ]))
        .unwrap();
        assert_eq!(replicas, 2);
        assert_eq!(cfg.listen, "127.0.0.1:0");
        assert_eq!(cfg.shards, 2);
        assert!(cfg.persist_root.is_some());
        assert_eq!(cfg.template.budget_bytes, 64 * 1024 * 1024);
        assert_eq!(cfg.template.governor_budget_bytes, 128 * 1024 * 1024);
        assert_eq!(cfg.tenant_max_sessions, 3);
        assert_eq!(cfg.default_deadline_ms, 500);
        assert_eq!(cfg.scrub_interval_ms, 250);
        assert_eq!(cfg.scrub_chunk_bytes, 512 * 1024);
    }

    #[test]
    fn bad_options_are_rejected() {
        assert!(parse_args(&to_args(&["--shards"])).is_err());
        assert!(parse_args(&to_args(&["--shards", "many"])).is_err());
        assert!(parse_args(&to_args(&["--frobnicate"])).is_err());
        assert!(parse_args(&to_args(&["--replicas", "0"])).is_err());
        assert!(parse_args(&to_args(&["--replicas", "two"])).is_err());
    }
}
