//! # lima
//!
//! A from-scratch Rust reproduction of **LIMA: Fine-grained Lineage Tracing
//! and Reuse in Machine Learning Systems** (Phani, Rath, Boehm — SIGMOD 2021).
//!
//! The workspace implements a miniature SystemDS-style ML system (matrix
//! kernels, an R-like scripting language, a program-block interpreter) with
//! the paper's contribution layered inside it: fine-grained lineage tracing
//! with deduplication, and a lineage-keyed reuse cache with multi-level full
//! reuse, partial-reuse rewrites, and cost-based eviction.
//!
//! ## Crates
//!
//! * [`lima_matrix`] — dense/sparse linear algebra and the runtime `Value`.
//! * [`lima_core`] — lineage DAGs, dedup, and the reuse cache (the paper).
//! * [`lima_runtime`] — instructions, program blocks, interpreter, parfor.
//! * [`lima_lang`] — the DML-subset language front-end.
//! * [`lima_algos`] — script-level builtins (`lm`, `pca`, ...), datasets,
//!   and end-to-end pipelines.
//! * [`lima_client`] — the `limad` wire protocol and a retrying,
//!   deadline-aware client.
//! * [`limad`] — the fault-tolerant multi-tenant lineage-cache service
//!   (sharded session pools, overload shedding, `/metrics`).
//!
//! ## Quickstart
//!
//! ```
//! use lima::prelude::*;
//!
//! let config = LimaConfig::lima();
//! let result = run_script(
//!     "G = t(X) %*% X;          # traced as tsmm(X)
//!      H = t(X) %*% X;          # full reuse: served from the lineage cache
//!      s = sum(G - H);",
//!     &config,
//!     &[("X", Value::matrix(DenseMatrix::filled(100, 10, 1.5)))],
//! ).unwrap();
//! assert_eq!(result.value("s").as_f64().unwrap(), 0.0);
//! assert_eq!(LimaStats::get(&result.ctx.stats.full_hits), 1);
//! ```

pub use lima_algos;
pub use lima_client;
pub use lima_core;
pub use lima_lang;
pub use lima_matrix;
pub use lima_runtime;
pub use limad;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use lima_algos::runner::{run_script, run_script_with_cache, RunResult};
    pub use lima_algos::{datasets, pipelines, scripts};
    pub use lima_client::{
        ClientOptions, ClientStats, ErrorCode, LimadClient, MemberStats, SubmitOptions,
    };
    pub use lima_core::faults::{FaultInjector, FaultSite};
    pub use lima_core::lineage::serialize::{
        deserialize_lineage, serialize_lineage, LineageParseError,
    };
    pub use lima_core::obs::{parse_json, validate_chrome_trace};
    pub use lima_core::{
        CancelToken, Event, EventKind, EvictionPolicy, ItemCost, LimaConfig, LimaStats,
        LineageCache, Obs, PressureLevel, ResourceGovernor, ReuseMode,
    };
    pub use lima_lang::compile_script;
    pub use lima_matrix::{BackendKind, DenseMatrix, KernelBackend, ScalarValue, Value};
    pub use lima_runtime::reconstruct::{recompute, reconstruct};
    pub use lima_runtime::{
        execute_program, ExecutionContext, RuntimeError, SessionHandle, SessionOptions,
        SessionOutcome, SessionPool,
    };
    pub use limad::{LimadConfig, ReplOptions, ReplicaGroup, Server, ShardState};
}
