//! `lima-lint` zero-false-positive guarantee: lineage logs produced by the
//! example pipelines — plain, multi-level, and deduplicated traces alike —
//! must lint clean. Every diagnostic on an organically produced log is a
//! false positive by definition; this test (and the CI `analysis` job built
//! on it) keeps the linter honest as both sides evolve.

use lima::prelude::*;
use lima_analysis::lint_log;

/// Runs a pipeline under `config` and lints the serialized lineage of every
/// live variable.
fn lint_pipeline(name: &str, pipeline: &lima_algos::pipelines::Pipeline, config: &LimaConfig) {
    let result = run_script(&pipeline.script, config, &pipeline.input_refs())
        .unwrap_or_else(|e| panic!("{name}: pipeline runs: {e:?}"));
    let mut linted = 0;
    for (var, root) in result.ctx.lineage.bindings() {
        let log = serialize_lineage(root);
        let diags = lint_log(&log);
        assert!(
            diags.is_empty(),
            "{name}: lineage of '{var}' produced false positives: {diags:?}"
        );
        linted += 1;
    }
    assert!(linted > 0, "{name}: no lineage traced");
}

#[test]
fn example_pipelines_lint_clean_under_full_lima() {
    let config = LimaConfig::lima();
    for (name, p) in [
        ("pcalm", pipelines::pcalm(200, 8, &[2, 4], 11)),
        (
            "gridsearch-lm",
            pipelines::hlm(
                120,
                6,
                2,
                1,
                &pipelines::hyperparameter_grid(2, 1, 1),
                true,
                5,
            ),
        ),
        ("l2svm", pipelines::hl2svm(100, 6, 2, 9)),
        ("pagerank", pipelines::pagerank_pipeline(40, 6, 7)),
    ] {
        lint_pipeline(name, &p, &config);
    }
}

#[test]
fn example_pipelines_lint_clean_under_dedup() {
    // Dedup traces exercise the patch-dictionary half of the log format.
    let config = LimaConfig::tracing_dedup();
    for (name, p) in [
        ("pagerank", pipelines::pagerank_pipeline(40, 8, 7)),
        ("pcalm", pipelines::pcalm(200, 8, &[2, 4], 11)),
    ] {
        lint_pipeline(name, &p, &config);
    }
}

#[test]
fn example_pipelines_lint_clean_with_ops_only_reuse() {
    let config = LimaConfig {
        multilevel: false,
        ..LimaConfig::lima()
    };
    let p = pipelines::pcalm(200, 8, &[2, 4], 11);
    lint_pipeline("pcalm-ops-only", &p, &config);
}

/// Round-trip through the actual CLI input format: serialized logs must
/// deserialize back to DAGs the verifier accepts.
#[test]
fn serialized_logs_round_trip_and_lint_clean() {
    let p = pipelines::pagerank_pipeline(30, 5, 3);
    let result = run_script(&p.script, &LimaConfig::tracing_dedup(), &p.input_refs())
        .expect("pagerank runs");
    let root = result.ctx.lineage.get("p").expect("traced").clone();
    let log = serialize_lineage(&root);
    let back = deserialize_lineage(&log).expect("round-trips");
    assert!(lima_core::lineage::item::lineage_eq(&root, &back));
    assert!(lint_log(&serialize_lineage(&back)).is_empty());
}
