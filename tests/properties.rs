//! Property-based tests (proptest) of the paper's core invariants:
//!
//! * the algebraic identities behind every partial-reuse rewrite,
//! * lineage hashing/equality/serialization laws,
//! * dedup ≡ plain trace equivalence under random loop shapes, and
//! * the global invariant that reuse never changes program results, checked
//!   over randomly generated scripts.

use lima::prelude::*;
use lima_core::lineage::item::{lineage_eq, LinRef, LineageItem};
use lima_matrix::ops::{
    cbind, col_agg, ew_matrix_matrix, matmult, rbind, row_agg, slice, transpose, tsmm, AggFn,
    BinOp, TsmmSide,
};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| DenseMatrix::new(rows, cols, data).expect("sized"))
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----------------------------------------- rewrite identities (paper §4.2)

    #[test]
    fn tsmm_rbind_identity((m1, m2, n) in dims(),
                           seed in 0u64..1000) {
        let a = det_matrix(m1, n, seed);
        let b = det_matrix(m2, n, seed ^ 1);
        let whole = tsmm(&rbind(&a, &b).unwrap(), TsmmSide::Left).unwrap();
        let parts = ew_matrix_matrix(
            BinOp::Add,
            &tsmm(&a, TsmmSide::Left).unwrap(),
            &tsmm(&b, TsmmSide::Left).unwrap(),
        ).unwrap();
        prop_assert!(whole.rel_eq(&parts, 1e-9));
    }

    #[test]
    fn mm_rbind_identity((m1, m2, k) in dims(), n in 1usize..6, seed in 0u64..1000) {
        let a = det_matrix(m1, k, seed);
        let b = det_matrix(m2, k, seed ^ 2);
        let y = det_matrix(k, n, seed ^ 3);
        let whole = matmult(&rbind(&a, &b).unwrap(), &y).unwrap();
        let parts = rbind(&matmult(&a, &y).unwrap(), &matmult(&b, &y).unwrap()).unwrap();
        prop_assert!(whole.rel_eq(&parts, 1e-9));
    }

    #[test]
    fn mm_cbind_identity((m, k1, k2) in dims(), n in 1usize..6, seed in 0u64..1000) {
        let x = det_matrix(m, n, seed);
        let y = det_matrix(n, k1, seed ^ 4);
        let dy = det_matrix(n, k2, seed ^ 5);
        let whole = matmult(&x, &cbind(&y, &dy).unwrap()).unwrap();
        let parts = cbind(&matmult(&x, &y).unwrap(), &matmult(&x, &dy).unwrap()).unwrap();
        prop_assert!(whole.rel_eq(&parts, 1e-9));
    }

    #[test]
    fn tsmm_cbind_blocked_identity((m, k1, k2) in dims(), seed in 0u64..1000) {
        let x = det_matrix(m, k1, seed);
        let dx = det_matrix(m, k2, seed ^ 6);
        let whole = tsmm(&cbind(&x, &dx).unwrap(), TsmmSide::Left).unwrap();
        let xtdx = matmult(&transpose(&x), &dx).unwrap();
        let top = cbind(&tsmm(&x, TsmmSide::Left).unwrap(), &xtdx).unwrap();
        let bottom = cbind(&transpose(&xtdx), &tsmm(&dx, TsmmSide::Left).unwrap()).unwrap();
        let parts = rbind(&top, &bottom).unwrap();
        prop_assert!(whole.rel_eq(&parts, 1e-9));
    }

    #[test]
    fn colagg_cbind_identity((m, k1, k2) in dims(), seed in 0u64..1000) {
        let x = det_matrix(m, k1, seed);
        let dx = det_matrix(m, k2, seed ^ 7);
        for f in [AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Mean] {
            let whole = col_agg(&cbind(&x, &dx).unwrap(), f);
            let parts = cbind(&col_agg(&x, f), &col_agg(&dx, f)).unwrap();
            prop_assert!(whole.rel_eq(&parts, 1e-9));
        }
    }

    #[test]
    fn rowagg_rbind_identity((m1, m2, n) in dims(), seed in 0u64..1000) {
        let x = det_matrix(m1, n, seed);
        let dx = det_matrix(m2, n, seed ^ 8);
        for f in [AggFn::Sum, AggFn::Min, AggFn::Max] {
            let whole = row_agg(&rbind(&x, &dx).unwrap(), f);
            let parts = rbind(&row_agg(&x, f), &row_agg(&dx, f)).unwrap();
            prop_assert!(whole.rel_eq(&parts, 1e-9));
        }
    }

    #[test]
    fn mm_indexed_identity((m, n, k) in dims(), seed in 0u64..1000) {
        let x = det_matrix(m, n, seed);
        let y = det_matrix(n, k, seed ^ 9);
        let xy = matmult(&x, &y).unwrap();
        for c in 0..k {
            let yk = slice(&y, 0, n - 1, 0, c).unwrap();
            let whole = matmult(&x, &yk).unwrap();
            let part = slice(&xy, 0, m - 1, 0, c).unwrap();
            prop_assert!(whole.rel_eq(&part, 1e-9));
        }
    }

    #[test]
    fn ew_cbind_identity((m, k1, k2) in dims(), seed in 0u64..1000) {
        let x = det_matrix(m, k1, seed);
        let dx = det_matrix(m, k2, seed ^ 10);
        let y = det_matrix(m, k1, seed ^ 11);
        let dy = det_matrix(m, k2, seed ^ 12);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max] {
            let whole = ew_matrix_matrix(
                op,
                &cbind(&x, &dx).unwrap(),
                &cbind(&y, &dy).unwrap(),
            ).unwrap();
            let parts = cbind(
                &ew_matrix_matrix(op, &x, &y).unwrap(),
                &ew_matrix_matrix(op, &dx, &dy).unwrap(),
            ).unwrap();
            prop_assert!(whole.rel_eq(&parts, 1e-9));
        }
    }

    // ------------------------------------------------ basic matrix laws

    #[test]
    fn transpose_involution(m in small_matrix(5, 7)) {
        prop_assert!(transpose(&transpose(&m)).approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_associativity((m, n, k) in dims(), seed in 0u64..1000) {
        let a = det_matrix(m, n, seed);
        let b = det_matrix(n, k, seed ^ 13);
        let c = det_matrix(k, 3, seed ^ 14);
        let left = matmult(&matmult(&a, &b).unwrap(), &c).unwrap();
        let right = matmult(&a, &matmult(&b, &c).unwrap()).unwrap();
        prop_assert!(left.rel_eq(&right, 1e-8));
    }

    #[test]
    fn solve_residual_is_small(n in 2usize..10, seed in 0u64..1000) {
        // SPD system: A = XᵀX + I.
        let x = det_matrix(n + 2, n, seed);
        let mut a = tsmm(&x, TsmmSide::Left).unwrap();
        for i in 0..n { a.set(i, i, a.get(i, i) + 1.0); }
        let b = det_matrix(n, 1, seed ^ 15);
        let sol = lima_matrix::ops::solve(&a, &b).unwrap();
        let ax = matmult(&a, &sol).unwrap();
        prop_assert!(ax.rel_eq(&b, 1e-7));
    }

    // --------------------------------------------------- lineage laws

    #[test]
    fn lineage_serialization_round_trips(shape in lineage_dag(4)) {
        let log = serialize_lineage(&shape);
        let back = deserialize_lineage(&log).unwrap();
        prop_assert!(lineage_eq(&shape, &back));
        prop_assert_eq!(shape.dag_size(), back.dag_size());
        prop_assert_eq!(shape.hash_value(), back.hash_value());
    }

    #[test]
    fn structurally_equal_dags_are_equal(shape_seed in 0u64..500, depth in 1usize..6) {
        let a = seeded_dag(shape_seed, depth);
        let b = seeded_dag(shape_seed, depth);
        prop_assert_eq!(a.hash_value(), b.hash_value());
        prop_assert!(lineage_eq(&a, &b));
        let c = seeded_dag(shape_seed + 1, depth);
        // Different seeds give different leaf payloads → unequal DAGs.
        prop_assert!(!lineage_eq(&a, &c));
    }

    // ------------------------------- reuse-never-changes-results, via scripts

    #[test]
    fn random_scripts_are_reuse_invariant(ops in proptest::collection::vec(0u8..6, 1..12),
                                          loop_iters in 1i64..5) {
        let script = random_script(&ops, loop_iters);
        let x = Value::matrix(det_matrix(12, 6, 42));
        let base = run_script(&script, &LimaConfig::base(), &[("X", x.clone())]).unwrap();
        for cfg in [
            LimaConfig::tracing_only(),
            LimaConfig::tracing_dedup(),
            LimaConfig::lima(),
        ] {
            let r = run_script(&script, &cfg, &[("X", x.clone())]).unwrap();
            prop_assert!(
                base.value("out").approx_eq(r.value("out"), 1e-7),
                "script diverged under {:?}:\n{}", cfg.reuse, script
            );
        }
    }

    #[test]
    fn dedup_traces_equal_plain_traces(ops in proptest::collection::vec(0u8..6, 1..8),
                                       loop_iters in 2i64..6) {
        let script = random_script(&ops, loop_iters);
        let x = Value::matrix(det_matrix(10, 5, 7));
        let plain = run_script(&script, &LimaConfig::tracing_only(), &[("X", x.clone())]).unwrap();
        let dedup = run_script(&script, &LimaConfig::tracing_dedup(), &[("X", x)]).unwrap();
        let lp = plain.ctx.lineage.get("out").unwrap();
        let ld = dedup.ctx.lineage.get("out").unwrap();
        prop_assert_eq!(lp.hash_value(), ld.hash_value());
        prop_assert!(lineage_eq(lp, ld));
    }
}

/// Deterministic pseudo-random matrix (proptest shrinks dimensions; values
/// come from a cheap hash so reruns are stable).
fn det_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows.max(1), cols.max(1), |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(j as u64)
            .wrapping_mul(1442695040888963407)
            .wrapping_add(seed.wrapping_mul(2862933555777941757));
        ((h >> 16) % 2000) as f64 / 200.0 - 5.0
    })
}

/// Strategy producing random lineage DAGs with sharing and literals.
fn lineage_dag(max_depth: usize) -> impl Strategy<Value = LinRef> {
    let leaf = prop_oneof![
        (0u64..100).prop_map(|v| LineageItem::literal(format!("i:{v}"))),
        "[a-z]{1,6}".prop_map(|p| LineageItem::op_with_data("read", p, vec![])),
    ];
    leaf.prop_recursive(max_depth as u32, 64, 3, |inner| {
        (
            prop_oneof![
                Just("+"),
                Just("*"),
                Just("ba+*"),
                Just("cbind"),
                Just("uacsum")
            ],
            proptest::collection::vec(inner, 1..3),
        )
            .prop_map(|(op, inputs)| LineageItem::op(op, inputs))
    })
}

/// Deterministic DAG from a seed (for structural-equality tests).
fn seeded_dag(seed: u64, depth: usize) -> LinRef {
    let mut node = LineageItem::op_with_data("read", format!("leaf{seed}"), vec![]);
    for level in 0..depth {
        let op = ["+", "*", "ba+*"][(seed as usize + level) % 3];
        node = LineageItem::op(op, vec![node.clone(), node]);
    }
    node
}

/// Generates a small deterministic script from opcode choices: a
/// straight-line prefix, a loop with an accumulator, and a conditional.
fn random_script(ops: &[u8], loop_iters: i64) -> String {
    let mut body = String::from("A = X;\nacc = X * 0;\n");
    for (k, op) in ops.iter().enumerate() {
        let stmt = match op % 6 {
            0 => "A = A + X;",
            1 => "A = A * 2;",
            2 => "A = t(t(A));",
            3 => "A = A - colMeans(A);",
            4 => "A = A / (1 + abs(A));",
            _ => "A = A + sigmoid(A);",
        };
        body.push_str(stmt);
        body.push('\n');
        if k == ops.len() / 2 {
            body.push_str(&format!(
                "for (i in 1:{loop_iters}) {{\n  if (i <= {h}) {{ acc = acc + A * i; }} else {{ acc = acc - A; }}\n}}\n",
                h = loop_iters / 2 + 1
            ));
        }
    }
    body.push_str("out = sum(acc) + sum(A);\n");
    body
}
