//! Cross-crate integration tests: scripts through the language front-end,
//! the interpreter, lineage tracing, and the reuse cache, checking the
//! paper's core guarantees end to end.

use lima::prelude::*;
use lima_core::lineage::item::lineage_eq;
use std::sync::Arc;

fn standardize_script() -> String {
    lima_algos::scripts::with_builtins(
        "
        Y = scaleAndShift(X);
        G = t(Y) %*% Y;
        s = sum(G);
        ",
    )
}

#[test]
fn lineage_identifies_intermediates_across_runs() {
    let x = Value::matrix(DenseMatrix::from_fn(50, 6, |i, j| (i * 6 + j) as f64));
    let script = standardize_script();
    let r1 = run_script(&script, &LimaConfig::lima(), &[("X", x.clone())]).unwrap();
    let r2 = run_script(&script, &LimaConfig::lima(), &[("X", x)]).unwrap();
    // Same program, same inputs → structurally equal lineage with equal hashes.
    let l1 = r1.ctx.lineage.get("G").unwrap();
    let l2 = r2.ctx.lineage.get("G").unwrap();
    assert_eq!(l1.hash_value(), l2.hash_value());
    assert!(lineage_eq(l1, l2));
}

#[test]
fn lineage_log_round_trips_through_text() {
    let x = Value::matrix(DenseMatrix::from_fn(30, 4, |i, j| (i + j) as f64 * 0.25));
    let r = run_script(&standardize_script(), &LimaConfig::lima(), &[("X", x)]).unwrap();
    let lin = r.ctx.lineage.get("G").unwrap().clone();
    let log = serialize_lineage(&lin);
    let back = deserialize_lineage(&log).unwrap();
    assert!(lineage_eq(&lin, &back));
    // And serializing the round-tripped DAG is stable.
    let log2 = serialize_lineage(&back);
    let back2 = deserialize_lineage(&log2).unwrap();
    assert!(lineage_eq(&back, &back2));
}

#[test]
fn recomputation_from_lineage_reproduces_results() {
    let xm = DenseMatrix::from_fn(40, 5, |i, j| ((i * 5 + j) % 13) as f64 / 13.0);
    let r = run_script(
        &standardize_script(),
        &LimaConfig {
            multilevel: false, // op-level lineage reconstructs directly
            ..LimaConfig::lima()
        },
        &[("X", Value::matrix(xm.clone()))],
    )
    .unwrap();
    let lin = r.ctx.lineage.get("G").unwrap().clone();
    let mut ctx = ExecutionContext::new(LimaConfig::base());
    ctx.data.register("var:X", Value::matrix(xm));
    let recomputed = recompute(&lin, &mut ctx).unwrap();
    assert!(recomputed.approx_eq(r.value("G"), 1e-12));
}

#[test]
fn reuse_cache_is_shared_across_script_invocations() {
    // Process-wide cache sharing (paper §4.4): a second script invocation
    // reuses the first one's intermediates.
    let cache = LineageCache::new(LimaConfig::lima());
    let x = Value::matrix(DenseMatrix::from_fn(200, 20, |i, j| ((i + j) % 7) as f64));
    let script = standardize_script();
    let r1 = run_script_with_cache(
        &script,
        &LimaConfig::lima(),
        &[("X", x.clone())],
        Some(Arc::clone(&cache)),
    )
    .unwrap();
    let before =
        LimaStats::get(&cache.stats().full_hits) + LimaStats::get(&cache.stats().multilevel_hits);
    let r2 = run_script_with_cache(
        &script,
        &LimaConfig::lima(),
        &[("X", x)],
        Some(Arc::clone(&cache)),
    )
    .unwrap();
    let after =
        LimaStats::get(&cache.stats().full_hits) + LimaStats::get(&cache.stats().multilevel_hits);
    assert!(after > before, "second invocation must hit the cache");
    assert!(r1.value("s").approx_eq(r2.value("s"), 1e-12));
}

#[test]
fn parfor_workers_share_the_cache_safely() {
    // Many parallel workers computing overlapping work: placeholders must
    // serialize redundant computation without deadlock, and results must
    // match the serial run.
    let script = lima_algos::scripts::with_builtins(
        "
        B = matrix(0, 16, 1);
        parfor (i in 1:16) {
          G = t(X) %*% X;        # identical across workers -> placeholder
          B[i, 1] = as.matrix(sum(G) + i);
        }
        total = sum(B);
        ",
    );
    let x = Value::matrix(DenseMatrix::from_fn(300, 12, |i, j| {
        ((i * j) % 17) as f64 * 0.1
    }));
    let lima = run_script(&script, &LimaConfig::lima(), &[("X", x.clone())]).unwrap();
    let base = run_script(&script, &LimaConfig::base(), &[("X", x)]).unwrap();
    assert!(lima.value("total").approx_eq(base.value("total"), 1e-9));
}

#[test]
fn eviction_under_pressure_preserves_correctness() {
    let mut config = LimaConfig::lima();
    config.budget_bytes = 64 * 1024; // absurdly small: constant eviction
    config.eviction_watermark = 0.9;
    let p = lima_algos::pipelines::pcalm(400, 12, &[2, 4, 6], 3);
    let base = run_script(&p.script, &LimaConfig::base(), &p.input_refs()).unwrap();
    let lima = run_script(&p.script, &config, &p.input_refs()).unwrap();
    assert!(base.value("best").approx_eq(lima.value("best"), 1e-9));
}

#[test]
fn every_eviction_policy_is_correct() {
    for policy in [
        EvictionPolicy::Lru,
        EvictionPolicy::DagHeight,
        EvictionPolicy::CostSize,
    ] {
        let mut config = LimaConfig::lima();
        config.policy = policy;
        config.budget_bytes = 256 * 1024;
        let p = lima_algos::pipelines::steplm_core(200, 10, 8, 8, 3);
        let base = run_script(&p.script, &LimaConfig::base(), &p.input_refs()).unwrap();
        let lima = run_script(&p.script, &config, &p.input_refs()).unwrap();
        assert!(
            base.value("total").approx_eq(lima.value("total"), 1e-9),
            "policy {policy:?} broke correctness"
        );
    }
}

#[test]
fn dedup_and_reuse_compose() {
    // Dedup for loop tracing plus reuse outside the loop.
    let mut config = LimaConfig::lima();
    config.dedup = true;
    let p = lima_algos::pipelines::pagerank_pipeline(60, 12, 3);
    let base = run_script(&p.script, &LimaConfig::base(), &p.input_refs()).unwrap();
    let lima = run_script(&p.script, &config, &p.input_refs()).unwrap();
    assert!(base.value("p").approx_eq(lima.value("p"), 1e-9));
    assert!(LimaStats::get(&lima.ctx.stats.dedup_items) > 0);
}

#[test]
fn partial_reuse_statistics_fire_in_steplm() {
    let mut config = LimaConfig::lima();
    config.compiler_assist = false; // keep the runtime rewrite path
    let p = lima_algos::pipelines::steplm_core(300, 12, 10, 10, 5);
    let r = run_script(&p.script, &config, &p.input_refs()).unwrap();
    assert!(
        LimaStats::get(&r.ctx.stats.partial_hits) >= 9,
        "tsmm(cbind) rewrite should fire once per iteration after the first"
    );
}

#[test]
fn compiler_assistance_eliminates_the_cbind() {
    // With compiler assistance the cbind+tsmm pair is rewritten, so the
    // expensive cbind never executes after compilation (Fig 7a, LIMA-CA).
    let p = lima_algos::pipelines::steplm_core(300, 12, 10, 10, 5);
    let ca = run_script(&p.script, &LimaConfig::lima(), &p.input_refs()).unwrap();
    let noca = {
        let mut c = LimaConfig::lima();
        c.compiler_assist = false;
        run_script(&p.script, &c, &p.input_refs()).unwrap()
    };
    assert!(ca.value("total").approx_eq(noca.value("total"), 1e-9));
    // The CA variant replaces partial rewrites with plain full reuse.
    assert!(LimaStats::get(&ca.ctx.stats.full_hits) > 0);
}

#[test]
fn grid_search_results_are_invariant_across_all_configs() {
    let grid = lima_algos::pipelines::hyperparameter_grid(2, 2, 2);
    let p = lima_algos::pipelines::hlm(120, 10, 2, 5, &grid, false, 9);
    let base = run_script(&p.script, &LimaConfig::base(), &p.input_refs()).unwrap();
    for config in [
        LimaConfig::tracing_only(),
        LimaConfig::tracing_dedup(),
        LimaConfig {
            reuse: ReuseMode::Full,
            ..LimaConfig::lima()
        },
        LimaConfig {
            reuse: ReuseMode::Partial,
            ..LimaConfig::lima()
        },
        LimaConfig::lima(),
    ] {
        let r = run_script(&p.script, &config, &p.input_refs()).unwrap();
        assert!(
            base.value("best").approx_eq(r.value("best"), 1e-6),
            "config {config:?} diverged"
        );
    }
}

#[test]
fn fused_operator_traces_match_unfused_reuse() {
    // A fused cellwise chain must produce lineage that matches the unfused
    // trace, enabling reuse across fused/unfused plans (paper §3.3).
    use lima_matrix::ops::BinOp;
    use lima_runtime::fused::{FusedArg, FusedSpec, FusedStep};
    use lima_runtime::{Block, Instr, Op, Operand, Program};

    let spec = FusedSpec::cellwise(
        "e2e",
        2,
        vec![
            FusedStep {
                op: BinOp::Add,
                lhs: FusedArg::Input(0),
                rhs: FusedArg::Input(0),
            },
            FusedStep {
                op: BinOp::Mul,
                lhs: FusedArg::Acc,
                rhs: FusedArg::Input(1),
            },
        ],
    )
    .unwrap();
    // Program 1: unfused (X+X)*k; Program 2: fused. Shared cache.
    let cache = LineageCache::new(LimaConfig::lima());
    let x = DenseMatrix::filled(50, 5, 2.0);

    let mut p1 = Program::new(vec![Block::basic(vec![
        Instr::new(Op::Read, vec![Operand::str("X")], "X"),
        Instr::new(
            Op::Binary(BinOp::Add),
            vec![Operand::var("X"), Operand::var("X")],
            "t",
        ),
        Instr::new(
            Op::Binary(BinOp::Mul),
            vec![Operand::var("t"), Operand::f64(3.0)],
            "Y",
        ),
    ])]);
    lima_runtime::compiler::compile(&mut p1, &LimaConfig::lima()).expect("compiles");
    let mut ctx1 = ExecutionContext::with_cache(LimaConfig::lima(), Some(Arc::clone(&cache)));
    ctx1.data.register("X", Value::matrix(x.clone()));
    execute_program(&p1, &mut ctx1).unwrap();

    let mut p2 = Program::new(vec![Block::basic(vec![
        Instr::new(Op::Read, vec![Operand::str("X")], "X"),
        Instr::new(
            Op::Fused(spec),
            vec![Operand::var("X"), Operand::f64(3.0)],
            "Y",
        ),
    ])]);
    lima_runtime::compiler::compile(&mut p2, &LimaConfig::lima()).expect("compiles");
    let mut ctx2 = ExecutionContext::with_cache(LimaConfig::lima(), Some(Arc::clone(&cache)));
    ctx2.data.register("X", Value::matrix(x));
    execute_program(&p2, &mut ctx2).unwrap();

    // The fused op's expanded lineage matched the unfused trace → reuse.
    assert!(LimaStats::get(&cache.stats().full_hits) >= 1);
    assert!(ctx1.symtab["Y"].approx_eq(&ctx2.symtab["Y"], 1e-12));
}

#[test]
fn stdout_is_identical_regardless_of_reuse() {
    let script = lima_algos::scripts::with_builtins(
        "
        for (i in 1:3) {
          B = lmDS(X, y, 0, 0.001);
          print('loss ' + toString(sum((X %*% B - y)^2)));
        }
        ",
    );
    let (x, y) = lima_algos::datasets::synthetic_regression(60, 4, 3);
    let inputs = [("X", Value::matrix(x)), ("y", Value::matrix(y))];
    let base = run_script(&script, &LimaConfig::base(), &inputs).unwrap();
    let lima = run_script(&script, &LimaConfig::lima(), &inputs).unwrap();
    assert_eq!(base.ctx.stdout, lima.ctx.stdout);
    assert_eq!(base.ctx.stdout.len(), 3);
}

#[test]
fn racy_parfor_script_fails_compilation() {
    // Every iteration writes the same cell: a write-write race the parfor
    // dependence checker must reject at compile time.
    let err = compile_script(
        "R = matrix(0, 4, 1);
         parfor (i in 1:4) {
           R[1, 1] = as.matrix(i);
         }",
        &LimaConfig::lima(),
    )
    .expect_err("racy parfor must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("parfor") && msg.contains("cannot run in parallel"),
        "unexpected error message: {msg}"
    );
    // The structured diagnostic anchors the race on the offending write.
    let diag = err.diagnostic();
    assert_eq!(diag.code, "L0100");
    assert!(diag.primary.is_some(), "parfor dependence carries a span");

    // The disjoint variant of the same script compiles and runs correctly.
    let ok = lima_algos::runner::run_script(
        "R = matrix(0, 4, 1);
         parfor (i in 1:4) {
           R[i, 1] = as.matrix(2 * i);
         }
         s = sum(R);",
        &LimaConfig::lima(),
        &[],
    )
    .expect("disjoint parfor runs");
    assert!(ok.value("s").approx_eq(&Value::f64(20.0), 1e-12));
}
