//! Crash-recovery harness for the persistent reuse cache.
//!
//! Simulates process death at every named crash point of the persistence
//! commit protocol ([`lima_core::faults::PERSIST_CRASH_POINTS`]), reopens
//! the store, and asserts the recovery invariant:
//!
//! * the crashed run still computes baseline-equal results (persistence
//!   failures degrade durability, never answers);
//! * the recovered store is a *consistent subset* — every recovered entry,
//!   reconstructed from its persisted lineage via the runtime's
//!   [`recompute`], equals the value on disk (i.e. the reuse-off baseline
//!   computation of that lineage);
//! * no torn or orphaned record is ever served;
//! * a warm-restart run of gridsearch-LM over the same persist directory
//!   records persistent-cache hits in `LimaStats`.
//!
//! The seed matrix is controlled by `LIMA_FAULT_SEEDS` (comma-separated
//! u64s); CI runs several seeds so the crash schedule varies per PR.

use lima::prelude::*;
use lima_core::cache::persist::PersistentCacheStore;
use lima_core::faults::{FaultInjector, FaultSite, PERSIST_CRASH_POINTS};
use lima_matrix::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn seeds() -> Vec<u64> {
    std::env::var("LIMA_FAULT_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![0, 7, 42])
}

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "lima-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Reconstructs a recovered entry's lineage with the reuse-off baseline
/// executor and compares against the value recovered from disk.
fn assert_reconstructs_to_baseline(
    entries: &[lima_core::cache::persist::RecoveredEntry],
    inputs: &[(&str, Value)],
    what: &str,
) {
    for e in entries {
        let mut ctx = ExecutionContext::new(LimaConfig::base());
        for (name, v) in inputs {
            // Serve both script-level `read <name>` leaves and the synthetic
            // `read var:<name>` leaves minted for live input variables.
            ctx.data.register(*name, v.clone());
            ctx.data.register(format!("var:{name}"), v.clone());
        }
        let recomputed = recompute(&e.root, &mut ctx)
            .unwrap_or_else(|err| panic!("{what}: recovered lineage must reconstruct: {err}"));
        assert!(
            recomputed.approx_eq(&e.value, 1e-9),
            "{what}: recovered value diverges from its lineage reconstruction"
        );
    }
}

/// Crash at every named crash point, at several occurrence indices, across
/// the seed matrix: the crashed run stays correct, and recovery yields a
/// consistent, reconstructable subset.
#[test]
fn crash_at_every_point_recovers_consistent_reconstructable_subset() {
    let grid = pipelines::hyperparameter_grid(2, 2, 1);
    for seed in seeds() {
        // Serial gridsearch-LM keeps the persist-attempt order (and with it
        // the crash schedule) deterministic per seed.
        let p = pipelines::hlm(40, 8, 2, 4, &grid, false, seed);
        let inputs = p.input_refs();
        let baseline = run_script(&p.script, &LimaConfig::base(), &inputs).unwrap();

        for site in PERSIST_CRASH_POINTS {
            for occ in [0u64, 2, 5] {
                let dir = tmp_dir("crash");
                let inj = Arc::new(FaultInjector::new(seed).fail_at(site, &[occ]));
                let config = LimaConfig::lima()
                    .with_persistence(&dir)
                    .with_faults(Arc::clone(&inj));
                let run = run_script(&p.script, &config, &inputs).unwrap();

                // A persistence crash must never change answers.
                let tag = format!("seed={seed} site={site:?} occ={occ}");
                assert!(
                    run.value("best").approx_eq(baseline.value("best"), 1e-9),
                    "{tag}: best loss diverged from the reuse-off baseline"
                );
                assert!(
                    run.value("L").approx_eq(baseline.value("L"), 1e-9),
                    "{tag}: loss matrix diverged from the reuse-off baseline"
                );
                let crashed = inj.injected(site) > 0;
                if crashed {
                    assert!(
                        LimaStats::get(&run.ctx.stats.persist_failures) >= 1,
                        "{tag}: crash fired but persist_failures stayed 0"
                    );
                }
                drop(run);

                // "Next process": recovery must hand back a consistent
                // subset, repairing whatever the crash left behind.
                let (store, recovered, report) =
                    PersistentCacheStore::open(&dir, 0, None).expect("dir is usable");
                assert_eq!(
                    store.live_entries(),
                    recovered.len(),
                    "{tag}: live entries disagree with recovered list"
                );
                match site {
                    // Torn WAL tails only arise from mid-append crashes.
                    FaultSite::PersistWalAppend => {}
                    _ => assert!(!report.torn_tail_truncated, "{tag}: unexpected torn tail"),
                }
                if crashed {
                    // Every crash point leaves debris (a temp file, an
                    // orphaned value file, or a torn record + orphan) that
                    // recovery must have repaired, not served.
                    assert!(
                        report.orphans_gcd >= 1 || report.torn_tail_truncated,
                        "{tag}: crash left no repaired debris? report: {report:?}"
                    );
                }
                assert_reconstructs_to_baseline(&recovered, &inputs, &tag);
                drop(store);

                // Recovery is idempotent: a second reopen finds a clean store
                // with the same entry count and nothing left to repair.
                let (_s2, recovered2, report2) =
                    PersistentCacheStore::open(&dir, 0, None).expect("dir is usable");
                assert_eq!(recovered2.len(), recovered.len(), "{tag}: not idempotent");
                assert!(!report2.torn_tail_truncated, "{tag}: torn tail resurfaced");
                assert_eq!(report2.orphans_gcd, 0, "{tag}: orphans resurfaced");
                assert_eq!(report2.dropped, 0, "{tag}: drops resurfaced");

                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// A second process pointed at the same persist directory warm-starts: the
/// recovered entries serve hits (counted as `persist_hits`) and the results
/// still equal the reuse-off baseline.
#[test]
fn warm_restart_gridsearch_lm_records_persistent_cache_hits() {
    let dir = tmp_dir("warm");
    let grid = pipelines::hyperparameter_grid(3, 2, 2);
    let p = pipelines::hlm(60, 12, 2, 6, &grid, true, 7);
    let inputs = p.input_refs();
    let baseline = run_script(&p.script, &LimaConfig::base(), &inputs).unwrap();

    // First process: cold cache, entries durably persisted as they are
    // computed.
    let r1 = run_script(
        &p.script,
        &LimaConfig::lima().with_persistence(&dir),
        &inputs,
    )
    .unwrap();
    assert!(r1.value("best").approx_eq(baseline.value("best"), 1e-9));
    assert!(r1.value("L").approx_eq(baseline.value("L"), 1e-9));
    let s1 = &r1.ctx.stats;
    assert!(
        LimaStats::get(&s1.persist_writes) >= 1,
        "first run persisted nothing"
    );
    assert_eq!(LimaStats::get(&s1.persist_hits), 0, "cold start cannot hit");
    drop(r1);

    // Second process: a fresh cache over the same directory recovers the
    // manifest and serves warm hits without recomputing.
    let r2 = run_script(
        &p.script,
        &LimaConfig::lima().with_persistence(&dir),
        &inputs,
    )
    .unwrap();
    let s2 = &r2.ctx.stats;
    assert!(
        LimaStats::get(&s2.persist_recovered) >= 1,
        "second run recovered nothing"
    );
    assert!(
        LimaStats::get(&s2.persist_hits) >= 1,
        "warm restart must serve at least one persistent-cache hit"
    );
    assert!(r2.value("best").approx_eq(baseline.value("best"), 1e-9));
    assert!(r2.value("L").approx_eq(baseline.value("L"), 1e-9));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Probabilistic mixed-crash sweep driven by the seed matrix: whatever
/// combination of crash points fires first, the run stays baseline-equal and
/// recovery stays consistent.
#[test]
fn probabilistic_crash_schedule_stays_consistent() {
    let grid = pipelines::hyperparameter_grid(2, 2, 1);
    for seed in seeds() {
        let p = pipelines::hlm(40, 8, 2, 4, &grid, false, seed);
        let inputs = p.input_refs();
        let baseline = run_script(&p.script, &LimaConfig::base(), &inputs).unwrap();

        let dir = tmp_dir("prob");
        let mut inj = FaultInjector::new(seed);
        for site in PERSIST_CRASH_POINTS {
            inj = inj.fail_with_probability(site, 0.25);
        }
        let inj = Arc::new(inj);
        let config = LimaConfig::lima()
            .with_persistence(&dir)
            .with_faults(Arc::clone(&inj));
        let run = run_script(&p.script, &config, &inputs).unwrap();
        assert!(run.value("best").approx_eq(baseline.value("best"), 1e-9));
        assert!(run.value("L").approx_eq(baseline.value("L"), 1e-9));
        drop(run);

        let (_store, recovered, _report) =
            PersistentCacheStore::open(&dir, 0, None).expect("dir is usable");
        assert_reconstructs_to_baseline(&recovered, &inputs, &format!("prob seed={seed}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
