//! Crash-recovery harness for the persistent reuse cache.
//!
//! Simulates process death at every named crash point of the persistence
//! commit protocol ([`lima_core::faults::PERSIST_CRASH_POINTS`]), reopens
//! the store, and asserts the recovery invariant:
//!
//! * the crashed run still computes baseline-equal results (persistence
//!   failures degrade durability, never answers);
//! * the recovered store is a *consistent subset* — every recovered entry,
//!   reconstructed from its persisted lineage via the runtime's
//!   [`recompute`], equals the value on disk (i.e. the reuse-off baseline
//!   computation of that lineage);
//! * no torn or orphaned record is ever served;
//! * a warm-restart run of gridsearch-LM over the same persist directory
//!   records persistent-cache hits in `LimaStats`.
//!
//! The seed matrix is controlled by `LIMA_FAULT_SEEDS` (comma-separated
//! u64s); CI runs several seeds so the crash schedule varies per PR.

use lima::prelude::*;
use lima_core::cache::persist::PersistentCacheStore;
use lima_core::faults::{FaultInjector, FaultSite, PERSIST_CRASH_POINTS};
use lima_matrix::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn seeds() -> Vec<u64> {
    std::env::var("LIMA_FAULT_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![0, 7, 42])
}

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "lima-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Reconstructs a recovered entry's lineage with the reuse-off baseline
/// executor and compares against the value recovered from disk.
fn assert_reconstructs_to_baseline(
    entries: &[lima_core::cache::persist::RecoveredEntry],
    inputs: &[(&str, Value)],
    what: &str,
) {
    for e in entries {
        let mut ctx = ExecutionContext::new(LimaConfig::base());
        for (name, v) in inputs {
            // Serve both script-level `read <name>` leaves and the synthetic
            // `read var:<name>` leaves minted for live input variables.
            ctx.data.register(*name, v.clone());
            ctx.data.register(format!("var:{name}"), v.clone());
        }
        let recomputed = match recompute(&e.root, &mut ctx) {
            Ok(v) => v,
            Err(err) => {
                // Lineage embedding opaque function-call items (traced with
                // dedup off) persists and recovers fine but cannot be
                // replayed; such entries are repair-ineligible by design and
                // are exempt from the replay invariant. Anything else is a
                // real recovery bug.
                let msg = err.to_string();
                assert!(
                    msg.contains("unsupported opcode"),
                    "{what}: recovered lineage must reconstruct: {msg}"
                );
                continue;
            }
        };
        assert!(
            recomputed.approx_eq(&e.value, 1e-9),
            "{what}: recovered value diverges from its lineage reconstruction"
        );
    }
}

/// Crash at every named crash point, at several occurrence indices, across
/// the seed matrix: the crashed run stays correct, and recovery yields a
/// consistent, reconstructable subset.
#[test]
fn crash_at_every_point_recovers_consistent_reconstructable_subset() {
    let grid = pipelines::hyperparameter_grid(2, 2, 1);
    for seed in seeds() {
        // Serial gridsearch-LM keeps the persist-attempt order (and with it
        // the crash schedule) deterministic per seed.
        let p = pipelines::hlm(40, 8, 2, 4, &grid, false, seed);
        let inputs = p.input_refs();
        let baseline = run_script(&p.script, &LimaConfig::base(), &inputs).unwrap();

        for site in PERSIST_CRASH_POINTS {
            for occ in [0u64, 2, 5] {
                let dir = tmp_dir("crash");
                let inj = Arc::new(FaultInjector::new(seed).fail_at(site, &[occ]));
                let config = LimaConfig::lima()
                    .with_persistence(&dir)
                    .with_faults(Arc::clone(&inj));
                let run = run_script(&p.script, &config, &inputs).unwrap();

                // A persistence crash must never change answers.
                let tag = format!("seed={seed} site={site:?} occ={occ}");
                assert!(
                    run.value("best").approx_eq(baseline.value("best"), 1e-9),
                    "{tag}: best loss diverged from the reuse-off baseline"
                );
                assert!(
                    run.value("L").approx_eq(baseline.value("L"), 1e-9),
                    "{tag}: loss matrix diverged from the reuse-off baseline"
                );
                let crashed = inj.injected(site) > 0;
                if crashed {
                    assert!(
                        LimaStats::get(&run.ctx.stats.persist_failures) >= 1,
                        "{tag}: crash fired but persist_failures stayed 0"
                    );
                }
                drop(run);

                // "Next process": recovery must hand back a consistent
                // subset, repairing whatever the crash left behind.
                let (store, recovered, report) =
                    PersistentCacheStore::open(&dir, 0, None).expect("dir is usable");
                assert_eq!(
                    store.live_entries(),
                    recovered.len(),
                    "{tag}: live entries disagree with recovered list"
                );
                match site {
                    // Torn WAL tails only arise from mid-append crashes.
                    FaultSite::PersistWalAppend => {}
                    _ => assert!(!report.torn_tail_truncated, "{tag}: unexpected torn tail"),
                }
                if crashed {
                    // Every crash point leaves debris (a temp file, an
                    // orphaned value file, a torn record + orphan, or — for
                    // compaction crashes — a stale WAL temp/generation) that
                    // recovery must have repaired, not served.
                    assert!(
                        report.orphans_gcd >= 1
                            || report.torn_tail_truncated
                            || report.stale_tmp_gcd >= 1
                            || report.stale_generations_removed >= 1,
                        "{tag}: crash left no repaired debris? report: {report:?}"
                    );
                }
                assert_reconstructs_to_baseline(&recovered, &inputs, &tag);
                drop(store);

                // Recovery is idempotent: a second reopen finds a clean store
                // with the same entry count and nothing left to repair.
                let (_s2, recovered2, report2) =
                    PersistentCacheStore::open(&dir, 0, None).expect("dir is usable");
                assert_eq!(recovered2.len(), recovered.len(), "{tag}: not idempotent");
                assert!(!report2.torn_tail_truncated, "{tag}: torn tail resurfaced");
                assert_eq!(report2.orphans_gcd, 0, "{tag}: orphans resurfaced");
                assert_eq!(report2.dropped, 0, "{tag}: drops resurfaced");
                assert_eq!(report2.stale_tmp_gcd, 0, "{tag}: stale tmps resurfaced");
                assert_eq!(
                    report2.stale_generations_removed, 0,
                    "{tag}: stale generations resurfaced"
                );

                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// Tombstone-heavy compaction under crash injection: a small persist budget
/// forces evictions (tombstones), auto-compaction rewrites the WAL, and a
/// crash at either compaction crash point (mid-rewrite, or around the
/// generation switch) must land recovery on a consistent generation whose
/// entries still reconstruct to the reuse-off baseline. A fault-free control
/// proves compaction strictly shrinks the WAL for the same workload.
#[test]
fn compaction_crash_matrix_recovers_and_strictly_reclaims() {
    let grid = pipelines::hyperparameter_grid(2, 2, 1);
    for seed in seeds() {
        let p = pipelines::hlm(40, 8, 2, 4, &grid, false, seed);
        let inputs = p.input_refs();
        let baseline = run_script(&p.script, &LimaConfig::base(), &inputs).unwrap();

        // Control: same tombstone-heavy workload, auto-compaction disabled,
        // then one explicit compaction — the WAL must strictly shrink.
        let dir = tmp_dir("compact-ctl");
        let ctl = LimaConfig {
            persist_budget_bytes: 24 * 1024,
            persist_compact_factor: 0,
            ..LimaConfig::lima().with_persistence(&dir)
        };
        let run = run_script(&p.script, &ctl, &inputs).unwrap();
        assert!(run.value("best").approx_eq(baseline.value("best"), 1e-9));
        let out = run
            .ctx
            .cache
            .as_ref()
            .and_then(|c| c.compact_persist())
            .expect("persistent store must be compactable");
        assert!(
            out.wal_bytes_after < out.wal_bytes_before,
            "seed={seed}: compaction must strictly shrink a tombstone-heavy \
             WAL ({} -> {} bytes)",
            out.wal_bytes_before,
            out.wal_bytes_after
        );
        assert!(
            LimaStats::get(&run.ctx.stats.persist_compactions) >= 1
                && LimaStats::get(&run.ctx.stats.persist_compact_reclaimed) >= 1,
            "seed={seed}: compaction counters not recorded"
        );
        drop(run);
        let _ = std::fs::remove_dir_all(&dir);

        // Crash matrix over the compaction-specific crash points, with
        // auto-compaction armed aggressively so it fires mid-run.
        for site in [
            FaultSite::PersistCompactWrite,
            FaultSite::PersistCompactSwitch,
        ] {
            for occ in [0u64, 1, 3] {
                let dir = tmp_dir("compact-crash");
                let inj = Arc::new(FaultInjector::new(seed).fail_at(site, &[occ]));
                let config = LimaConfig {
                    persist_budget_bytes: 24 * 1024,
                    persist_compact_min_bytes: 1024,
                    persist_compact_factor: 1,
                    ..LimaConfig::lima()
                        .with_persistence(&dir)
                        .with_faults(Arc::clone(&inj))
                };
                let run = run_script(&p.script, &config, &inputs).unwrap();
                let tag = format!("seed={seed} site={site:?} occ={occ}");
                assert!(
                    run.value("best").approx_eq(baseline.value("best"), 1e-9),
                    "{tag}: best loss diverged from the reuse-off baseline"
                );
                assert!(
                    run.value("L").approx_eq(baseline.value("L"), 1e-9),
                    "{tag}: loss matrix diverged from the reuse-off baseline"
                );
                let crashed = inj.injected(site) > 0;
                drop(run);

                let (store, recovered, report) =
                    PersistentCacheStore::open(&dir, 0, None).expect("dir is usable");
                assert_eq!(
                    store.live_entries(),
                    recovered.len(),
                    "{tag}: live entries disagree with recovered list"
                );
                if crashed {
                    assert!(
                        report.stale_tmp_gcd >= 1
                            || report.stale_generations_removed >= 1
                            || report.orphans_gcd >= 1,
                        "{tag}: compaction crash left no repaired debris? {report:?}"
                    );
                }
                assert_reconstructs_to_baseline(&recovered, &inputs, &tag);
                drop(store);

                let (_s2, recovered2, report2) =
                    PersistentCacheStore::open(&dir, 0, None).expect("dir is usable");
                assert_eq!(recovered2.len(), recovered.len(), "{tag}: not idempotent");
                assert_eq!(report2.stale_tmp_gcd, 0, "{tag}: stale tmps resurfaced");
                assert_eq!(
                    report2.stale_generations_removed, 0,
                    "{tag}: stale generations resurfaced"
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// At-rest corruption across every persisted value file is repaired — not
/// dropped — on restart when the repair hook can serve the workload's
/// inputs: recovery recomputes each corrupt entry from its lineage, the
/// restarted run still takes warm hits, and answers stay baseline-equal.
#[test]
fn corrupt_at_rest_values_are_repaired_from_lineage_on_restart() {
    let dir = tmp_dir("repair");
    let grid = pipelines::hyperparameter_grid(2, 2, 1);
    let p = pipelines::hlm(40, 8, 2, 4, &grid, false, 11);
    let inputs = p.input_refs();
    let baseline = run_script(&p.script, &LimaConfig::base(), &inputs).unwrap();

    // Multi-level tracing mints opaque `fcall` lineage items that cannot be
    // replayed; with it disabled every persisted lineage is repairable.
    let mkcfg = || LimaConfig {
        multilevel: false,
        ..LimaConfig::lima().with_persistence(&dir)
    };
    let r1 = run_script(&p.script, &mkcfg(), &inputs).unwrap();
    let recovered_target = LimaStats::get(&r1.ctx.stats.persist_writes);
    assert!(recovered_target >= 1, "first run persisted nothing");
    drop(r1);

    // Flip one bit in the middle of every persisted value file.
    let mut corrupted = 0u64;
    for e in std::fs::read_dir(dir.join("values")).unwrap().flatten() {
        let path = e.path();
        if path.extension().is_some_and(|x| x == "val") {
            let mut raw = std::fs::read(&path).unwrap();
            let mid = raw.len() / 2;
            raw[mid] ^= 0x01;
            std::fs::write(&path, &raw).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted >= 1, "no value files on disk to corrupt");

    // Restart with a repair hook that serves the workload inputs: every
    // corrupt entry is recomputed from lineage instead of dropped.
    let data = Arc::new(lima_runtime::DataRegistry::new());
    for (name, v) in &inputs {
        data.register(*name, v.clone());
        data.register(format!("var:{name}"), v.clone());
    }
    let config = mkcfg().with_repair(lima_runtime::repair::registry_repairer(data));
    let r2 = run_script(&p.script, &config, &inputs).unwrap();
    let s2 = &r2.ctx.stats;
    assert_eq!(
        LimaStats::get(&s2.persist_repairs),
        corrupted,
        "every corrupt value must be repaired from lineage"
    );
    assert_eq!(
        LimaStats::get(&s2.persist_repair_failures),
        0,
        "no repair may fail with inputs served"
    );
    assert!(
        LimaStats::get(&s2.persist_recovered) >= corrupted,
        "repaired entries must be recovered, not dropped"
    );
    assert!(
        LimaStats::get(&s2.persist_hits) >= 1,
        "repaired store must still serve warm hits"
    );
    assert!(r2.value("best").approx_eq(baseline.value("best"), 1e-9));
    assert!(r2.value("L").approx_eq(baseline.value("L"), 1e-9));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A second process pointed at the same persist directory warm-starts: the
/// recovered entries serve hits (counted as `persist_hits`) and the results
/// still equal the reuse-off baseline.
#[test]
fn warm_restart_gridsearch_lm_records_persistent_cache_hits() {
    let dir = tmp_dir("warm");
    let grid = pipelines::hyperparameter_grid(3, 2, 2);
    let p = pipelines::hlm(60, 12, 2, 6, &grid, true, 7);
    let inputs = p.input_refs();
    let baseline = run_script(&p.script, &LimaConfig::base(), &inputs).unwrap();

    // First process: cold cache, entries durably persisted as they are
    // computed.
    let r1 = run_script(
        &p.script,
        &LimaConfig::lima().with_persistence(&dir),
        &inputs,
    )
    .unwrap();
    assert!(r1.value("best").approx_eq(baseline.value("best"), 1e-9));
    assert!(r1.value("L").approx_eq(baseline.value("L"), 1e-9));
    let s1 = &r1.ctx.stats;
    assert!(
        LimaStats::get(&s1.persist_writes) >= 1,
        "first run persisted nothing"
    );
    assert_eq!(LimaStats::get(&s1.persist_hits), 0, "cold start cannot hit");
    drop(r1);

    // Second process: a fresh cache over the same directory recovers the
    // manifest and serves warm hits without recomputing.
    let r2 = run_script(
        &p.script,
        &LimaConfig::lima().with_persistence(&dir),
        &inputs,
    )
    .unwrap();
    let s2 = &r2.ctx.stats;
    assert!(
        LimaStats::get(&s2.persist_recovered) >= 1,
        "second run recovered nothing"
    );
    assert!(
        LimaStats::get(&s2.persist_hits) >= 1,
        "warm restart must serve at least one persistent-cache hit"
    );
    assert!(r2.value("best").approx_eq(baseline.value("best"), 1e-9));
    assert!(r2.value("L").approx_eq(baseline.value("L"), 1e-9));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Probabilistic mixed-crash sweep driven by the seed matrix: whatever
/// combination of crash points fires first, the run stays baseline-equal and
/// recovery stays consistent.
#[test]
fn probabilistic_crash_schedule_stays_consistent() {
    let grid = pipelines::hyperparameter_grid(2, 2, 1);
    for seed in seeds() {
        let p = pipelines::hlm(40, 8, 2, 4, &grid, false, seed);
        let inputs = p.input_refs();
        let baseline = run_script(&p.script, &LimaConfig::base(), &inputs).unwrap();

        let dir = tmp_dir("prob");
        let mut inj = FaultInjector::new(seed);
        for site in PERSIST_CRASH_POINTS {
            inj = inj.fail_with_probability(site, 0.25);
        }
        let inj = Arc::new(inj);
        let config = LimaConfig::lima()
            .with_persistence(&dir)
            .with_faults(Arc::clone(&inj));
        let run = run_script(&p.script, &config, &inputs).unwrap();
        assert!(run.value("best").approx_eq(baseline.value("best"), 1e-9));
        assert!(run.value("L").approx_eq(baseline.value("L"), 1e-9));
        drop(run);

        let (_store, recovered, _report) =
            PersistentCacheStore::open(&dir, 0, None).expect("dir is usable");
        assert_reconstructs_to_baseline(&recovered, &inputs, &format!("prob seed={seed}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
