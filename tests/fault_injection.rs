//! Failure-hardening integration tests: with faults injected into the spill,
//! cache-placeholder, and parfor layers, pipelines still produce the same
//! results as a reuse-disabled baseline — degraded performance, never
//! degraded answers — and the failures are observable through `LimaStats`.

use lima::prelude::*;
use lima_core::cache::spill::SpillStore;
use lima_core::faults::{FaultInjector, FaultSite};
use lima_runtime::RuntimeError;
use proptest::prelude::*;
use std::sync::Arc;

/// Gridsearch-LM (HLM-P, parfor over the hyper-parameter grid) under spill
/// write/read/corruption faults and fulfiller death: results must match the
/// reuse-off baseline exactly up to float tolerance.
#[test]
fn gridsearch_lm_matches_baseline_under_injected_faults() {
    let grid = pipelines::hyperparameter_grid(3, 2, 2);
    let p = pipelines::hlm(60, 12, 2, 6, &grid, true, 7);

    let baseline = run_script(&p.script, &LimaConfig::base(), &p.input_refs()).unwrap();

    let inj = Arc::new(
        FaultInjector::new(42)
            .fail_every(FaultSite::SpillWrite, 3)
            .fail_every(FaultSite::SpillCorrupt, 2)
            .fail_every(FaultSite::SpillRead, 5)
            .fail_every(FaultSite::FulfillerDeath, 7),
    );
    let config = LimaConfig {
        // Small budget so eviction (and with it the spill fault sites) is
        // actually exercised.
        budget_bytes: 64 * 1024,
        placeholder_timeout_ms: 300,
        ..LimaConfig::lima()
    }
    .with_faults(Arc::clone(&inj));
    let faulted = run_script(&p.script, &config, &p.input_refs()).unwrap();

    assert!(
        faulted
            .value("best")
            .approx_eq(baseline.value("best"), 1e-9),
        "best loss must match the reuse-off baseline"
    );
    assert!(
        faulted.value("L").approx_eq(baseline.value("L"), 1e-9),
        "full loss matrix must match the reuse-off baseline"
    );
    // The harness did fire, and its effects are observable via LimaStats.
    assert!(
        inj.injected(FaultSite::FulfillerDeath) >= 1,
        "expected at least one fulfiller death: {} reservations consulted",
        inj.occurrences(FaultSite::FulfillerDeath)
    );
    let stats = &faulted.ctx.stats;
    assert!(LimaStats::get(&stats.probes) > 0, "cache was in play");
    // Every injected spill failure must be accounted for in the counters.
    assert_eq!(
        inj.injected(FaultSite::SpillWrite),
        LimaStats::get(&stats.spill_failures)
    );
    // Every injected read failure surfaced as a counted restore failure.
    // (Corrupted files only count when someone actually restores them.)
    assert!(LimaStats::get(&stats.restore_failures) >= inj.injected(FaultSite::SpillRead));
}

/// Cross-validation (HCV-P, parfor over folds) under restore failures and
/// fulfiller death.
#[test]
fn parfor_cv_matches_baseline_under_injected_faults() {
    let p = pipelines::hcv(48, 6, 4, 4, true, 11);

    let baseline = run_script(&p.script, &LimaConfig::base(), &p.input_refs()).unwrap();

    let inj = Arc::new(
        FaultInjector::new(7)
            .fail_every(FaultSite::SpillRead, 2)
            .fail_every(FaultSite::FulfillerDeath, 5),
    );
    let config = LimaConfig {
        budget_bytes: 64 * 1024,
        placeholder_timeout_ms: 300,
        ..LimaConfig::lima()
    }
    .with_faults(Arc::clone(&inj));
    let faulted = run_script(&p.script, &config, &p.input_refs()).unwrap();

    assert!(faulted
        .value("best")
        .approx_eq(baseline.value("best"), 1e-9));
    assert!(faulted.value("L").approx_eq(baseline.value("L"), 1e-9));
    assert!(inj.injected(FaultSite::FulfillerDeath) >= 1);
}

/// An injected worker panic surfaces as `RuntimeError::WorkerPanic` — the
/// process stays alive and the shared cache has no deadlocked placeholders:
/// the same cache serves a clean rerun afterwards.
#[test]
fn worker_panic_surfaces_as_error_and_cache_stays_usable() {
    let src = scripts::with_builtins(
        "
        R = matrix(0, 8, 1);
        parfor (i in 1:8) {
          R[i, 1] = as.matrix(i * 2);
        }
        t = sum(R);
        ",
    );
    let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::WorkerPanic, &[3]));
    let config = LimaConfig {
        placeholder_timeout_ms: 500,
        ..LimaConfig::lima()
    }
    .with_faults(Arc::clone(&inj));
    let cache = LineageCache::new(config.clone());

    let err = match run_script_with_cache(&src, &config, &[], Some(Arc::clone(&cache))) {
        Err(e) => e,
        Ok(_) => panic!("the injected worker panic must fail the run"),
    };
    match err {
        lima_algos::runner::RunError::Runtime(RuntimeError::WorkerPanic(msg)) => {
            assert!(msg.contains("injected fault"), "unexpected payload: {msg}");
        }
        other => panic!("expected WorkerPanic, got: {other}"),
    }
    assert_eq!(inj.injected(FaultSite::WorkerPanic), 1);
    assert!(LimaStats::get(&cache.stats().worker_panics) >= 1);

    // The panic left no deadlocked placeholders: a clean configuration
    // sharing the same cache completes and computes the right answer.
    let clean = LimaConfig::lima();
    let ok = run_script_with_cache(&src, &clean, &[], Some(cache)).unwrap();
    assert_eq!(ok.value("t").as_f64().unwrap(), 72.0);
}

/// A worker panic in the degenerate serial path (a single iteration runs
/// in-place on the caller's thread) is isolated the same way, and the loop
/// variable does not leak into the parent scope.
#[test]
fn serial_parfor_panic_is_isolated_and_loop_var_scoped() {
    let src = scripts::with_builtins(
        "
        R = matrix(0, 1, 1);
        parfor (i in 1:1) {
          R[1, 1] = as.matrix(i + 4);
        }
        t = sum(R);
        ",
    );
    // Clean run: loop variable must not survive the parfor.
    let ok = run_script(&src, &LimaConfig::lima(), &[]).unwrap();
    assert_eq!(ok.value("t").as_f64().unwrap(), 5.0);
    assert!(
        !ok.ctx.symtab.contains_key("i"),
        "parfor loop variable leaked into the parent scope"
    );

    let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::WorkerPanic, &[1]));
    let config = LimaConfig::lima().with_faults(inj);
    let err = match run_script(&src, &config, &[]) {
        Err(e) => e,
        Ok(_) => panic!("the injected worker panic must fail the run"),
    };
    assert!(
        matches!(
            err,
            lima_algos::runner::RunError::Runtime(RuntimeError::WorkerPanic(_))
        ),
        "expected WorkerPanic, got: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Spill a matrix, flip one arbitrary byte of the file, restore: the
    /// result is always a clean error — never a silently wrong matrix and
    /// never a panic.
    #[test]
    fn single_byte_spill_corruption_always_yields_clean_error(
        (rows, cols) in (1usize..9, 1usize..9),
        seed in 0u64..1000,
        pos_sel in 0usize..10_000,
        mask in 1u8..=255,
    ) {
        let m = DenseMatrix::from_fn(rows, cols, |i, j| {
            ((seed as usize + i * cols + j) % 97) as f64 * 0.375 - 18.0
        });
        let store = SpillStore::new().unwrap();
        let (path, bytes) = store.spill(&Value::matrix(m.clone())).unwrap().unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        prop_assert_eq!(raw.len(), bytes);
        let pos = pos_sel % raw.len();
        raw[pos] ^= mask;
        std::fs::write(&path, &raw).unwrap();
        match store.restore(&path) {
            Err(_) => {} // corruption detected: the cache degrades to a miss
            Ok(v) => {
                // Safety net: an undetected corruption may never change the
                // restored data (with a nonzero XOR mask this cannot pass).
                prop_assert!(
                    v.as_matrix().unwrap().approx_eq(&m, 0.0),
                    "corrupt spill file restored to a wrong matrix"
                );
            }
        }
    }
}
