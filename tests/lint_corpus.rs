//! Golden-file snapshot tests for `lima-lint check` (S3), the shared
//! exit-code contract (S6), and JSON output round-tripping (S5 support).
//!
//! Each `tests/corpus/<name>.dml` is a deliberately broken script; its
//! byte-exact rendered diagnostics live in `tests/corpus/<name>.expected`.
//! After an intentional renderer or message change, regenerate with:
//!
//! ```text
//! LIMA_BLESS=1 cargo test --test lint_corpus
//! ```

use std::path::Path;
use std::process::Command;

const LINT_BIN: &str = env!("CARGO_BIN_EXE_lima-lint");

/// Runs `lima-lint` with the repo root as cwd so rendered paths (and thus
/// the goldens) are stable relative paths.
fn lint(args: &[&str]) -> std::process::Output {
    Command::new(LINT_BIN)
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("lima-lint runs")
}

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn broken_corpus_matches_golden_renders() {
    let mut cases = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("dml") {
            continue;
        }
        cases += 1;
        let rel = format!(
            "tests/corpus/{}",
            path.file_name().unwrap().to_str().unwrap()
        );
        let out = lint(&["check", &rel]);
        let rendered = String::from_utf8(out.stdout).expect("renders are UTF-8");
        let golden_path = path.with_extension("expected");
        if std::env::var_os("LIMA_BLESS").is_some() {
            std::fs::write(&golden_path, &rendered).expect("bless golden");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: {e} (run with LIMA_BLESS=1 to create)", rel));
        assert_eq!(
            rendered,
            golden,
            "{rel}: rendered diagnostics drifted from {} (LIMA_BLESS=1 regenerates)",
            golden_path.display()
        );
    }
    assert!(cases >= 4, "corpus should hold at least 4 broken scripts");
}

#[test]
fn broken_corpus_reports_expected_codes() {
    for (script, code) in [
        ("parse_error", "L0002"),
        ("racy_parfor", "L0100"),
        ("reuse_ineligible", "L0201"),
        ("shadowing", "L0204"),
    ] {
        let rel = format!("tests/corpus/{script}.dml");
        let out = lint(&["check", "--format", "json", &rel]);
        let line = String::from_utf8(out.stdout).unwrap();
        let diags = lima_core::diagnostics_from_json(line.trim())
            .unwrap_or_else(|| panic!("{rel}: JSON output must parse:\n{line}"));
        assert!(
            diags.iter().any(|d| d.code == code),
            "{rel}: expected a {code} diagnostic, got {diags:?}"
        );
    }
}

#[test]
fn json_output_round_trips_losslessly() {
    let rel = "tests/corpus/racy_parfor.dml";
    let out = lint(&["check", "--format", "json", rel]);
    let line = String::from_utf8(out.stdout).unwrap();
    let diags = lima_core::diagnostics_from_json(line.trim()).expect("parses");
    // Re-serialize and re-parse: the structured form must be a fixed point.
    let again = lima_core::diagnostics_to_json(&diags);
    assert_eq!(lima_core::diagnostics_from_json(&again).unwrap(), diags);
    // And the span must anchor the racy write in the actual source.
    let src = std::fs::read_to_string(corpus_dir().join("racy_parfor.dml")).unwrap();
    let span = diags[0].primary.expect("racy parfor carries a span");
    assert!(span.in_bounds(src.len()));
    assert_eq!(
        &src[span.start as usize..span.end as usize],
        "R[1, 1] = as.matrix(i)"
    );
}

/// S6: `0` clean, `1` findings, `2` usage/internal — shared by every mode.
#[test]
fn exit_code_contract_is_shared_across_modes() {
    // check: clean example → 0.
    let out = lint(&["check", "examples/dml/gram.dml"]);
    assert_eq!(out.status.code(), Some(0), "clean script");
    // check: error finding → 1.
    let out = lint(&["check", "tests/corpus/racy_parfor.dml"]);
    assert_eq!(out.status.code(), Some(1), "error finding");
    // check: warning alone → 0, promoted by --deny warnings → 1.
    let out = lint(&["check", "tests/corpus/shadowing.dml"]);
    assert_eq!(out.status.code(), Some(0), "warning without --deny");
    let out = lint(&["check", "--deny", "warnings", "tests/corpus/shadowing.dml"]);
    assert_eq!(out.status.code(), Some(1), "warning with --deny");
    // check: unreadable input → 2, even alongside findings.
    let out = lint(&["check", "tests/corpus/no_such_file.dml"]);
    assert_eq!(out.status.code(), Some(2), "unreadable input");
    let out = lint(&[
        "check",
        "tests/corpus/no_such_file.dml",
        "tests/corpus/racy_parfor.dml",
    ]);
    assert_eq!(out.status.code(), Some(2), "usage outranks findings");
    // check: bad flags → 2.
    assert_eq!(lint(&["check", "--bogus"]).status.code(), Some(2));
    assert_eq!(lint(&["check"]).status.code(), Some(2), "no inputs");
    // log mode: no inputs → 2; a clean log (empty is vacuously clean is NOT
    // true — an empty log is unparseable) exercised via a real trace below.
    assert_eq!(lint(&[]).status.code(), Some(2), "log mode no inputs");
    // fsck: missing directory → 2.
    let out = lint(&["fsck", "/no/such/dir"]);
    assert_eq!(out.status.code(), Some(2), "fsck non-directory");
    // --help → 0 and documents the contract in every mode's reach.
    let out = lint(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let help = String::from_utf8(out.stdout).unwrap();
    assert!(
        help.contains("0 clean, 1 findings, 2 usage/internal"),
        "--help must document the exit-code contract:\n{help}"
    );
}
