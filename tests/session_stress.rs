//! Session-pool stress harness: N concurrent sessions over one shared reuse
//! cache under an injected fault matrix (worker panics, fulfiller death,
//! allocation failures, slow spills), plus cooperative-cancellation and
//! memory-governor scenarios.
//!
//! Invariants asserted throughout:
//!
//! * no deadlock — every session either completes or fails with a *typed*
//!   error, inside an explicit wall-clock bound;
//! * completed sessions compute results equal to a reuse-disabled baseline
//!   (faults degrade performance, never answers);
//! * a cancelled or deadline-expired session never poisons the shared cache:
//!   its in-flight placeholders are aborted, so peers recover immediately
//!   instead of burning `placeholder_timeout_ms`;
//! * under injected `AllocFail` pressure the governor walks the degradation
//!   ladder down *and back up* (observable in `LimaStats`) and the process
//!   never aborts.
//!
//! The seed matrix is controlled by `LIMA_FAULT_SEEDS` (comma-separated
//! u64s), mirroring the crash-recovery harness; CI runs several seeds.

use lima::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn seeds() -> Vec<u64> {
    std::env::var("LIMA_FAULT_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![0, 7, 42])
}

fn input(rows: usize, cols: usize, seed: u64) -> Value {
    Value::matrix(DenseMatrix::from_fn(rows, cols, |i, j| {
        (((i as u64 * 31 + j as u64 * 17 + seed) % 23) as f64) / 23.0 - 0.5
    }))
}

/// A parfor pipeline with per-iteration work plus an iteration-invariant
/// `tsmm` — the latter exercises placeholder contention inside a session and
/// full reuse across sessions.
fn grid_script() -> String {
    lima_algos::scripts::with_builtins(
        "
        R = matrix(0, 12, 1);
        parfor (i in 1:12) {
          G = X * i;
          R[i, 1] = as.matrix(sum(G) + sum(t(X) %*% X));
        }
        s = sum(R);
        ",
    )
}

fn compile_arc(src: &str, config: &LimaConfig) -> Arc<lima_runtime::Program> {
    Arc::new(compile_script(src, config).expect("script compiles"))
}

/// Cross-counter consistency: the derived hit total equals the sum of the
/// per-kind counters and never exceeds the probe count, and savings never
/// exceed what a hit could have credited. Checked after every concurrent
/// scenario because these are exactly the invariants racy double-counting
/// would break.
fn assert_stats_consistent(stats: &LimaStats, label: &str) {
    let full = LimaStats::get(&stats.full_hits);
    let multi = LimaStats::get(&stats.multilevel_hits);
    let partial = LimaStats::get(&stats.partial_hits);
    assert_eq!(
        stats.total_hits(),
        full + multi + partial,
        "{label}: total_hits() drifted from the per-kind counters"
    );
    assert!(
        full + multi <= LimaStats::get(&stats.probes),
        "{label}: more full/multilevel hits than probes"
    );
}

/// Monotonicity: every counter in `after` is >= its value in `before`.
/// Counters only ever accumulate; a decrease means a lost or re-zeroed
/// update somewhere in the concurrent paths.
fn assert_counters_monotone(
    before: &[(&'static str, u64)],
    after: &[(&'static str, u64)],
    label: &str,
) {
    assert_eq!(before.len(), after.len(), "{label}: counter set changed");
    for ((name_b, b), (name_a, a)) in before.iter().zip(after) {
        assert_eq!(name_b, name_a, "{label}: counter order changed");
        assert!(
            a >= b,
            "{label}: counter {name_a} went backwards ({b} -> {a})"
        );
    }
}

/// The core matrix: for every seed, four concurrent sessions run the grid
/// pipeline over one shared cache while fulfiller death, slow spills, and
/// allocation failures fire. All sessions must complete with baseline-equal
/// results, with cross-session reuse observable, inside a wall-clock bound.
#[test]
fn concurrent_sessions_match_baseline_under_fault_matrix() {
    let src = grid_script();
    for seed in seeds() {
        let x = input(40, 10, seed);
        let baseline = run_script(&src, &LimaConfig::base(), &[("X", x.clone())]).unwrap();
        let expect = baseline.value("s").as_f64().unwrap();

        let inj = Arc::new(
            FaultInjector::new(seed)
                .fail_every(FaultSite::FulfillerDeath, 5)
                .fail_every(FaultSite::SlowSpill, 3)
                .fail_every(FaultSite::AllocFail, 6),
        );
        let config = LimaConfig {
            budget_bytes: 64 * 1024,
            placeholder_timeout_ms: 2_000,
            ..LimaConfig::lima()
        }
        .with_governor(2 * 1024 * 1024)
        .with_faults(Arc::clone(&inj));

        let pool = SessionPool::new(config.clone());
        let program = compile_arc(&src, &config);
        let t0 = Instant::now();
        let handles: Vec<SessionHandle> = (0..4)
            .map(|_| {
                pool.spawn(
                    Arc::clone(&program),
                    SessionOptions::new().with_input("X", x.clone()),
                )
                .unwrap()
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap_or_else(|e| {
                panic!("seed {seed}: session must complete under faults, got: {e}")
            });
            let got = out.value("s").as_f64().unwrap();
            assert!(
                (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "seed {seed}: session result {got} diverges from baseline {expect}"
            );
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "seed {seed}: sessions took suspiciously long (deadlock?)"
        );
        let stats = pool.stats();
        assert_eq!(LimaStats::get(&stats.sessions_completed), 4);
        assert!(
            LimaStats::get(&stats.full_hits) >= 1,
            "seed {seed}: cross-session reuse expected"
        );
        assert!(
            inj.total_injected() >= 1,
            "seed {seed}: the fault matrix never fired"
        );
        assert_stats_consistent(&stats, &format!("seed {seed}"));

        // Persist/spill/hit counters must be monotone: re-running the same
        // workload on the same pool may add to any counter but can never
        // subtract (lost updates under the fault matrix would show up here).
        let before = stats.snapshot();
        pool.run(
            Arc::clone(&program),
            SessionOptions::new().with_input("X", x.clone()),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: rerun on warmed pool failed: {e}"));
        let after = stats.snapshot();
        assert_counters_monotone(&before, &after, &format!("seed {seed}"));
        assert_stats_consistent(&stats, &format!("seed {seed} (rerun)"));
    }
}

/// Injected parfor worker panics fail their sessions with a typed
/// `WorkerPanic` — never a pool-wide abort — and leave the shared cache
/// usable: a follow-up session completes promptly even though the
/// placeholder timeout is far longer than the bound we assert.
#[test]
fn worker_panics_fail_typed_and_leave_the_pool_usable() {
    for seed in seeds() {
        let panic_iter = 1 + seed % 8;
        let src = lima_algos::scripts::with_builtins(
            "
            R = matrix(0, 8, 1);
            parfor (i in 1:8) {
              R[i, 1] = as.matrix(sum(X * i));
            }
            s = sum(R);
            ",
        );
        let inj = Arc::new(FaultInjector::new(seed).fail_at(FaultSite::WorkerPanic, &[panic_iter]));
        let config = LimaConfig {
            placeholder_timeout_ms: 30_000,
            ..LimaConfig::lima()
        }
        .with_faults(Arc::clone(&inj));
        let pool = SessionPool::new(config.clone());
        let program = compile_arc(&src, &config);

        let handles: Vec<SessionHandle> = (0..3)
            .map(|_| {
                pool.spawn(
                    Arc::clone(&program),
                    SessionOptions::new().with_input("X", input(20, 6, seed)),
                )
                .unwrap()
            })
            .collect();
        for h in handles {
            match h.join() {
                Err(RuntimeError::WorkerPanic(msg)) => {
                    assert!(msg.contains("injected fault"), "seed {seed}: {msg}")
                }
                other => panic!("seed {seed}: expected WorkerPanic, got {other:?}"),
            }
        }

        // The panics dropped their reservations; a panic-free script over the
        // same pool completes well inside the 30s placeholder timeout.
        let clean = compile_arc("t = sum(X) + sum(t(X) %*% X);", &config);
        let t0 = Instant::now();
        let ok = pool
            .run(
                clean,
                SessionOptions::new().with_input("X", input(20, 6, seed)),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: clean session must pass: {e}"));
        assert!(ok.value("t").as_f64().is_ok());
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "seed {seed}: clean session burned the placeholder timeout"
        );
        assert!(LimaStats::get(&pool.stats().worker_panics) >= 3);
        assert_stats_consistent(&pool.stats(), &format!("seed {seed} after panics"));
    }
}

/// A session hitting its deadline mid-kernel aborts its placeholder, and a
/// peer blocked on that placeholder recovers immediately — far faster than
/// the deliberately huge 60s placeholder timeout — and computes the right
/// answer itself.
#[test]
fn expired_session_mid_kernel_frees_placeholders_for_peers() {
    let src = "Y = X %*% X; s = sum(Y);";
    let x = input(640, 640, 3);
    let baseline = run_script(src, &LimaConfig::base(), &[("X", x.clone())]).unwrap();
    let expect = baseline.value("s").as_f64().unwrap();

    // Pin the scalar Reference backend so the 640³ multiply reliably outlasts
    // the 30ms deadline regardless of how fast the Optimized engine gets.
    let config = LimaConfig {
        placeholder_timeout_ms: 60_000,
        ..LimaConfig::lima()
    }
    .with_backend(BackendKind::Reference);
    let pool = SessionPool::new(config.clone());
    let program = compile_arc(src, &config);

    let t0 = Instant::now();
    let doomed = pool
        .spawn(
            Arc::clone(&program),
            SessionOptions::new()
                .with_input("X", x.clone())
                .with_timeout(Duration::from_millis(30)),
        )
        .unwrap();
    let peer = pool
        .spawn(program, SessionOptions::new().with_input("X", x))
        .unwrap();

    match doomed.join() {
        Err(RuntimeError::DeadlineExceeded) => {}
        Ok(_) => panic!("the 30ms deadline must fire inside the 640x640 matmult"),
        Err(other) => panic!("expected DeadlineExceeded, got {other}"),
    }
    let out = peer.join().expect("peer session must complete");
    let got = out.value("s").as_f64().unwrap();
    assert!(
        (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
        "peer result {got} diverges from baseline {expect}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "peer waited on a dead placeholder instead of recovering"
    );
    assert_eq!(LimaStats::get(&pool.stats().sessions_deadline_exceeded), 1);
}

/// Injected allocation failures drive the governor down the ladder
/// (synthetic pressure), and successful allocations decay it back up — both
/// directions observable in `LimaStats` — while results stay baseline-equal
/// and the process never aborts.
#[test]
fn governor_walks_the_ladder_down_and_back_up_under_alloc_faults() {
    let src = lima_algos::scripts::with_builtins(
        "
        R = matrix(0, 16, 1);
        parfor (i in 1:16) {
          R[i, 1] = as.matrix(sum(X * i));
        }
        s = sum(R);
        ",
    );
    let x = input(20, 10, 9);
    let baseline = run_script(&src, &LimaConfig::base(), &[("X", x.clone())]).unwrap();
    let expect = baseline.value("s").as_f64().unwrap();

    // The first three admissions fail: +3/4 of the budget in synthetic
    // pressure, guaranteed past the L1 watermark. Every later admission
    // succeeds and decays an eighth of the budget, re-arming the ladder.
    let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::AllocFail, &[0, 1, 2]));
    let config = LimaConfig {
        reuse: ReuseMode::Hybrid,
        ..LimaConfig::lima()
    }
    .with_governor(256 * 1024)
    .with_faults(Arc::clone(&inj));
    let pool = SessionPool::new(config.clone());
    let program = compile_arc(&src, &config);

    let out = pool
        .run(
            Arc::clone(&program),
            SessionOptions::new().with_input("X", x.clone()),
        )
        .expect("the governor degrades, it does not abort");
    let got = out.value("s").as_f64().unwrap();
    assert!(
        (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
        "governed result {got} diverges from baseline {expect}"
    );

    let stats = pool.stats();
    assert_eq!(LimaStats::get(&stats.alloc_failures), 3);
    assert!(
        LimaStats::get(&stats.governor_degrades) >= 1,
        "synthetic pressure must walk the ladder down"
    );
    assert!(
        LimaStats::get(&stats.governor_recovers) >= 1,
        "decayed pressure must walk the ladder back up"
    );

    // Pressure has drained: admissions (including sessions) work again.
    let again = pool
        .run(program, SessionOptions::new().with_input("X", x))
        .expect("recovered pool admits sessions");
    assert!(again.value("s").as_f64().is_ok());
    assert_stats_consistent(&stats, "governor ladder");
}

/// Deadline enforcement keeps working while eviction spills crawl
/// (`SlowSpill` latency injection): the slow session fails typed, and a
/// deadline-free peer on the same pool still completes with baseline-equal
/// results.
#[test]
fn deadline_under_slow_spill_fails_typed_and_peers_complete() {
    // Each 320x320 matmult result is ~819KB and expensive to recompute: it
    // fits the 1MB budget alone, but admitting the second one evicts the
    // first, and for an entry that costly the I/O model must choose spill
    // over delete — so the injected SlowSpill latency fires. The doomed
    // session's 20ms deadline fires inside the 25ms injected spill stall (or
    // earlier, between kernel row chunks); the scalar Reference backend is
    // pinned so kernel speedups cannot shrink the window.
    let src = "B = X %*% X; C = X %*% t(X); s = sum(B) + sum(C);";
    let x = input(320, 320, 5);
    let baseline = run_script(src, &LimaConfig::base(), &[("X", x.clone())]).unwrap();
    let expect = baseline.value("s").as_f64().unwrap();

    let inj = Arc::new(FaultInjector::new(0).fail_every(FaultSite::SlowSpill, 1));
    let config = LimaConfig {
        budget_bytes: 1024 * 1024,
        ..LimaConfig::lima()
    }
    .with_backend(BackendKind::Reference)
    .with_faults(Arc::clone(&inj));
    let pool = SessionPool::new(config.clone());
    let program = compile_arc(src, &config);

    let err = pool
        .run(
            Arc::clone(&program),
            SessionOptions::new()
                .with_input("X", x.clone())
                .with_timeout(Duration::from_millis(20)),
        )
        .unwrap_err();
    assert!(
        matches!(err, RuntimeError::DeadlineExceeded),
        "expected DeadlineExceeded under SlowSpill, got {err}"
    );

    let ok = pool
        .run(program, SessionOptions::new().with_input("X", x))
        .expect("deadline-free peer completes despite slow spills");
    assert!(
        inj.injected(FaultSite::SlowSpill) >= 1,
        "the latency injection never fired"
    );
    let got = ok.value("s").as_f64().unwrap();
    assert!(
        (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
        "peer result {got} diverges from baseline {expect}"
    );
    assert_eq!(LimaStats::get(&pool.stats().sessions_deadline_exceeded), 1);
}
