//! Exporter integration tests (lima-obs): a real dedup'd parfor workload is
//! traced end-to-end, exported as Chrome `trace_event` JSON, parsed back with
//! the crate's own (serde-free) JSON parser, and structurally validated —
//! spans nest per thread, lineage ids are attached, categories are known.
//! This is the same validation the CI `obs` job runs against
//! `examples/gridsearch_lm.rs` via `trace_check`.

use lima::lima_core::obs::check_span_nesting;
use lima::prelude::*;
use std::sync::Arc;

fn input(rows: usize, cols: usize) -> Value {
    Value::matrix(DenseMatrix::from_fn(rows, cols, |i, j| {
        (((i * 31 + j * 17) % 23) as f64) / 23.0 - 0.5
    }))
}

/// A dedup-friendly parfor pipeline with an iteration-invariant `tsmm` so the
/// trace contains cache hits, fulfills, parfor worker spans, and kernel spans.
fn traced_script() -> String {
    lima_algos::scripts::with_builtins(
        "
        R = matrix(0, 8, 1);
        parfor (i in 1:8) {
          G = X * i;
          R[i, 1] = as.matrix(sum(G) + sum(t(X) %*% X));
        }
        s = sum(R);
        ",
    )
}

fn run_traced(sample_every: Option<u64>) -> (Arc<Obs>, f64) {
    let obs = Arc::new(Obs::new());
    if let Some(n) = sample_every {
        obs.set_sample_every(n);
    }
    let config = LimaConfig {
        dedup: true,
        ..LimaConfig::lima()
    }
    .with_obs(Arc::clone(&obs));
    let result =
        run_script(&traced_script(), &config, &[("X", input(24, 6))]).expect("traced script runs");
    let s = result.value("s").as_f64().unwrap();
    (obs, s)
}

#[test]
fn trace_out_emits_valid_chrome_trace_with_nesting_and_lineage() {
    let (obs, s) = run_traced(None);
    let baseline = run_script(
        &traced_script(),
        &LimaConfig::base(),
        &[("X", input(24, 6))],
    )
    .unwrap()
    .value("s")
    .as_f64()
    .unwrap();
    assert!((s - baseline).abs() <= 1e-9 * baseline.abs().max(1.0));

    let trace = obs.chrome_trace();
    let summary = validate_chrome_trace(&trace).expect("exported trace must parse and validate");

    assert!(summary.total_events > 0, "a traced run must produce events");
    assert!(
        !summary.spans.is_empty(),
        "instruction/kernel spans expected"
    );
    assert!(
        summary.with_lineage > 0,
        "cache and instruction events must carry lineage ids"
    );
    // Every recording thread has its own ring/track; on multi-core hosts the
    // parfor workers add one track each, on single-core hosts the loop runs
    // serially on the session thread.
    assert!(summary.tids >= 1, "expected at least one per-thread track");

    check_span_nesting(&summary).expect("spans must nest within each thread");

    // Categories in the export come from a fixed vocabulary.
    let known = [
        "instr",
        "kernel",
        "multilevel",
        "cache",
        "rewrite",
        "io",
        "governor",
        "session",
        "parfor",
    ];
    for span in &summary.spans {
        assert!(
            known.contains(&span.cat.as_str()),
            "unknown category '{}' in export",
            span.cat
        );
    }
    // Cache activity for the iteration-invariant tsmm must be visible.
    assert!(
        summary.spans.iter().any(|sp| sp.cat == "parfor"),
        "parfor worker spans missing"
    );
    assert!(
        summary.spans.iter().any(|sp| sp.cat == "kernel"),
        "kernel spans missing"
    );
}

#[test]
fn sampling_thins_high_frequency_events_but_keeps_the_trace_valid() {
    let (dense_obs, _) = run_traced(None);
    let (sampled_obs, _) = run_traced(Some(16));
    let dense = validate_chrome_trace(&dense_obs.chrome_trace()).unwrap();
    let sampled = validate_chrome_trace(&sampled_obs.chrome_trace()).unwrap();
    assert!(
        sampled.total_events < dense.total_events,
        "1-in-16 sampling must thin the event stream ({} vs {})",
        sampled.total_events,
        dense.total_events
    );
    check_span_nesting(&sampled).expect("sampled traces still nest");
}

#[test]
fn trace_json_survives_a_disk_round_trip() {
    let (obs, _) = run_traced(None);
    let dir = std::env::temp_dir().join(format!("lima_obs_export_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    std::fs::write(&path, obs.chrome_trace()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let summary = validate_chrome_trace(&text).expect("trace read back from disk validates");
    assert!(summary.total_events > 0);
    let json = parse_json(&text).expect("raw JSON parses");
    assert!(json.get("traceEvents").is_some());
    std::fs::remove_dir_all(&dir).ok();
}
