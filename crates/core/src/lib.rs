//! # lima-core
//!
//! The LIMA framework itself (paper §3–§4): fine-grained lineage tracing with
//! multi-level deduplication, and lineage-based full/partial reuse with
//! cost-based eviction.
//!
//! The crate is runtime-agnostic: it knows nothing about instructions or
//! program blocks. The `lima-runtime` crate drives it by
//!
//! 1. creating [`lineage::LineageItem`]s *before* executing each instruction,
//! 2. probing the [`cache::LineageCache`] with the item (full reuse, then
//!    partial-reuse rewrites), and
//! 3. registering computed outputs back into the cache.

pub mod cache;
pub mod config;
pub mod diag;
pub mod faults;
pub mod governor;
pub mod interrupt;
pub mod lineage;
pub mod obs;
pub mod opcodes;
pub mod resilience;
pub mod stats;

pub use cache::persist::{
    fsck, CompactOutcome, DegradeReason, FsckFinding, FsckReport, PersistOptions, RepairHook,
    ScrubOutcome,
};
pub use cache::{ItemCost, LineageCache};
pub use config::{EvictionPolicy, LimaConfig, ReuseMode};
pub use diag::{
    diagnostics_from_json, diagnostics_to_json, line_col, sort_diagnostics, Diagnostic, Label,
    Severity, Span,
};
pub use faults::{FaultInjector, FaultSite};
pub use governor::{PressureLevel, ResourceGovernor};
pub use interrupt::{CancelToken, Interrupt, InterruptKind};
pub use lineage::{LinRef, LineageItem, LineageMap};
pub use obs::{Event, EventKind, Obs};
pub use resilience::{CircuitBreaker, RetryBudget, RetryPolicy};
pub use stats::LimaStats;
