//! Deterministic, seeded fault injection for robustness testing.
//!
//! A [`FaultInjector`] is threaded through [`crate::LimaConfig`] (and from
//! there into the cache, the spill store, and the runtime). Each fault *site*
//! counts how often it is consulted; a per-site trigger decides which of
//! those occurrences actually fail. All triggers are deterministic functions
//! of the seed, the site, and the occurrence (or iteration) index, so a
//! failing run replays bit-identically.
//!
//! Production configurations carry no injector (`faults: None`) and pay only
//! an `Option` check at each site.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Code locations where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Spill-file write fails (evict-by-spill degrades to evict-by-delete).
    SpillWrite,
    /// A successfully written spill file gets one byte flipped on disk.
    SpillCorrupt,
    /// Spill-file read fails before any bytes are returned.
    SpillRead,
    /// A cache reservation holder "dies" without fulfilling or aborting its
    /// placeholder; waiters must recover via the placeholder wait timeout.
    FulfillerDeath,
    /// A parfor worker panics at the start of an iteration.
    WorkerPanic,
    /// Crash point: the process dies mid-WAL-append — only a prefix of the
    /// manifest record reaches disk (torn tail).
    PersistWalAppend,
    /// Crash point: the process dies between committing the value file
    /// (rename done) and appending the manifest record (orphan value file).
    PersistCommit,
    /// Crash point: the process dies mid-rename — the temp value file exists
    /// but the final value file and the manifest record do not.
    PersistRename,
    /// An allocation attempt fails (simulated OOM). Consulted by the
    /// [`crate::governor::ResourceGovernor`] when admitting new cache
    /// entries; a fired fault also registers synthetic memory pressure so
    /// the degradation ladder walks down deterministically.
    AllocFail,
    /// Spill-file writes stall: each fired occurrence sleeps
    /// [`SLOW_SPILL_DELAY_MS`] before proceeding, so deadline checks during
    /// eviction-heavy phases are exercised.
    SlowSpill,
    /// A `limad` connection is torn down after processing a request but
    /// before its response frame is written — the client sees EOF and must
    /// reconnect/retry. Consulted once per response.
    ConnDrop,
    /// A `limad` shard stalls for [`SLOW_SHARD_DELAY_MS`] before handling a
    /// request. Consulted with the shard index as the explicit occurrence
    /// key, so `fail_at(SlowShard, &[k])` makes exactly shard `k` slow.
    SlowShard,
    /// Crash point: the process dies mid-write of a compacted WAL generation
    /// — only a (possibly torn) `manifest.<gen>.wal.tmp` exists; recovery
    /// stays on the previous generation and GCs the temp file.
    PersistCompactWrite,
    /// Crash point: the process dies at the generation switch. Consulted
    /// twice per compaction — once *before* the rename (the new generation
    /// is complete but uncommitted) and once *after* it (both generations
    /// exist on disk); recovery must land on a single consistent generation
    /// either way.
    PersistCompactSwitch,
    /// A persist/WAL write fails with `ENOSPC` (disk full). The store
    /// degrades to memory-only with a typed reason; it never retries.
    DiskFull,
    /// An `fsync` of a persist artifact fails. Post-fsync-failure page state
    /// is unknown (no retry-on-dirty-page assumption), so the store degrades
    /// to memory-only with a typed reason.
    FsyncFail,
}

/// Latency (milliseconds) injected per fired [`FaultSite::SlowSpill`].
pub const SLOW_SPILL_DELAY_MS: u64 = 25;

/// Latency (milliseconds) injected per fired [`FaultSite::SlowShard`].
pub const SLOW_SHARD_DELAY_MS: u64 = 50;

const SITES: [FaultSite; 16] = [
    FaultSite::SpillWrite,
    FaultSite::SpillCorrupt,
    FaultSite::SpillRead,
    FaultSite::FulfillerDeath,
    FaultSite::WorkerPanic,
    FaultSite::PersistWalAppend,
    FaultSite::PersistCommit,
    FaultSite::PersistRename,
    FaultSite::AllocFail,
    FaultSite::SlowSpill,
    FaultSite::ConnDrop,
    FaultSite::SlowShard,
    FaultSite::PersistCompactWrite,
    FaultSite::PersistCompactSwitch,
    FaultSite::DiskFull,
    FaultSite::FsyncFail,
];

/// The named crash points of the persistent cache store, in WAL commit-path
/// order followed by the compaction commit path. The recovery harness
/// iterates this list to simulate a crash at every site.
pub const PERSIST_CRASH_POINTS: [FaultSite; 5] = [
    FaultSite::PersistRename,
    FaultSite::PersistCommit,
    FaultSite::PersistWalAppend,
    FaultSite::PersistCompactWrite,
    FaultSite::PersistCompactSwitch,
];

fn site_index(site: FaultSite) -> usize {
    // Total by construction: one slot per variant, in `SITES` order.
    match site {
        FaultSite::SpillWrite => 0,
        FaultSite::SpillCorrupt => 1,
        FaultSite::SpillRead => 2,
        FaultSite::FulfillerDeath => 3,
        FaultSite::WorkerPanic => 4,
        FaultSite::PersistWalAppend => 5,
        FaultSite::PersistCommit => 6,
        FaultSite::PersistRename => 7,
        FaultSite::AllocFail => 8,
        FaultSite::SlowSpill => 9,
        FaultSite::ConnDrop => 10,
        FaultSite::SlowShard => 11,
        FaultSite::PersistCompactWrite => 12,
        FaultSite::PersistCompactSwitch => 13,
        FaultSite::DiskFull => 14,
        FaultSite::FsyncFail => 15,
    }
}

/// Which occurrences of a site fail.
#[derive(Debug, Clone, Default)]
enum Trigger {
    /// Site never fails (the default for unconfigured sites).
    #[default]
    Never,
    /// Exactly the listed 0-based occurrence (or iteration) indices fail.
    At(HashSet<u64>),
    /// Every `n`-th occurrence fails (occurrences `n-1`, `2n-1`, ...).
    Every(u64),
    /// Each occurrence fails independently with this probability, decided by
    /// a hash of `(seed, site, occurrence)` — deterministic per seed.
    Probability(f64),
}

/// Deterministic fault plan plus per-site occurrence / injection counters.
#[derive(Debug, Default)]
pub struct FaultInjector {
    seed: u64,
    triggers: [Trigger; SITES.len()],
    occurrences: [AtomicU64; SITES.len()],
    injected: [AtomicU64; SITES.len()],
}

/// splitmix64 finalizer — the same mixer the vendored RNG seeds with. Public
/// because replication digest bucketing (`limad`) and the chaos harness reuse
/// it as the canonical cheap hash scrambler.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Injector with no active faults; combine with the `fail_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            ..Self::default()
        }
    }

    /// Fails exactly the given 0-based occurrence indices of `site`.
    pub fn fail_at(mut self, site: FaultSite, occurrences: &[u64]) -> Self {
        self.triggers[site_index(site)] = Trigger::At(occurrences.iter().copied().collect());
        self
    }

    /// Fails every `n`-th occurrence of `site` (`n == 0` disables the site).
    pub fn fail_every(mut self, site: FaultSite, n: u64) -> Self {
        self.triggers[site_index(site)] = if n == 0 {
            Trigger::Never
        } else {
            Trigger::Every(n)
        };
        self
    }

    /// Fails each occurrence of `site` independently with probability `p`,
    /// derived deterministically from the seed.
    pub fn fail_with_probability(mut self, site: FaultSite, p: f64) -> Self {
        self.triggers[site_index(site)] = Trigger::Probability(p.clamp(0.0, 1.0));
        self
    }

    fn decide(&self, site: FaultSite, index: u64) -> bool {
        match &self.triggers[site_index(site)] {
            Trigger::Never => false,
            Trigger::At(set) => set.contains(&index),
            Trigger::Every(n) => (index + 1).is_multiple_of(*n),
            Trigger::Probability(p) => {
                let h = mix(self.seed ^ mix(site_index(site) as u64) ^ index);
                ((h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < *p
            }
        }
    }

    /// Consults the site with an auto-incremented occurrence counter. Returns
    /// true when this occurrence must fail.
    pub fn should_fail(&self, site: FaultSite) -> bool {
        let occ = self.occurrences[site_index(site)].fetch_add(1, Ordering::Relaxed);
        let fire = self.decide(site, occ);
        if fire {
            self.injected[site_index(site)].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Consults the site keyed by an explicit index (e.g. a parfor iteration
    /// number) so the decision is independent of thread interleaving.
    pub fn should_fail_at(&self, site: FaultSite, index: u64) -> bool {
        self.occurrences[site_index(site)].fetch_add(1, Ordering::Relaxed);
        let fire = self.decide(site, index);
        if fire {
            self.injected[site_index(site)].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// How often the site has been consulted.
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.occurrences[site_index(site)].load(Ordering::Relaxed)
    }

    /// How many faults have actually fired at the site.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site_index(site)].load(Ordering::Relaxed)
    }

    /// Total faults fired across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// An `InvalidData` I/O error marking an injected failure.
    pub fn io_error(site: FaultSite) -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("injected fault: {site:?}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_sites_never_fire() {
        let inj = FaultInjector::new(7);
        for _ in 0..100 {
            assert!(!inj.should_fail(FaultSite::SpillWrite));
        }
        assert_eq!(inj.occurrences(FaultSite::SpillWrite), 100);
        assert_eq!(inj.injected(FaultSite::SpillWrite), 0);
    }

    #[test]
    fn fail_at_fires_exactly_the_listed_occurrences() {
        let inj = FaultInjector::new(0).fail_at(FaultSite::SpillRead, &[0, 3]);
        let fired: Vec<bool> = (0..5)
            .map(|_| inj.should_fail(FaultSite::SpillRead))
            .collect();
        assert_eq!(fired, [true, false, false, true, false]);
        assert_eq!(inj.injected(FaultSite::SpillRead), 2);
        // Other sites are unaffected.
        assert!(!inj.should_fail(FaultSite::SpillWrite));
    }

    #[test]
    fn fail_every_hits_each_nth() {
        let inj = FaultInjector::new(0).fail_every(FaultSite::SpillCorrupt, 3);
        let fired: Vec<bool> = (0..7)
            .map(|_| inj.should_fail(FaultSite::SpillCorrupt))
            .collect();
        assert_eq!(fired, [false, false, true, false, false, true, false]);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let a = FaultInjector::new(42).fail_with_probability(FaultSite::WorkerPanic, 0.5);
        let b = FaultInjector::new(42).fail_with_probability(FaultSite::WorkerPanic, 0.5);
        let fa: Vec<bool> = (0..64)
            .map(|_| a.should_fail(FaultSite::WorkerPanic))
            .collect();
        let fb: Vec<bool> = (0..64)
            .map(|_| b.should_fail(FaultSite::WorkerPanic))
            .collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(|&f| f) && fa.iter().any(|&f| !f));
    }

    #[test]
    fn indexed_decisions_ignore_call_order() {
        let inj = FaultInjector::new(0).fail_at(FaultSite::WorkerPanic, &[5]);
        assert!(!inj.should_fail_at(FaultSite::WorkerPanic, 9));
        assert!(inj.should_fail_at(FaultSite::WorkerPanic, 5));
        assert!(!inj.should_fail_at(FaultSite::WorkerPanic, 5 + 1));
        assert_eq!(inj.total_injected(), 1);
    }
}
