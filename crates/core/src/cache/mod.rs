//! The lineage reuse cache (paper §4): a thread-safe map from lineage traces
//! to cached values, with placeholder blocking for task parallelism, multi-
//! level entries, cost-based eviction, disk spilling, and partial-reuse
//! rewrites.

pub mod costs;
pub mod entry;
pub mod eviction;
pub mod persist;
pub mod rewrites;
pub mod spill;

use crate::config::{LimaConfig, ReuseMode};
use crate::governor::ResourceGovernor;
use crate::interrupt::{Interrupt, InterruptKind};
use crate::lineage::item::{LinKey, LinRef};
use crate::obs::{EventKind, Obs};
use crate::resilience::{Attempt, CircuitBreaker, RetryPolicy};
use crate::stats::LimaStats;
use costs::IoCostModel;
use entry::{CacheEntry, EntryState};
use lima_matrix::Value;
use parking_lot::{Condvar, Mutex};
use persist::PersistentCacheStore;
use spill::SpillStore;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wait-slice granularity while blocked on a placeholder with an interrupt
/// armed: cancellation/deadline is noticed within this bound even when no
/// notify arrives.
const INTERRUPT_WAIT_SLICE: Duration = Duration::from_millis(25);

/// True for multi-level (function/block) cache keys, whose measured cost
/// *contains* the cost of constituent entries fulfilled within their window.
fn is_composite(op: &str) -> bool {
    op.starts_with(crate::opcodes::FCALL) || op.starts_with(crate::opcodes::BCALL)
}

/// One open composite (function/block) reservation on the current thread.
/// Entries fulfilled while a frame is open are that composite's children:
/// their compute time is a subset of the composite's measured cost.
struct CompositeFrame {
    /// Identity of the owning cache (distinct caches may interleave on one
    /// thread in tests).
    cache: usize,
    key: LinKey,
    children: Vec<LinKey>,
}

thread_local! {
    /// Stack of open composite reservations made by this thread. Composite
    /// bodies execute on the reserving thread, so this suffices to attribute
    /// constituent fulfills to their enclosing function/block entry (the
    /// basis of at-most-once `saved_compute_ns` accounting).
    static COMPOSITE_STACK: RefCell<Vec<CompositeFrame>> = const { RefCell::new(Vec::new()) };
}

/// Outcome of a full-reuse probe.
pub enum Probe {
    /// The value was reused from the cache.
    Hit(Value),
    /// The caller must compute the value and fulfil (or abort) the
    /// reservation; concurrent probes for the same trace block meanwhile.
    Reserved(Reservation),
}

/// An outstanding placeholder created by [`LineageCache::acquire`]. Dropping
/// it without [`Reservation::fulfill`] aborts the placeholder and wakes
/// waiting threads.
pub struct Reservation {
    cache: Arc<LineageCache>,
    key: LinKey,
    done: bool,
}

impl Reservation {
    /// Stores the computed value with its measured computation time.
    pub fn fulfill(mut self, value: &Value, compute_ns: u64) {
        self.done = true;
        self.cache.fulfill(&self.key, value, compute_ns);
    }

    /// Abandons the placeholder (e.g. the computation failed).
    pub fn abort(mut self) {
        self.done = true;
        self.cache.abort(&self.key);
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if !self.done {
            self.cache.abort(&self.key);
        }
    }
}

/// One row of the per-lineage-item cost-attribution report
/// ([`LineageCache::cost_report`]): the cache's `compute_ns` bookkeeping fed
/// back to users, keyed by the same lineage item id that obs trace events
/// carry in `args.lineage_id`.
#[derive(Debug, Clone)]
pub struct ItemCost {
    /// Lineage item id (process-unique; matches trace `args.lineage_id`).
    pub lineage_id: u64,
    /// Opcode of the cached item (`fcall:*` / `bcall` for composites).
    pub opcode: String,
    /// Lineage DAG height.
    pub height: u32,
    /// Measured nanoseconds to compute the value once.
    pub compute_ns: u64,
    /// Reuse hits served by this entry.
    pub hits: u64,
    /// Probes that missed (including the one creating the entry).
    pub misses: u64,
    /// Nanoseconds this entry credited to `saved_compute_ns` (at-most-once
    /// semantics: composites credit their cost net of constituents).
    pub saved_ns: u64,
    /// Whether the value is currently resident in memory.
    pub resident: bool,
}

impl ItemCost {
    /// One-line human rendering used by `limac run --cost-top`.
    pub fn render(&self) -> String {
        format!(
            "#{:<6} {:<12} h={} compute={:.3}ms hits={} misses={} saved={:.3}ms{}",
            self.lineage_id,
            self.opcode,
            self.height,
            self.compute_ns as f64 / 1e6,
            self.hits,
            self.misses,
            self.saved_ns as f64 / 1e6,
            if self.resident { " [resident]" } else { "" },
        )
    }
}

struct CacheState {
    map: HashMap<LinKey, CacheEntry>,
    resident_bytes: usize,
    /// Bytes currently held in spill files (accounted by the governor as the
    /// spill-buffer category).
    spilled_bytes: usize,
}

/// The LIMA lineage cache. Cheap to share (`Arc`); all methods are
/// thread-safe.
///
/// ```
/// use lima_core::{LimaConfig, LineageCache};
/// use lima_core::cache::Probe;
/// use lima_core::lineage::item::LineageItem;
/// use lima_matrix::{DenseMatrix, Value};
///
/// let cache = LineageCache::new(LimaConfig::lima());
/// let x = LineageItem::op_with_data("read", "X.csv", vec![]);
/// let gram = LineageItem::op_with_data("tsmm", "LEFT", vec![x]);
///
/// // First probe misses: compute and fulfil the reservation.
/// match cache.acquire(&gram).expect("tsmm is cacheable") {
///     Probe::Reserved(r) => r.fulfill(&Value::matrix(DenseMatrix::identity(3)), 1_000),
///     Probe::Hit(_) => unreachable!("fresh cache"),
/// }
/// // A structurally equal trace hits, even though it is a different object.
/// let x2 = LineageItem::op_with_data("read", "X.csv", vec![]);
/// let gram2 = LineageItem::op_with_data("tsmm", "LEFT", vec![x2]);
/// assert!(matches!(cache.acquire(&gram2), Some(Probe::Hit(_))));
/// ```
pub struct LineageCache {
    config: LimaConfig,
    stats: Arc<LimaStats>,
    io: IoCostModel,
    spill_store: Option<SpillStore>,
    state: Mutex<CacheState>,
    cond: Condvar,
    clock: AtomicU64,
    /// Half-open circuit breaker over spill writes: opens after
    /// `config.spill_failure_limit` consecutive failures, probes once per
    /// `config.breaker_cooldown_ms` window.
    spill_breaker: CircuitBreaker,
    /// Crash-safe durable store; present when `config.persist_enabled` and
    /// the persist directory was usable.
    persist_store: Option<PersistentCacheStore>,
    /// Half-open breaker over durable writes; shares the spill limit and
    /// cooldown.
    persist_breaker: CircuitBreaker,
    /// Latch so a disk-full/fsync degrade is counted exactly once.
    disk_full_noted: AtomicBool,
    /// Memory-pressure governor; present when `config.governor_budget_bytes`
    /// is non-zero. Gates admissions, rewrites, and spilling by pressure
    /// level and is kept in sync with resident/spilled byte counts.
    governor: Option<Arc<ResourceGovernor>>,
    /// Observer invoked (outside the cache lock) after each locally computed
    /// value is admitted — the replication tap. Deliberately *not* fired for
    /// startup-recovered entries or values applied via
    /// [`Self::put_replicated`], so replicas never echo records back.
    put_watcher: Mutex<Option<PutWatcher>>,
}

/// Callback fired after a locally computed `(lineage, value, compute_ns)`
/// record is admitted into the cache. Must be cheap and non-blocking: it runs
/// on the session hot path.
pub type PutWatcher = Arc<dyn Fn(&LinRef, &Value, u64) + Send + Sync>;

impl std::fmt::Debug for LineageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "LineageCache {{ entries: {}, resident_bytes: {} }}",
            st.map.len(),
            st.resident_bytes
        )
    }
}

impl LineageCache {
    /// Creates a cache for the given configuration. With persistence enabled
    /// this runs the startup recovery pass: entries a prior process durably
    /// committed are validated and repopulated as warm cache entries. An
    /// unusable persist directory degrades to a memory-only cache.
    pub fn new(config: LimaConfig) -> Arc<Self> {
        let spill_store = if config.spill {
            SpillStore::with_faults(config.faults.clone()).ok()
        } else {
            None
        };
        let mut recovered = Vec::new();
        let persist_store = match (&config.persist_enabled, &config.persist_dir) {
            (true, Some(dir)) => PersistentCacheStore::open_with(
                dir,
                persist::PersistOptions {
                    budget_bytes: config.persist_budget_bytes,
                    compact_min_bytes: config.persist_compact_min_bytes,
                    compact_factor: config.persist_compact_factor,
                    quarantine_max_age_secs: config.persist_quarantine_max_age_secs,
                    repair: config.repair.clone(),
                    repair_retry: RetryPolicy::new(
                        config.persist_retry_attempts,
                        config.persist_retry_base_ms,
                        0,
                    ),
                    repair_budget: config.persist_repair_budget,
                    faults: config.faults.clone(),
                },
            )
            .map(|(store, entries, report)| {
                recovered = entries;
                (store, report)
            }),
            _ => None,
        };
        let stats = Arc::new(LimaStats::new());
        let governor = (config.governor_budget_bytes > 0).then(|| {
            let g = ResourceGovernor::new(
                config.governor_budget_bytes,
                Arc::clone(&stats),
                config.faults.clone(),
            );
            if let Some(obs) = &config.obs {
                g.attach_obs(Arc::clone(obs));
            }
            g
        });
        let (limit, cooldown) = (config.spill_failure_limit, config.breaker_cooldown_ms);
        let mut cache = LineageCache {
            config,
            stats,
            io: IoCostModel::new(),
            spill_store,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                resident_bytes: 0,
                spilled_bytes: 0,
            }),
            cond: Condvar::new(),
            clock: AtomicU64::new(1),
            spill_breaker: CircuitBreaker::new(limit, cooldown),
            persist_store: None,
            persist_breaker: CircuitBreaker::new(limit, cooldown),
            disk_full_noted: AtomicBool::new(false),
            governor,
            put_watcher: Mutex::new(None),
        };
        if let Some((store, report)) = persist_store {
            LimaStats::add(&cache.stats.persist_recovered, report.recovered);
            LimaStats::add(&cache.stats.persist_dropped, report.dropped);
            if report.torn_tail_truncated {
                LimaStats::bump(&cache.stats.persist_torn_truncations);
            }
            LimaStats::add(&cache.stats.persist_orphans_gcd, report.orphans_gcd);
            LimaStats::add(&cache.stats.persist_repairs, report.repaired);
            LimaStats::add(&cache.stats.persist_repair_failures, report.repair_failures);
            LimaStats::add(&cache.stats.scrub_quarantined, report.quarantined);
            cache.persist_store = Some(store);
            let mut st = cache.state.lock();
            for e in recovered {
                let key = LinKey(e.root.clone());
                let size = e.value.size_in_bytes();
                if size > cache.config.budget_bytes {
                    continue; // respect the memory budget; stays on disk
                }
                let now = cache.tick();
                let mut entry = CacheEntry::computing(e.root.height(), now);
                entry.state = EntryState::Cached(e.value);
                entry.size = size;
                entry.misses = 0;
                entry.compute_ns = e.compute_ns;
                entry.persist_id = Some(e.persist_id);
                entry.from_persist = true;
                st.resident_bytes += size;
                st.map.insert(key, entry);
            }
            cache.enforce_budget(&mut st);
            drop(st);
        }
        Arc::new(cache)
    }

    /// The configuration this cache was created with.
    pub fn config(&self) -> &LimaConfig {
        &self.config
    }

    /// Shared statistics.
    pub fn stats(&self) -> &LimaStats {
        &self.stats
    }

    /// Shared statistics handle (same counters as [`Self::stats`]).
    pub fn stats_arc(&self) -> Arc<LimaStats> {
        Arc::clone(&self.stats)
    }

    /// The memory-pressure governor, when `config.governor_budget_bytes > 0`.
    pub fn governor(&self) -> Option<Arc<ResourceGovernor>> {
        self.governor.as_ref().map(Arc::clone)
    }

    /// Effective cache budget: the configured budget, shrunk by the governor
    /// under pressure (L1+ halves it).
    fn effective_budget(&self) -> usize {
        match &self.governor {
            Some(g) => g.effective_cache_budget(self.config.budget_bytes),
            None => self.config.budget_bytes,
        }
    }

    /// True while the governor (if any) still admits new cache entries.
    fn admissions_open(&self) -> bool {
        match &self.governor {
            Some(g) => g.admissions_enabled(),
            None => true,
        }
    }

    /// Pushes current byte accounting into the governor (no-op without one).
    fn sync_governor(&self, st: &CacheState) {
        if let Some(g) = &self.governor {
            g.set_cache_bytes(st.resident_bytes);
            g.set_spill_bytes(st.spilled_bytes);
        }
    }

    /// Number of entries currently holding a resident or spilled value.
    pub fn live_entries(&self) -> usize {
        let st = self.state.lock();
        st.map
            .values()
            .filter(|e| e.is_resident() || e.is_spilled())
            .count()
    }

    /// Bytes of values resident in memory.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().resident_bytes
    }

    /// Per-lineage-item cost attribution: the `top_k` most expensive entries
    /// the cache has seen (by measured `compute_ns`, ties broken by savings
    /// then id), with their reuse savings under the at-most-once accounting.
    /// Includes evicted shells — attribution outlives residency.
    pub fn cost_report(&self, top_k: usize) -> Vec<ItemCost> {
        let st = self.state.lock();
        let mut rows: Vec<ItemCost> = st
            .map
            .iter()
            .map(|(k, e)| ItemCost {
                lineage_id: k.0.id(),
                opcode: k.0.opcode().to_string(),
                height: e.height,
                compute_ns: e.compute_ns,
                hits: e.hits,
                misses: e.misses,
                saved_ns: e.credited_ns,
                resident: e.is_resident(),
            })
            .collect();
        drop(st);
        rows.sort_by(|a, b| {
            b.compute_ns
                .cmp(&a.compute_ns)
                .then(b.saved_ns.cmp(&a.saved_ns))
                .then(a.lineage_id.cmp(&b.lineage_id))
        });
        rows.truncate(top_k);
        rows
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Observability hub, already gated: `Some` only when attached *and*
    /// enabled, so call sites pay a single branch when tracing is off.
    #[inline]
    fn obs(&self) -> Option<&Arc<Obs>> {
        match &self.config.obs {
            Some(o) if o.enabled() => Some(o),
            _ => None,
        }
    }

    /// Counts a hit by kind and credits `credit_ns` (computed by
    /// [`take_hit_credit`] under the state lock) to `saved_compute_ns`.
    /// Unlike the old accounting — which credited the entry's full
    /// `compute_ns` on *every* hit, double-counting composite entries and
    /// their constituents — each computed nanosecond is now credited at most
    /// once across the entry's lifetime.
    fn count_hit(&self, item: &LinRef, credit_ns: u64) {
        if is_composite(item.opcode()) {
            LimaStats::bump(&self.stats.multilevel_hits);
        } else {
            LimaStats::bump(&self.stats.full_hits);
        }
        LimaStats::add(&self.stats.saved_compute_ns, credit_ns);
    }

    /// Builds a reservation for `key`, recording a composite frame on this
    /// thread's attribution stack when the key is a function/block entry so
    /// constituent fulfills can be tied to it.
    fn reserve(self: &Arc<Self>, key: LinKey) -> Probe {
        if let Some(o) = self.obs() {
            o.record_instant(EventKind::CacheMiss, key.0.opcode(), key.0.id(), 0, 0);
        }
        if is_composite(key.0.opcode()) {
            let me = Arc::as_ptr(self) as usize;
            COMPOSITE_STACK.with(|s| {
                s.borrow_mut().push(CompositeFrame {
                    cache: me,
                    key: key.clone(),
                    children: Vec::new(),
                });
            });
        }
        Probe::Reserved(Reservation {
            cache: Arc::clone(self),
            key,
            done: false,
        })
    }

    /// Attribution bookkeeping on fulfill: records `key` as a child of the
    /// innermost open composite frame (its compute happened within that
    /// composite's measured window), and for composite keys returns the
    /// children collected by their own frame. Frames above `key`'s
    /// (abandoned reservations) are folded into it rather than leaked.
    fn composite_on_fulfill(&self, key: &LinKey) -> Vec<LinKey> {
        let me = self as *const Self as usize;
        COMPOSITE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if is_composite(key.0.opcode()) {
                if let Some(pos) = stack.iter().rposition(|f| f.cache == me && f.key == *key) {
                    let mut children = Vec::new();
                    for f in stack.drain(pos..) {
                        children.extend(f.children);
                    }
                    if let Some(parent) = stack.last_mut() {
                        if parent.cache == me {
                            parent.children.push(key.clone());
                        }
                    }
                    return children;
                }
                // Reserved on another thread: attribution not tracked.
                return Vec::new();
            }
            if let Some(parent) = stack.last_mut() {
                if parent.cache == me {
                    parent.children.push(key.clone());
                }
            }
            Vec::new()
        })
    }

    /// Attribution bookkeeping on abort: pops `key`'s composite frame (if
    /// any) and reparents its children — the constituents were fulfilled and
    /// remain cached even though the composite itself failed.
    fn composite_on_abort(&self, key: &LinKey) {
        if !is_composite(key.0.opcode()) {
            return;
        }
        let me = self as *const Self as usize;
        COMPOSITE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|f| f.cache == me && f.key == *key) {
                let mut orphans = Vec::new();
                for f in stack.drain(pos..) {
                    orphans.extend(f.children);
                }
                if let Some(parent) = stack.last_mut() {
                    if parent.cache == me {
                        parent.children.extend(orphans);
                    }
                }
            }
        });
    }

    /// Full-reuse probe (paper §4.1). Returns `None` when the opcode does not
    /// qualify for caching or reuse is disabled — the caller then executes
    /// normally without touching the cache.
    ///
    /// Failure semantics: a spilled entry whose restore fails degrades to a
    /// miss (the caller recomputes), and a placeholder whose fulfiller never
    /// finishes within `config.placeholder_timeout_ms` is taken over by the
    /// waiting probe instead of blocking forever.
    pub fn acquire(self: &Arc<Self>, item: &LinRef) -> Option<Probe> {
        // Without an interrupt the Err branch is unreachable; flatten it.
        self.acquire_interruptible(item, None).unwrap_or(None)
    }

    /// [`Self::acquire`] with a session interrupt: a probe blocked on another
    /// session's placeholder re-checks cancellation/deadline every
    /// [`INTERRUPT_WAIT_SLICE`] and returns `Err` instead of waiting out
    /// `placeholder_timeout_ms`. Under governor pressure level L3+
    /// (no-admission), misses return `Ok(None)` instead of reserving a
    /// placeholder, so the caller computes without touching the cache.
    pub fn acquire_interruptible(
        self: &Arc<Self>,
        item: &LinRef,
        interrupt: Option<&Interrupt>,
    ) -> Result<Option<Probe>, InterruptKind> {
        if !self.reusable(item) {
            return Ok(None);
        }
        LimaStats::bump(&self.stats.probes);
        let key = LinKey(item.clone());
        let height = item.height();
        // Total placeholder-wait bound for this probe: armed on the first
        // Computing encounter and not reset by wake-ups for other entries.
        let mut wait_deadline: Option<Instant> = None;
        // `placeholder_waits` counts probes that blocked, not wait slices.
        let mut counted_wait = false;
        let interrupt = interrupt.filter(|i| i.is_armed());
        let mut st = self.state.lock();
        loop {
            let now = self.tick();
            let Some(e) = st.map.get_mut(&key) else {
                if !self.admissions_open() {
                    LimaStats::bump(&self.stats.governor_admission_rejects);
                    return Ok(None);
                }
                st.map
                    .insert(key.clone(), CacheEntry::computing(height, now));
                drop(st);
                return Ok(Some(self.reserve(key)));
            };
            match &e.state {
                EntryState::Cached(v) => {
                    let value = v.clone();
                    let from_persist = e.from_persist;
                    e.hits += 1;
                    e.last_access = now;
                    let credit = take_hit_credit(&mut st.map, &key);
                    drop(st);
                    if from_persist {
                        LimaStats::bump(&self.stats.persist_hits);
                    }
                    self.count_hit(item, credit);
                    if let Some(o) = self.obs() {
                        o.record_instant(EventKind::CacheHit, item.opcode(), item.id(), credit, 0);
                    }
                    return Ok(Some(Probe::Hit(value)));
                }
                EntryState::Spilled { path, bytes } => {
                    // Restore under a placeholder so concurrent probes wait
                    // instead of double-reading the file.
                    let (path, bytes) = (path.clone(), *bytes);
                    e.state = EntryState::Computing;
                    drop(st);
                    let restore_t0 = self.obs().map(|o| o.now_ns());
                    let restored = self.timed_restore(&path, bytes);
                    st = self.state.lock();
                    // Either way the spill file is gone (restore deletes it
                    // on success; a failed file is abandoned).
                    st.spilled_bytes = st.spilled_bytes.saturating_sub(bytes);
                    match restored {
                        Ok(value) => {
                            LimaStats::bump(&self.stats.restores);
                            let size = value.size_in_bytes();
                            if let Some(e) = st.map.get_mut(&key) {
                                e.state = EntryState::Cached(value.clone());
                                e.size = size;
                                e.hits += 1;
                                e.last_access = self.tick();
                                let from_persist = e.from_persist;
                                let credit = take_hit_credit(&mut st.map, &key);
                                st.resident_bytes += size;
                                self.enforce_budget(&mut st);
                                drop(st);
                                self.cond.notify_all();
                                if from_persist {
                                    LimaStats::bump(&self.stats.persist_hits);
                                }
                                self.count_hit(item, credit);
                                if let (Some(o), Some(t0)) = (self.obs(), restore_t0) {
                                    o.record_span(
                                        EventKind::SpillRestore,
                                        item.opcode(),
                                        item.id(),
                                        t0,
                                        bytes as u64,
                                        0,
                                    );
                                }
                                return Ok(Some(Probe::Hit(value)));
                            }
                            // Entry vanished (should not happen); treat as miss.
                            continue;
                        }
                        Err(_) => {
                            // Missing or corrupt spill file: degrade to a
                            // miss so the caller recomputes.
                            LimaStats::bump(&self.stats.restore_failures);
                            if let Some(e) = st.map.get_mut(&key) {
                                e.state = EntryState::Evicted;
                                e.misses += 1;
                            }
                            self.sync_governor(&st);
                            self.cond.notify_all();
                            continue;
                        }
                    }
                }
                EntryState::Computing => {
                    if !counted_wait {
                        LimaStats::bump(&self.stats.placeholder_waits);
                        counted_wait = true;
                    }
                    if let Some(intr) = interrupt {
                        intr.check()?;
                    }
                    let timeout_ms = self.config.placeholder_timeout_ms;
                    let deadline = if timeout_ms == 0 {
                        None
                    } else {
                        Some(*wait_deadline.get_or_insert_with(|| {
                            Instant::now() + Duration::from_millis(timeout_ms)
                        }))
                    };
                    let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
                    // With an interrupt armed, wait in short slices so a
                    // cancelled/expired session stops blocking promptly even
                    // when no notify ever arrives for this placeholder.
                    let slice = match (interrupt.is_some(), remaining) {
                        (true, Some(r)) => Some(r.min(INTERRUPT_WAIT_SLICE)),
                        (true, None) => Some(INTERRUPT_WAIT_SLICE),
                        (false, r) => r,
                    };
                    match slice {
                        None => {
                            self.cond.wait(&mut st);
                        }
                        Some(d) => {
                            let _ = self.cond.wait_for(&mut st, d);
                        }
                    }
                    if let Some(intr) = interrupt {
                        intr.check()?;
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        // Re-check under the lock: the fulfiller may have won
                        // the race against the timeout.
                        if let Some(e) = st.map.get_mut(&key) {
                            if e.is_computing() {
                                // Presume the fulfiller dead and take over
                                // the computation; should it fulfil after
                                // all, it overwrites with the same value
                                // (identical lineage), which is benign.
                                LimaStats::bump(&self.stats.placeholder_timeouts);
                                e.misses += 1;
                                e.last_access = self.tick();
                                drop(st);
                                return Ok(Some(self.reserve(key)));
                            }
                        }
                        // The entry moved on; re-arm the deadline in case a
                        // new placeholder appears later in this probe.
                        wait_deadline = None;
                    }
                    continue;
                }
                EntryState::Evicted => {
                    // Evicted shell: misses raise the entry's future score.
                    e.misses += 1;
                    e.last_access = now;
                    if !self.admissions_open() {
                        LimaStats::bump(&self.stats.governor_admission_rejects);
                        return Ok(None);
                    }
                    e.state = EntryState::Computing;
                    drop(st);
                    return Ok(Some(self.reserve(key)));
                }
            }
        }
    }

    /// Restores a spilled value, folding the measured read time into the I/O
    /// model. A missing spill store reports as a restore failure instead of
    /// panicking.
    fn timed_restore(&self, path: &Path, bytes: usize) -> std::io::Result<Value> {
        let store = self.spill_store.as_ref().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "spill store unavailable")
        })?;
        let t0 = Instant::now();
        let restored = store.restore(path);
        self.io.observe_read(bytes, t0.elapsed().as_nanos() as u64);
        restored
    }

    /// True when this item's output qualifies for cache interaction.
    pub fn reusable(&self, item: &LinRef) -> bool {
        self.config.reuse.any() && self.config.is_cacheable(item.opcode())
    }

    /// Whether full (operation-level) reuse is active.
    pub fn full_reuse(&self) -> bool {
        matches!(self.config.reuse, ReuseMode::Full | ReuseMode::Hybrid)
    }

    /// Whether partial-reuse rewrites are active. Paused by the governor at
    /// pressure level L2+ (rewrites speculatively materialize new values).
    pub fn partial_reuse(&self) -> bool {
        matches!(self.config.reuse, ReuseMode::Partial | ReuseMode::Hybrid)
            && self.rewrites_enabled()
    }

    /// Whether multilevel (function/block) caching and partial-reuse
    /// rewrites are allowed under current memory pressure (false at L2+).
    pub fn rewrites_enabled(&self) -> bool {
        match &self.governor {
            Some(g) => g.rewrites_enabled(),
            None => true,
        }
    }

    /// Non-blocking lookup used by partial-reuse rewrites to fetch component
    /// values: hits count, misses on shells raise scores, placeholders are
    /// *not* created and computing entries are not waited on.
    pub fn peek(&self, item: &LinRef) -> Option<Value> {
        let key = LinKey(item.clone());
        let mut st = self.state.lock();
        let now = self.tick();
        let e = st.map.get_mut(&key)?;
        match &e.state {
            EntryState::Cached(v) => {
                let value = v.clone();
                if e.from_persist {
                    LimaStats::bump(&self.stats.persist_hits);
                }
                e.hits += 1;
                e.last_access = now;
                Some(value)
            }
            EntryState::Spilled { path, bytes } => {
                let (path, bytes) = (path.clone(), *bytes);
                e.state = EntryState::Computing;
                drop(st);
                let restored = self.timed_restore(&path, bytes);
                let mut st = self.state.lock();
                st.spilled_bytes = st.spilled_bytes.saturating_sub(bytes);
                let e = st.map.get_mut(&key)?;
                match restored {
                    Ok(value) => {
                        LimaStats::bump(&self.stats.restores);
                        let size = value.size_in_bytes();
                        e.state = EntryState::Cached(value.clone());
                        e.size = size;
                        e.hits += 1;
                        e.last_access = self.tick();
                        st.resident_bytes += size;
                        self.enforce_budget(&mut st);
                        drop(st);
                        self.cond.notify_all();
                        Some(value)
                    }
                    Err(_) => {
                        // Degrade to a miss; waiters on the placeholder wake
                        // and recompute.
                        LimaStats::bump(&self.stats.restore_failures);
                        e.state = EntryState::Evicted;
                        e.misses += 1;
                        self.sync_governor(&st);
                        drop(st);
                        self.cond.notify_all();
                        None
                    }
                }
            }
            EntryState::Computing | EntryState::Evicted => {
                e.misses += 1;
                None
            }
        }
    }

    /// Directly stores a value (used by compensation plans that want their
    /// probe item cached after partial reuse, and by tests).
    pub fn put(self: &Arc<Self>, item: &LinRef, value: &Value, compute_ns: u64) {
        self.put_inner(item, value, compute_ns, true);
    }

    /// [`Self::put`] for values received from a replica peer: identical
    /// admission, but the put watcher is *not* fired, so applied records are
    /// never re-enqueued for replication (no echo loops between members).
    pub fn put_replicated(self: &Arc<Self>, item: &LinRef, value: &Value, compute_ns: u64) {
        self.put_inner(item, value, compute_ns, false);
    }

    fn put_inner(self: &Arc<Self>, item: &LinRef, value: &Value, compute_ns: u64, notify: bool) {
        if !self.reusable(item) {
            LimaStats::bump(&self.stats.rejected_puts);
            return;
        }
        let key = LinKey(item.clone());
        let height = item.height();
        {
            let mut st = self.state.lock();
            let now = self.tick();
            st.map
                .entry(key.clone())
                .or_insert_with(|| CacheEntry::computing(height, now));
        }
        self.fulfill_inner(&key, value, compute_ns, notify);
    }

    /// Installs (or clears) the post-admission observer. Replaces any
    /// previous watcher; recovered-at-startup entries never fire it.
    pub fn set_put_watcher(&self, watcher: Option<PutWatcher>) {
        *self.put_watcher.lock() = watcher;
    }

    /// True when the cache holds `item`'s value, resident or spilled.
    /// Side-effect free: no hit/miss accounting, no placeholder creation —
    /// the replication apply path uses this to skip records it already has.
    pub fn contains(&self, item: &LinRef) -> bool {
        let key = LinKey(item.clone());
        let st = self.state.lock();
        matches!(
            st.map.get(&key).map(|e| &e.state),
            Some(EntryState::Cached(_) | EntryState::Spilled { .. })
        )
    }

    /// Lineage hashes of every entry this member can vouch for (resident or
    /// spilled values; composite/list values that cannot cross the wire are
    /// excluded). The anti-entropy digest and convergence checks are built
    /// from exactly this set.
    pub fn replica_hashes(&self) -> Vec<u64> {
        let st = self.state.lock();
        st.map
            .iter()
            .filter(|(_, e)| match &e.state {
                EntryState::Cached(v) => !matches!(v, Value::List(_)),
                EntryState::Spilled { .. } => true,
                _ => false,
            })
            .map(|(k, _)| k.0.hash_value())
            .collect()
    }

    /// Clones the resident entries whose scrambled lineage hash lands in
    /// `bucket` (of `nbuckets`), newest-access first, capped at `max_entries`
    /// and ~`max_bytes` of value payload. Serving side of the anti-entropy
    /// `K_REPL_PULL` op; serialization happens outside the lock.
    pub fn export_bucket(
        &self,
        bucket: u64,
        nbuckets: u64,
        max_entries: usize,
        max_bytes: usize,
    ) -> Vec<(LinRef, Value, u64)> {
        let nbuckets = nbuckets.max(1);
        let st = self.state.lock();
        let mut out = Vec::new();
        let mut bytes = 0usize;
        for (k, e) in st.map.iter() {
            if out.len() >= max_entries || bytes >= max_bytes {
                break;
            }
            let EntryState::Cached(v) = &e.state else {
                continue;
            };
            if matches!(v, Value::List(_)) {
                continue;
            }
            if crate::faults::mix(k.0.hash_value()) % nbuckets != bucket {
                continue;
            }
            bytes += e.size;
            out.push((k.0.clone(), v.clone(), e.compute_ns));
        }
        out
    }

    fn fulfill(&self, key: &LinKey, value: &Value, compute_ns: u64) {
        self.fulfill_inner(key, value, compute_ns, true);
    }

    fn fulfill_inner(&self, key: &LinKey, value: &Value, compute_ns: u64, notify: bool) {
        let children = self.composite_on_fulfill(key);
        let size = value.size_in_bytes();
        let admit = size <= self.effective_budget()
            && size >= self.config.min_entry_bytes
            && self.governor_admits(size);
        let mut st = self.state.lock();
        let now = self.tick();
        let mut persistable = false;
        if let Some(e) = st.map.get_mut(key) {
            e.compute_ns = e.compute_ns.max(compute_ns);
            e.last_access = now;
            for c in children {
                if !e.children.contains(&c) {
                    e.children.push(c);
                }
            }
            if admit {
                e.state = EntryState::Cached(value.clone());
                e.size = size;
                e.group = value_group(value);
                persistable = e.persist_id.is_none();
                st.resident_bytes += size;
                LimaStats::bump(&self.stats.puts);
                self.enforce_budget(&mut st);
            } else {
                e.state = EntryState::Evicted;
                e.size = 0;
                LimaStats::bump(&self.stats.rejected_puts);
            }
        }
        self.sync_governor(&st);
        drop(st);
        self.cond.notify_all();
        if let Some(o) = self.obs() {
            o.record_instant(
                EventKind::CacheFulfill,
                key.0.opcode(),
                key.0.id(),
                compute_ns,
                u64::from(admit),
            );
        }
        if persistable {
            self.persist_entry(key, value, compute_ns);
        }
        if admit && notify {
            let watcher = self.put_watcher.lock().clone();
            if let Some(w) = watcher {
                w(&key.0, value, compute_ns);
            }
        }
    }

    /// Asks the governor (if any) to account a new entry of `bytes`: false
    /// when admissions are paused (L3+) or the allocation attempt failed
    /// (injected `AllocFail` / synthetic pressure).
    fn governor_admits(&self, bytes: usize) -> bool {
        let Some(g) = &self.governor else { return true };
        if !g.admissions_enabled() {
            LimaStats::bump(&self.stats.governor_admission_rejects);
            return false;
        }
        g.try_alloc(bytes)
    }

    /// Durably writes a freshly fulfilled entry to the persistent store (when
    /// configured). Runs outside the cache lock: the disk write must not block
    /// concurrent probes. Failures leave the entry memory-only and feed the
    /// persistence circuit breaker.
    fn persist_entry(&self, key: &LinKey, value: &Value, compute_ns: u64) {
        use crate::opcodes::{BCALL, FCALL};
        let Some(store) = &self.persist_store else {
            return;
        };
        if !store.usable() {
            return;
        }
        // Multi-level entries alias values cached at operation level and
        // cannot be reconstructed from their lineage; persist only entries
        // whose recovery invariant (reconstruct == cached value) is checkable.
        let op = key.0.opcode();
        if op.starts_with(FCALL) || op.starts_with(BCALL) {
            return;
        }
        match self.persist_breaker.allow() {
            Attempt::Rejected => return,
            Attempt::Probe => LimaStats::bump(&self.stats.breaker_probes),
            Attempt::Allowed => {}
        }
        // Transient I/O errors get bounded jittered-backoff retries before
        // they count against the breaker; injected crash points latch
        // `crashed()` and are never retried.
        let policy = RetryPolicy::new(
            self.config.persist_retry_attempts,
            self.config.persist_retry_base_ms,
            self.tick(),
        );
        let persist_t0 = self.obs().map(|o| o.now_ns());
        let (result, retries) = policy.run(
            |_| store.usable(),
            || store.persist(&key.0, value, compute_ns),
        );
        if retries > 0 {
            LimaStats::add(&self.stats.persist_retries, u64::from(retries));
        }
        match result {
            Ok(Some(outcome)) => {
                self.persist_breaker.record_success();
                LimaStats::bump(&self.stats.persist_writes);
                LimaStats::add(&self.stats.persist_bytes, outcome.bytes);
                LimaStats::add(&self.stats.persist_tombstones, outcome.evicted);
                if let (Some(o), Some(t0)) = (self.obs(), persist_t0) {
                    o.record_span(
                        EventKind::PersistWrite,
                        key.0.opcode(),
                        key.0.id(),
                        t0,
                        outcome.bytes,
                        0,
                    );
                }
                let mut st = self.state.lock();
                if let Some(e) = st.map.get_mut(key) {
                    e.persist_id = Some(outcome.id);
                }
            }
            Ok(None) => {} // value kind not persisted (lists)
            Err(_) => {
                LimaStats::bump(&self.stats.persist_failures);
                // A write failure that latched the store into degraded mode
                // (ENOSPC / failed fsync) is counted once: the cache is now
                // memory-only with a typed reason.
                if store.degrade_reason().is_some()
                    && !self.disk_full_noted.swap(true, Ordering::Relaxed)
                {
                    LimaStats::bump(&self.stats.persist_disk_full);
                }
                self.persist_breaker.record_failure();
            }
        }
        self.drain_compaction_counters();
    }

    /// True while the persistence circuit breaker is open (or probing):
    /// after `config.spill_failure_limit` consecutive durable-write failures
    /// the cache stops attempting to persist until a half-open probe
    /// succeeds. 0 disables the breaker.
    pub fn persist_disabled(&self) -> bool {
        self.persist_breaker.is_open()
    }

    /// True when a durable store backs this cache and is still writable
    /// (i.e. the configured persist directory opened successfully, no crash
    /// point has latched, and no write failure degraded it). `false` under a
    /// persistence-enabled configuration means the cache degraded to
    /// memory-only.
    pub fn persist_active(&self) -> bool {
        self.persist_store.as_ref().is_some_and(|s| s.usable())
    }

    /// Why the durable store degraded to memory-only, if it has (ENOSPC or
    /// a failed fsync); see [`persist::DegradeReason`].
    pub fn persist_degrade_reason(&self) -> Option<persist::DegradeReason> {
        self.persist_store.as_ref().and_then(|s| s.degrade_reason())
    }

    /// Rewrites the persistent manifest WAL into a fresh generation,
    /// reclaiming tombstone and superseded-put space. Returns `None` without
    /// a usable store (or when the compaction itself failed — the store then
    /// reports why via [`LineageCache::persist_active`]).
    pub fn compact_persist(&self) -> Option<persist::CompactOutcome> {
        let store = self.persist_store.as_ref()?;
        let out = store.compact().ok();
        self.drain_compaction_counters();
        out
    }

    /// One cooperative step of the background integrity scrubber: re-verifies
    /// up to `max_bytes` of persisted value files (0 = the rest of the pass),
    /// and, when a pass completes, the WAL's own framing. Corruption is
    /// repaired from lineage where a repair hook is configured, otherwise the
    /// entry is tombstoned and moved to `quarantine/`.
    ///
    /// The scrubber is the lowest-priority disk consumer: at governor
    /// pressure L2+ (the same rung that pauses partial-reuse rewrites) the
    /// step performs no I/O, bumps `scrub_pauses`, and returns `None` until
    /// pressure recovers to L1 or below.
    pub fn scrub_step(&self, max_bytes: u64) -> Option<persist::ScrubOutcome> {
        let store = self.persist_store.as_ref()?;
        if !store.usable() {
            return None;
        }
        if let Some(g) = &self.governor {
            if !g.rewrites_enabled() {
                LimaStats::bump(&self.stats.scrub_pauses);
                return None;
            }
        }
        let out = store.scrub_chunk(max_bytes).ok()?;
        LimaStats::add(&self.stats.scrub_bytes, out.bytes);
        LimaStats::add(&self.stats.scrub_entries, out.entries);
        LimaStats::add(&self.stats.scrub_corruptions, out.corrupt);
        LimaStats::add(&self.stats.persist_repairs, out.repaired);
        LimaStats::add(&self.stats.persist_repair_failures, out.repair_failures);
        LimaStats::add(&self.stats.scrub_quarantined, out.quarantined);
        if out.wrapped {
            LimaStats::bump(&self.stats.scrub_passes);
        }
        if !out.quarantined_ids.is_empty() {
            // Un-map quarantined persist IDs: the in-memory value (when still
            // resident) remains valid, and clearing the ID lets a later
            // fulfill re-persist a recomputed copy.
            let mut st = self.state.lock();
            for e in st.map.values_mut() {
                if let Some(id) = e.persist_id {
                    if out.quarantined_ids.contains(&id) {
                        e.persist_id = None;
                        e.from_persist = false;
                    }
                }
            }
        }
        self.drain_compaction_counters();
        Some(out)
    }

    /// Folds the store's compaction counters (auto- or explicit) into stats.
    fn drain_compaction_counters(&self) {
        if let Some(store) = &self.persist_store {
            let (n, reclaimed) = store.take_compaction_counters();
            LimaStats::add(&self.stats.persist_compactions, n);
            LimaStats::add(&self.stats.persist_compact_reclaimed, reclaimed);
        }
    }

    fn abort(&self, key: &LinKey) {
        self.composite_on_abort(key);
        let mut st = self.state.lock();
        if let Some(e) = st.map.get_mut(key) {
            if e.is_computing() {
                e.state = EntryState::Evicted;
            }
        }
        drop(st);
        self.cond.notify_all();
    }

    /// Evicts (spill or delete) until the resident size fits the budget.
    ///
    /// Eviction is batched: one pass scores all resident entries under the
    /// active policy (paper Table 1), sorts ascending, and evicts in order
    /// until the resident size drops below a hysteresis watermark slightly
    /// under the budget. This keeps high-pollution workloads (e.g. the Fig 6
    /// mini-batch probe configuration) from degrading into an O(n²) scan per
    /// inserted entry, while preserving the per-policy eviction *order*.
    fn enforce_budget(&self, st: &mut CacheState) {
        let budget = self.effective_budget();
        if st.resident_bytes <= budget {
            self.sync_governor(st);
            return;
        }
        let watermark = (budget as f64 * self.config.eviction_watermark.clamp(0.0, 1.0)) as usize;
        let norms =
            eviction::Norms::collect(st.map.values().filter(|e| e.is_resident() && e.size > 0));
        let mut scored: Vec<(LinKey, f64, u64)> = st
            .map
            .iter()
            .filter(|(_, e)| e.is_resident() && e.size > 0)
            .map(|(k, e)| {
                (
                    k.clone(),
                    eviction::score(self.config.policy, e, &norms),
                    e.last_access,
                )
            })
            .collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.2.cmp(&b.2))
        });
        // Group deferral bookkeeping: entries caching the same object defer
        // spilling until the whole group is evicted (paper §4.3).
        let mut group_counts: HashMap<usize, usize> = HashMap::new();
        for e in st.map.values() {
            if e.is_resident() && e.group != 0 {
                *group_counts.entry(e.group).or_default() += 1;
            }
        }
        for (vkey, _, _) in scored {
            if st.resident_bytes <= watermark {
                break;
            }
            let Some(e) = st.map.get_mut(&vkey) else {
                continue;
            };
            let group = e.group;
            let shared = group != 0 && group_counts.get(&group).copied().unwrap_or(0) > 1;
            if group != 0 {
                if let Some(c) = group_counts.get_mut(&group) {
                    *c = c.saturating_sub(1);
                }
            }
            let size = e.size;
            let compute_ns = e.compute_ns;
            let value = match std::mem::replace(&mut e.state, EntryState::Evicted) {
                EntryState::Cached(v) => v,
                other => {
                    e.state = other;
                    continue;
                }
            };
            e.size = 0;
            st.resident_bytes = st.resident_bytes.saturating_sub(size);
            // At governor level L3+ eviction degrades to delete-only: spill
            // files are themselves governed memory/disk pressure.
            if !shared && self.admissions_open() {
                if let Some(store) = &self.spill_store {
                    if self.io.worth_spilling(size, compute_ns) {
                        match self.spill_breaker.allow() {
                            Attempt::Rejected => {}
                            verdict => {
                                if verdict == Attempt::Probe {
                                    LimaStats::bump(&self.stats.breaker_probes);
                                }
                                let t0 = Instant::now();
                                let spill_t0 = self.obs().map(|o| o.now_ns());
                                match store.spill(&value) {
                                    Ok(Some((path, bytes))) => {
                                        self.spill_breaker.record_success();
                                        self.io
                                            .observe_write(bytes, t0.elapsed().as_nanos() as u64);
                                        LimaStats::bump(&self.stats.spills);
                                        LimaStats::add(&self.stats.spill_bytes, bytes as u64);
                                        st.spilled_bytes += bytes;
                                        if let (Some(o), Some(ot0)) = (self.obs(), spill_t0) {
                                            o.record_span(
                                                EventKind::SpillWrite,
                                                vkey.0.opcode(),
                                                vkey.0.id(),
                                                ot0,
                                                bytes as u64,
                                                0,
                                            );
                                        }
                                        if let Some(e) = st.map.get_mut(&vkey) {
                                            e.state = EntryState::Spilled { path, bytes };
                                        }
                                        continue;
                                    }
                                    // Non-matrix values are simply not
                                    // spillable; no breaker feedback.
                                    Ok(None) => {}
                                    // Write failure: fall back to delete-
                                    // eviction and feed the circuit breaker.
                                    Err(_) => {
                                        LimaStats::bump(&self.stats.spill_failures);
                                        self.spill_breaker.record_failure();
                                    }
                                }
                            }
                        }
                    }
                }
            }
            LimaStats::bump(&self.stats.evictions);
        }
        self.prune_shells(st);
        self.sync_governor(st);
    }

    /// Bounds bookkeeping growth: evicted shells retain reuse statistics
    /// (their misses can raise scores, Fig 8a), but unbounded shell growth
    /// would make every eviction scan slower. Keep at most 4× the number of
    /// live entries, dropping the least-recently-accessed shells.
    fn prune_shells(&self, st: &mut CacheState) {
        let live = st
            .map
            .values()
            .filter(|e| !matches!(e.state, EntryState::Evicted))
            .count();
        let max_shells = (live * 4).max(4096);
        let shells = st.map.len() - live;
        if shells <= max_shells {
            return;
        }
        let mut shell_keys: Vec<(LinKey, u64)> = st
            .map
            .iter()
            .filter(|(_, e)| matches!(e.state, EntryState::Evicted))
            .map(|(k, e)| (k.clone(), e.last_access))
            .collect();
        shell_keys.sort_by_key(|(_, t)| *t);
        for (k, _) in shell_keys.into_iter().take(shells - max_shells) {
            st.map.remove(&k);
        }
    }

    /// True while the spill circuit breaker is open (or probing): after
    /// `config.spill_failure_limit` consecutive write failures, evictions
    /// stop attempting to spill until a half-open probe succeeds (0 disables
    /// the breaker; `config.breaker_cooldown_ms == 0` latches open forever).
    pub fn spill_disabled(&self) -> bool {
        self.spill_breaker.is_open()
    }

    /// Drops every entry (tests and phase boundaries in benchmarks). With
    /// persistence enabled, each durable entry gets an eviction tombstone so
    /// a later process does not recover cleared state.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        if let Some(store) = &self.spill_store {
            for e in st.map.values() {
                if let EntryState::Spilled { path, .. } = &e.state {
                    store.discard(path);
                }
            }
        }
        if let Some(store) = &self.persist_store {
            for e in st.map.values() {
                if let Some(id) = e.persist_id {
                    if store.tombstone(id).unwrap_or(false) {
                        LimaStats::bump(&self.stats.persist_tombstones);
                    }
                }
            }
        }
        st.map.clear();
        st.resident_bytes = 0;
        st.spilled_bytes = 0;
        self.sync_governor(&st);
        drop(st);
        self.drain_compaction_counters();
        self.cond.notify_all();
    }
}

/// First-hit savings credit (the `saved_compute_ns` at-most-once rule):
/// returns the nanoseconds this hit may add to the savings counter.
///
/// An entry credits only on its first hit. A composite (function/block)
/// entry credits its measured cost minus whatever its transitive children
/// (entries computed within its window) already credited, and marks the
/// whole subtree credited so constituent hits cannot credit the same
/// nanoseconds again later. Conversely, a constituent hit before the
/// composite's first hit credits its own cost, which the composite then
/// subtracts. Must run under the cache state lock.
#[allow(clippy::mutable_key_type)] // OnceLock caches never change Hash/Eq
fn take_hit_credit(map: &mut HashMap<LinKey, CacheEntry>, key: &LinKey) -> u64 {
    let (compute_ns, children) = match map.get_mut(key) {
        Some(e) if !e.credited => {
            e.credited = true;
            (e.compute_ns, e.children.clone())
        }
        _ => return 0,
    };
    let mut already_credited = 0u64;
    let mut queue = children;
    let mut seen: std::collections::HashSet<LinKey> = std::collections::HashSet::new();
    while let Some(k) = queue.pop() {
        if !seen.insert(k.clone()) {
            continue;
        }
        if let Some(e) = map.get_mut(&k) {
            if e.credited {
                already_credited = already_credited.saturating_add(e.credited_ns);
            }
            e.credited = true;
            queue.extend(e.children.iter().cloned());
        }
    }
    let credit = compute_ns.saturating_sub(already_credited);
    if let Some(e) = map.get_mut(key) {
        e.credited_ns = credit;
    }
    credit
}

/// Identity tag grouping entries that cache the same underlying object
/// (multi-level entries). 0 means "untagged".
fn value_group(v: &Value) -> usize {
    match v {
        Value::Matrix(m) => Arc::as_ptr(m) as usize,
        Value::List(l) => Arc::as_ptr(l) as usize,
        Value::Scalar(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::item::LineageItem;
    use lima_matrix::DenseMatrix;

    fn cfg(budget: usize) -> LimaConfig {
        LimaConfig {
            budget_bytes: budget,
            spill: false,
            ..LimaConfig::default()
        }
    }

    fn mk_item(op: &str, seed: &str) -> LinRef {
        LineageItem::op(op, vec![LineageItem::op_with_data("read", seed, vec![])])
    }

    fn mat(n: usize) -> Value {
        Value::matrix(DenseMatrix::filled(n, n, 1.0))
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("ba+*", "X");
        let v = mat(10);
        match cache.acquire(&item).unwrap() {
            Probe::Hit(_) => panic!("expected miss"),
            Probe::Reserved(r) => r.fulfill(&v, 1_000),
        }
        // Structurally equal item probes hit.
        let item2 = mk_item("ba+*", "X");
        match cache.acquire(&item2).unwrap() {
            Probe::Hit(got) => assert!(got.approx_eq(&v, 0.0)),
            Probe::Reserved(_) => panic!("expected hit"),
        }
        assert_eq!(LimaStats::get(&cache.stats().full_hits), 1);
        assert_eq!(LimaStats::get(&cache.stats().puts), 1);
    }

    #[test]
    fn non_cacheable_opcodes_bypass_the_cache() {
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("print", "X");
        assert!(cache.acquire(&item).is_none());
        let disabled = LineageCache::new(LimaConfig::tracing_only());
        assert!(disabled.acquire(&mk_item("ba+*", "X")).is_none());
    }

    #[test]
    fn aborted_reservations_allow_retry() {
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("ba+*", "X");
        match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r.abort(),
            _ => panic!(),
        }
        // Next probe must get a reservation again, not deadlock.
        match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(2), 10),
            _ => panic!("expected reservation after abort"),
        }
        assert!(matches!(cache.acquire(&item).unwrap(), Probe::Hit(_)));
    }

    #[test]
    fn dropped_reservation_aborts() {
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("ba+*", "X");
        {
            let _r = match cache.acquire(&item).unwrap() {
                Probe::Reserved(r) => r,
                _ => panic!(),
            };
            // dropped here without fulfill
        }
        assert!(matches!(cache.acquire(&item).unwrap(), Probe::Reserved(_)));
    }

    #[test]
    fn eviction_respects_budget() {
        // Budget fits roughly two of the three 100x100 matrices (80kB each).
        let cache = LineageCache::new(cfg(170_000));
        for i in 0..3 {
            let item = mk_item("ba+*", &format!("X{i}"));
            match cache.acquire(&item).unwrap() {
                Probe::Reserved(r) => r.fulfill(&mat(100), 1_000 * (i as u64 + 1)),
                _ => panic!(),
            }
        }
        assert!(cache.resident_bytes() <= 170_000);
        assert!(LimaStats::get(&cache.stats().evictions) >= 1);
        // The cheapest entry (X0) was evicted under Cost&Size.
        assert!(matches!(
            cache.acquire(&mk_item("ba+*", "X0")).unwrap(),
            Probe::Reserved(_)
        ));
    }

    #[test]
    fn oversized_values_are_rejected_not_cached() {
        let cache = LineageCache::new(cfg(1_000));
        let item = mk_item("ba+*", "big");
        match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 1_000),
            _ => panic!(),
        }
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(LimaStats::get(&cache.stats().rejected_puts), 1);
        // Shell remains; next probe reserves again.
        assert!(matches!(cache.acquire(&item).unwrap(), Probe::Reserved(_)));
    }

    #[test]
    fn placeholder_blocks_concurrent_probes() {
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("ba+*", "X");
        let r = match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        let c2 = Arc::clone(&cache);
        let item2 = mk_item("ba+*", "X");
        let waiter = std::thread::spawn(move || match c2.acquire(&item2).unwrap() {
            Probe::Hit(v) => v,
            Probe::Reserved(_) => panic!("waiter should get the computed value"),
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        r.fulfill(&mat(4), 123);
        let got = waiter.join().unwrap();
        assert!(got.approx_eq(&mat(4), 0.0));
        assert_eq!(LimaStats::get(&cache.stats().placeholder_waits), 1);
    }

    #[test]
    fn spilled_entries_restore_on_hit() {
        let config = LimaConfig {
            budget_bytes: 100_000,
            spill: true,
            ..LimaConfig::default()
        };
        let cache = LineageCache::new(config);
        // Expensive-to-compute entry (so spilling pays off), then push it out
        // with an entry whose Cost&Size score is even higher.
        let hot = mk_item("ba+*", "hot");
        match cache.acquire(&hot).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 60_000_000_000),
            _ => panic!(),
        }
        let filler = mk_item("ba+*", "filler");
        match cache.acquire(&filler).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(90), 120_000_000_000),
            _ => panic!(),
        }
        assert!(LimaStats::get(&cache.stats().spills) >= 1);
        match cache.acquire(&mk_item("ba+*", "hot")).unwrap() {
            Probe::Hit(v) => assert!(v.approx_eq(&mat(100), 0.0)),
            Probe::Reserved(_) => panic!("expected restore hit"),
        }
        assert_eq!(LimaStats::get(&cache.stats().restores), 1);
    }

    #[test]
    fn peek_does_not_create_placeholders() {
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("ba+*", "X");
        assert!(cache.peek(&item).is_none());
        // No placeholder was created: acquire gets a fresh reservation and
        // nobody deadlocks.
        match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(3), 5),
            _ => panic!(),
        }
        assert!(cache.peek(&item).is_some());
    }

    #[test]
    fn misses_on_shells_raise_costsize_score() {
        // Budget fits only one 100x100 matrix (~80kB) at a time.
        let cache = LineageCache::new(cfg(100_000));
        let a = mk_item("ba+*", "A");
        match cache.acquire(&a).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 100_000),
            _ => panic!(),
        }
        // Push A out with a more valuable entry (higher compute cost).
        let b = mk_item("ba+*", "B");
        match cache.acquire(&b).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 1_000_000),
            _ => panic!(),
        }
        // A's shell accumulates misses...
        for _ in 0..100 {
            assert!(cache.peek(&a).is_none());
        }
        // ...so once re-cached, A survives the next budget squeeze over B.
        match cache.acquire(&a).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 100_000),
            _ => panic!(),
        }
        assert!(matches!(cache.acquire(&a).unwrap(), Probe::Hit(_)));
        assert!(matches!(cache.acquire(&b).unwrap(), Probe::Reserved(_)));
    }

    #[test]
    fn aborted_reservation_wakes_all_blocked_waiters() {
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("ba+*", "X");
        let r = match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        let t0 = Instant::now();
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&cache);
                let it = mk_item("ba+*", "X");
                std::thread::spawn(move || match c.acquire(&it).unwrap() {
                    Probe::Hit(_) => "hit",
                    Probe::Reserved(r) => {
                        r.fulfill(&mat(4), 10);
                        "reserved"
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        drop(r); // implicit abort
        let outcomes: Vec<&str> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
        // Exactly one waiter takes over the computation; the rest reuse it.
        assert_eq!(outcomes.iter().filter(|o| **o == "reserved").count(), 1);
        assert_eq!(outcomes.iter().filter(|o| **o == "hit").count(), 2);
        // All waiters woke well within the placeholder timeout (60 s default).
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn placeholder_timeout_converts_waiter_into_takeover() {
        let config = LimaConfig {
            placeholder_timeout_ms: 100,
            ..cfg(1 << 20)
        };
        let cache = LineageCache::new(config);
        let item = mk_item("ba+*", "X");
        let r = match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        // Simulate a fulfiller dying without aborting: leak the reservation
        // so no notify ever arrives for this placeholder.
        std::mem::forget(r);
        let c = Arc::clone(&cache);
        let it = mk_item("ba+*", "X");
        let waiter = std::thread::spawn(move || match c.acquire(&it).unwrap() {
            Probe::Reserved(r) => {
                r.fulfill(&mat(3), 10);
                true
            }
            Probe::Hit(_) => false,
        });
        assert!(
            waiter.join().unwrap(),
            "waiter must take the placeholder over"
        );
        assert!(LimaStats::get(&cache.stats().placeholder_timeouts) >= 1);
        // The takeover's value is now served normally.
        assert!(matches!(cache.acquire(&item).unwrap(), Probe::Hit(_)));
    }

    #[test]
    fn spill_write_failure_falls_back_to_delete_evict() {
        use crate::faults::{FaultInjector, FaultSite};
        let inj = Arc::new(FaultInjector::new(0).fail_every(FaultSite::SpillWrite, 1));
        let config = LimaConfig {
            budget_bytes: 100_000,
            spill: true,
            spill_failure_limit: 0, // breaker off: every eviction tries
            faults: Some(Arc::clone(&inj)),
            ..LimaConfig::default()
        };
        let cache = LineageCache::new(config);
        let hot = mk_item("ba+*", "hot");
        match cache.acquire(&hot).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 60_000_000_000),
            _ => panic!(),
        }
        let filler = mk_item("ba+*", "filler");
        match cache.acquire(&filler).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(90), 120_000_000_000),
            _ => panic!(),
        }
        assert!(inj.injected(FaultSite::SpillWrite) >= 1);
        assert!(LimaStats::get(&cache.stats().spill_failures) >= 1);
        assert_eq!(LimaStats::get(&cache.stats().spills), 0);
        assert!(LimaStats::get(&cache.stats().evictions) >= 1);
        // The victim is a graceful miss, not an error.
        assert!(matches!(
            cache.acquire(&mk_item("ba+*", "hot")).unwrap(),
            Probe::Reserved(_)
        ));
    }

    #[test]
    fn spill_circuit_breaker_stops_attempts_after_limit() {
        use crate::faults::{FaultInjector, FaultSite};
        let inj = Arc::new(FaultInjector::new(0).fail_every(FaultSite::SpillWrite, 1));
        let config = LimaConfig {
            budget_bytes: 100_000,
            spill: true,
            spill_failure_limit: 2,
            faults: Some(Arc::clone(&inj)),
            ..LimaConfig::default()
        };
        let cache = LineageCache::new(config);
        for i in 0..6 {
            let item = mk_item("ba+*", &format!("X{i}"));
            match cache.acquire(&item).unwrap() {
                Probe::Reserved(r) => r.fulfill(&mat(100), 60_000_000_000),
                _ => panic!(),
            }
        }
        // Two consecutive failures opened the breaker; later evictions never
        // reached the spill store again.
        assert!(cache.spill_disabled());
        assert_eq!(inj.occurrences(FaultSite::SpillWrite), 2);
        assert_eq!(LimaStats::get(&cache.stats().spill_failures), 2);
        assert!(LimaStats::get(&cache.stats().evictions) >= 4);
    }

    #[test]
    fn corrupted_spill_degrades_to_miss_and_recomputes() {
        use crate::faults::{FaultInjector, FaultSite};
        let inj = Arc::new(FaultInjector::new(0).fail_every(FaultSite::SpillCorrupt, 1));
        let config = LimaConfig {
            budget_bytes: 100_000,
            spill: true,
            faults: Some(inj),
            ..LimaConfig::default()
        };
        let cache = LineageCache::new(config);
        let hot = mk_item("ba+*", "hot");
        match cache.acquire(&hot).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 60_000_000_000),
            _ => panic!(),
        }
        let filler = mk_item("ba+*", "filler");
        match cache.acquire(&filler).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(90), 120_000_000_000),
            _ => panic!(),
        }
        assert!(LimaStats::get(&cache.stats().spills) >= 1);
        // The corrupted file fails its checksum on restore: graceful miss.
        match cache.acquire(&mk_item("ba+*", "hot")).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 60_000_000_000),
            Probe::Hit(_) => panic!("corrupt restore must not produce a value"),
        }
        assert!(LimaStats::get(&cache.stats().restore_failures) >= 1);
        assert_eq!(LimaStats::get(&cache.stats().restores), 0);
    }

    #[test]
    fn clear_empties_cache() {
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("ba+*", "X");
        match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(5), 5),
            _ => panic!(),
        }
        assert_eq!(cache.live_entries(), 1);
        cache.clear();
        assert_eq!(cache.live_entries(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    fn persist_dir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("lima-cache-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn warm_restart_recovers_entries_and_counts_persist_hits() {
        let dir = persist_dir("warm");
        let mkcfg = || LimaConfig {
            spill: false,
            ..LimaConfig::lima().with_persistence(&dir)
        };
        let v = mat(6);
        {
            // "First process": compute and durably persist one entry.
            let cache = LineageCache::new(mkcfg());
            match cache.acquire(&mk_item("ba+*", "X")).unwrap() {
                Probe::Reserved(r) => r.fulfill(&v, 7_000),
                Probe::Hit(_) => panic!("fresh cache"),
            }
            assert_eq!(LimaStats::get(&cache.stats().persist_writes), 1);
            assert!(LimaStats::get(&cache.stats().persist_bytes) > 0);
        }
        // "Second process": recovery repopulates the entry; the first probe
        // hits without any fulfil in this lifetime.
        let cache = LineageCache::new(mkcfg());
        assert_eq!(LimaStats::get(&cache.stats().persist_recovered), 1);
        match cache.acquire(&mk_item("ba+*", "X")).unwrap() {
            Probe::Hit(got) => {
                assert!(got.approx_eq(&v, 0.0));
            }
            Probe::Reserved(_) => panic!("expected warm-restart hit"),
        }
        assert_eq!(LimaStats::get(&cache.stats().persist_hits), 1);
        assert_eq!(LimaStats::get(&cache.stats().full_hits), 1);
        // The recovered entry keeps its persist ID: no duplicate durable
        // write when it is fulfilled again after an eviction.
        assert_eq!(LimaStats::get(&cache.stats().persist_writes), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_tombstones_persisted_entries() {
        let dir = persist_dir("clear");
        let mkcfg = || LimaConfig {
            spill: false,
            ..LimaConfig::lima().with_persistence(&dir)
        };
        {
            let cache = LineageCache::new(mkcfg());
            match cache.acquire(&mk_item("ba+*", "X")).unwrap() {
                Probe::Reserved(r) => r.fulfill(&mat(4), 100),
                _ => panic!(),
            }
            cache.clear();
            assert_eq!(LimaStats::get(&cache.stats().persist_tombstones), 1);
        }
        let cache = LineageCache::new(mkcfg());
        assert_eq!(LimaStats::get(&cache.stats().persist_recovered), 0);
        assert!(matches!(
            cache.acquire(&mk_item("ba+*", "X")).unwrap(),
            Probe::Reserved(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multilevel_entries_are_not_persisted() {
        let dir = persist_dir("ml");
        {
            let cache = LineageCache::new(LimaConfig {
                spill: false,
                ..LimaConfig::lima().with_persistence(&dir)
            });
            let item = LineageItem::op_with_data(
                format!("{}f", crate::opcodes::FCALL),
                "args",
                vec![mk_item("ba+*", "X")],
            );
            match cache.acquire(&item).unwrap() {
                Probe::Reserved(r) => r.fulfill(&mat(4), 100),
                _ => panic!(),
            }
            assert_eq!(LimaStats::get(&cache.stats().persist_writes), 0);
        }
        let cache = LineageCache::new(LimaConfig::lima().with_persistence(&dir));
        assert_eq!(LimaStats::get(&cache.stats().persist_recovered), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn governor_pressure_walks_ladder_and_gates_cache_admissions() {
        use crate::governor::PressureLevel;
        // Governor budget far below the cache budget: resident bytes alone
        // drive the ladder (mat(100) ≈ 80 kB).
        let cache = LineageCache::new(cfg(1 << 20).with_governor(100_000));
        let g = cache.governor().unwrap();
        assert_eq!(g.level(), PressureLevel::Normal);
        assert!(cache.partial_reuse() && cache.rewrites_enabled());

        match cache.acquire(&mk_item("ba+*", "A")).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 1_000),
            _ => panic!(),
        }
        // 80 kB / 100 kB = 0.80 → L2: rewrites paused, admissions still open.
        assert_eq!(g.level(), PressureLevel::NoRewrites);
        assert!(!cache.partial_reuse());
        assert!(!cache.rewrites_enabled());

        match cache.acquire(&mk_item("ba+*", "B")).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(50), 1_000),
            _ => panic!(),
        }
        // 100 kB / 100 kB → L4; misses no longer create placeholders.
        assert_eq!(g.level(), PressureLevel::RejectSessions);
        assert!(cache.acquire(&mk_item("ba+*", "C")).is_none());
        assert!(LimaStats::get(&cache.stats().governor_admission_rejects) >= 1);
        // Existing entries still serve hits at L3+.
        assert!(matches!(
            cache.acquire(&mk_item("ba+*", "A")).unwrap(),
            Probe::Hit(_)
        ));
        // Pressure release re-arms every level and counts the recoveries.
        cache.clear();
        assert_eq!(g.level(), PressureLevel::Normal);
        assert_eq!(LimaStats::get(&cache.stats().governor_degrades), 4);
        assert_eq!(LimaStats::get(&cache.stats().governor_recovers), 4);
        assert!(matches!(
            cache.acquire(&mk_item("ba+*", "C")).unwrap(),
            Probe::Reserved(_)
        ));
    }

    #[test]
    fn scrubber_yields_under_pressure_and_resumes_after_recovery() {
        use crate::governor::PressureLevel;
        let dir = persist_dir("scrubpause");
        let cache = LineageCache::new(LimaConfig {
            spill: false,
            ..LimaConfig::lima()
                .with_persistence(&dir)
                .with_governor(100_000)
        });
        match cache.acquire(&mk_item("ba+*", "X")).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(10), 1_000),
            _ => panic!(),
        }
        // Baseline: scrubbing progresses at L0/L1.
        assert!(cache.scrub_step(0).is_some());
        let bytes_before = LimaStats::get(&cache.stats().scrub_bytes);
        assert!(bytes_before > 0);
        // Drive the governor to L2 (mat(100) ≈ 80 kB of the 100 kB budget).
        match cache.acquire(&mk_item("ba+*", "P")).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(100), 1_000),
            _ => panic!(),
        }
        assert_eq!(cache.governor().unwrap().level(), PressureLevel::NoRewrites);
        // Scrub I/O pauses: no scrub_bytes progress until pressure recovers.
        for _ in 0..3 {
            assert!(cache.scrub_step(0).is_none());
        }
        assert_eq!(LimaStats::get(&cache.stats().scrub_bytes), bytes_before);
        assert_eq!(LimaStats::get(&cache.stats().scrub_pauses), 3);
        // Pressure release to ≤L1 resumes scrubbing.
        cache.clear();
        assert_eq!(cache.governor().unwrap().level(), PressureLevel::Normal);
        assert!(cache.scrub_step(0).is_some());
        assert!(LimaStats::get(&cache.stats().scrub_bytes) > bytes_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_step_repairs_corruption_via_config_hook() {
        let dir = persist_dir("scrubhook");
        let good = mat(6);
        let hook_v = good.clone();
        let config = LimaConfig {
            spill: false,
            ..LimaConfig::lima().with_persistence(&dir)
        }
        .with_repair(persist::RepairHook::new(move |_root| Ok(hook_v.clone())));
        let cache = LineageCache::new(config);
        match cache.acquire(&mk_item("ba+*", "X")).unwrap() {
            Probe::Reserved(r) => r.fulfill(&good, 1_000),
            _ => panic!(),
        }
        // Bit-flip the persisted value file.
        let victim = std::fs::read_dir(dir.join("values"))
            .unwrap()
            .flatten()
            .find(|e| e.file_name().to_string_lossy().ends_with(".val"))
            .unwrap()
            .path();
        let mut raw = std::fs::read(&victim).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&victim, &raw).unwrap();
        let out = cache.scrub_step(0).unwrap();
        assert_eq!(out.corrupt, 1);
        assert_eq!(out.repaired, 1);
        assert_eq!(out.quarantined, 0);
        assert_eq!(LimaStats::get(&cache.stats().persist_repairs), 1);
        assert_eq!(LimaStats::get(&cache.stats().scrub_corruptions), 1);
        assert_eq!(LimaStats::get(&cache.stats().persist_repair_failures), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_full_degrades_cache_to_memory_only_and_counts_once() {
        use crate::faults::{FaultInjector, FaultSite};
        let dir = persist_dir("diskfull");
        let inj = Arc::new(FaultInjector::new(0).fail_every(FaultSite::DiskFull, 1));
        let config = LimaConfig {
            spill: false,
            ..LimaConfig::lima().with_persistence(&dir)
        }
        .with_faults(inj);
        let cache = LineageCache::new(config);
        match cache.acquire(&mk_item("ba+*", "X")).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(4), 100),
            _ => panic!(),
        }
        assert_eq!(LimaStats::get(&cache.stats().persist_disk_full), 1);
        assert!(!cache.persist_active());
        assert_eq!(
            cache.persist_degrade_reason(),
            Some(persist::DegradeReason::DiskFull)
        );
        // The cache keeps serving from memory, and the degrade is counted
        // exactly once even as later fulfills skip persistence.
        assert!(matches!(
            cache.acquire(&mk_item("ba+*", "X")).unwrap(),
            Probe::Hit(_)
        ));
        match cache.acquire(&mk_item("ba+*", "Y")).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(4), 100),
            _ => panic!(),
        }
        assert_eq!(LimaStats::get(&cache.stats().persist_disk_full), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_persist_reclaims_cleared_entries() {
        let dir = persist_dir("compactcache");
        let cache = LineageCache::new(LimaConfig {
            spill: false,
            ..LimaConfig::lima().with_persistence(&dir)
        });
        for s in ["A", "B", "C"] {
            match cache.acquire(&mk_item("ba+*", s)).unwrap() {
                Probe::Reserved(r) => r.fulfill(&mat(4), 100),
                _ => panic!(),
            }
        }
        cache.clear(); // tombstones all three durable entries
        let out = cache.compact_persist().unwrap();
        assert!(out.wal_bytes_after < out.wal_bytes_before);
        assert!(LimaStats::get(&cache.stats().persist_compactions) >= 1);
        assert!(LimaStats::get(&cache.stats().persist_compact_reclaimed) > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_waiter_unblocks_long_before_placeholder_timeout() {
        use crate::interrupt::{CancelToken, Interrupt, InterruptKind};
        let config = LimaConfig {
            placeholder_timeout_ms: 60_000,
            ..cfg(1 << 20)
        };
        let cache = LineageCache::new(config);
        let item = mk_item("ba+*", "X");
        let r = match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        let token = CancelToken::new();
        let intr = Interrupt {
            token: Some(Arc::clone(&token)),
            deadline: None,
        };
        let c = Arc::clone(&cache);
        let it = mk_item("ba+*", "X");
        let t0 = Instant::now();
        let waiter = std::thread::spawn(move || c.acquire_interruptible(&it, Some(&intr)).err());
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
        assert_eq!(waiter.join().unwrap(), Some(InterruptKind::Cancelled));
        // Recovered in ~one wait slice, not the 60 s placeholder timeout.
        assert!(t0.elapsed() < Duration::from_secs(5));
        // The placeholder is still owned by `r`; fulfilling works normally.
        r.fulfill(&mat(3), 10);
        assert!(matches!(cache.acquire(&item).unwrap(), Probe::Hit(_)));
    }

    #[test]
    fn expired_deadline_fails_probe_instead_of_blocking() {
        use crate::interrupt::{Interrupt, InterruptKind};
        let cache = LineageCache::new(cfg(1 << 20));
        let item = mk_item("ba+*", "X");
        let _r = match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        let intr = Interrupt {
            token: None,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
        };
        assert_eq!(
            cache.acquire_interruptible(&item, Some(&intr)).err(),
            Some(InterruptKind::DeadlineExceeded)
        );
    }

    #[test]
    fn spill_breaker_half_opens_and_recovers_after_cooldown() {
        use crate::faults::{FaultInjector, FaultSite};
        // Only the very first spill write fails; breaker limit 1 opens it.
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::SpillWrite, &[0]));
        let config = LimaConfig {
            budget_bytes: 100_000,
            spill: true,
            spill_failure_limit: 1,
            breaker_cooldown_ms: 50,
            // Strict eviction: exactly one entry overflows per fill, so the
            // second overflow is the post-cooldown probe.
            eviction_watermark: 1.0,
            faults: Some(Arc::clone(&inj)),
            ..LimaConfig::default()
        };
        let cache = LineageCache::new(config);
        let fill = |tag: &str, ns: u64| {
            let item = mk_item("ba+*", tag);
            match cache.acquire(&item).unwrap() {
                Probe::Reserved(r) => r.fulfill(&mat(100), ns),
                _ => panic!("fresh key"),
            }
        };
        fill("a", 60_000_000_000);
        fill("b", 120_000_000_000); // evicts "a" → injected failure → open
        assert!(cache.spill_disabled());
        assert_eq!(LimaStats::get(&cache.stats().spill_failures), 1);
        // After the cooldown the next eviction is allowed through as a probe
        // and succeeds, closing the breaker again.
        std::thread::sleep(Duration::from_millis(60));
        fill("c", 240_000_000_000);
        assert!(!cache.spill_disabled());
        assert!(LimaStats::get(&cache.stats().breaker_probes) >= 1);
        assert!(LimaStats::get(&cache.stats().spills) >= 1);
        assert!(inj.occurrences(FaultSite::SpillWrite) >= 2);
    }

    /// Fulfils the composite-then-constituent shape of a function call:
    /// the op entry is computed *inside* the composite's window.
    fn fulfill_composite_with_child(
        cache: &Arc<LineageCache>,
        f_item: &LinRef,
        op_item: &LinRef,
        op_ns: u64,
        f_ns: u64,
    ) {
        let rf = match cache.acquire(f_item).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!("composite should miss"),
        };
        let ro = match cache.acquire(op_item).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!("op should miss"),
        };
        ro.fulfill(&mat(4), op_ns);
        rf.fulfill(&mat(4), f_ns);
    }

    /// Regression (savings double-count): a multilevel hit used to credit
    /// the composite's full `compute_ns` on every probe, *and* constituent
    /// hits credited their (already included) cost again. Savings must now
    /// count each computed nanosecond at most once, in either hit order.
    #[test]
    fn saved_compute_credits_each_nanosecond_at_most_once() {
        // Composite hit first: credits its full cost (nothing credited yet),
        // then the constituent hit credits nothing more.
        let cache = LineageCache::new(cfg(1 << 24));
        let f = mk_item("fcall:f", "X");
        let op = mk_item("tsmm", "X");
        fulfill_composite_with_child(&cache, &f, &op, 2_000, 5_000);
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 0);
        assert!(matches!(cache.acquire(&f), Some(Probe::Hit(_))));
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 5_000);
        assert!(matches!(cache.acquire(&op), Some(Probe::Hit(_))));
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 5_000);
        // Repeat hits stay flat (first-hit-only crediting).
        assert!(matches!(cache.acquire(&f), Some(Probe::Hit(_))));
        assert!(matches!(cache.acquire(&op), Some(Probe::Hit(_))));
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 5_000);
        // Hit-kind counters still classify by level.
        assert_eq!(LimaStats::get(&cache.stats().multilevel_hits), 2);
        assert_eq!(LimaStats::get(&cache.stats().full_hits), 2);
    }

    #[test]
    fn saved_compute_constituent_first_then_composite_nets_out() {
        let cache = LineageCache::new(cfg(1 << 24));
        let f = mk_item("fcall:f", "X");
        let op = mk_item("tsmm", "X");
        fulfill_composite_with_child(&cache, &f, &op, 2_000, 5_000);
        // Constituent hit first: credits its own 2µs...
        assert!(matches!(cache.acquire(&op), Some(Probe::Hit(_))));
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 2_000);
        // ...and the composite then credits only the 3µs remainder.
        assert!(matches!(cache.acquire(&f), Some(Probe::Hit(_))));
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 5_000);
    }

    #[test]
    fn saved_compute_handles_nested_composites() {
        // g(X) nested inside f(X): f { g { op } }. Marking must recurse so a
        // later grandchild hit cannot re-credit time f already claimed.
        let cache = LineageCache::new(cfg(1 << 24));
        let f = mk_item("fcall:f", "X");
        let g = mk_item("fcall:g", "X");
        let op = mk_item("tsmm", "X");
        let rf = match cache.acquire(&f).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        let rg = match cache.acquire(&g).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        let ro = match cache.acquire(&op).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        ro.fulfill(&mat(4), 1_000);
        rg.fulfill(&mat(4), 3_000);
        rf.fulfill(&mat(4), 9_000);
        assert!(matches!(cache.acquire(&f), Some(Probe::Hit(_))));
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 9_000);
        assert!(matches!(cache.acquire(&g), Some(Probe::Hit(_))));
        assert!(matches!(cache.acquire(&op), Some(Probe::Hit(_))));
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 9_000);
    }

    #[test]
    fn aborted_composite_reparents_children() {
        // f fails after its constituent was cached: the constituent's cost
        // must still be attributed (to the outer scope), and its own hits
        // credit normally, once.
        let cache = LineageCache::new(cfg(1 << 24));
        let f = mk_item("fcall:f", "X");
        let op = mk_item("tsmm", "X");
        let rf = match cache.acquire(&f).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        let ro = match cache.acquire(&op).unwrap() {
            Probe::Reserved(r) => r,
            _ => panic!(),
        };
        ro.fulfill(&mat(4), 2_000);
        rf.abort();
        assert!(matches!(cache.acquire(&op), Some(Probe::Hit(_))));
        assert!(matches!(cache.acquire(&op), Some(Probe::Hit(_))));
        assert_eq!(LimaStats::get(&cache.stats().saved_compute_ns), 2_000);
    }

    #[test]
    fn cost_report_ranks_by_compute_and_carries_lineage_ids() {
        let cache = LineageCache::new(cfg(1 << 24));
        let cheap = mk_item("ba+*", "cheap");
        let costly = mk_item("tsmm", "costly");
        for (item, ns) in [(&cheap, 1_000u64), (&costly, 50_000)] {
            match cache.acquire(item).unwrap() {
                Probe::Reserved(r) => r.fulfill(&mat(4), ns),
                _ => panic!(),
            }
        }
        assert!(matches!(cache.acquire(&costly), Some(Probe::Hit(_))));
        let report = cache.cost_report(10);
        // read leaves are not cached, so exactly the two op entries appear.
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].opcode, "tsmm");
        assert_eq!(report[0].compute_ns, 50_000);
        assert_eq!(report[0].hits, 1);
        assert_eq!(report[0].saved_ns, 50_000);
        assert_eq!(report[0].lineage_id, costly.id());
        assert!(report[0].resident);
        assert_eq!(report[1].opcode, "ba+*");
        assert_eq!(report[1].saved_ns, 0);
        let top1 = cache.cost_report(1);
        assert_eq!(top1.len(), 1);
        assert!(top1[0].render().contains("tsmm"));
    }

    #[test]
    fn cache_emits_obs_events_with_lineage_ids() {
        use crate::obs::EventKind;
        let obs = Arc::new(Obs::new());
        let config = LimaConfig {
            obs: Some(Arc::clone(&obs)),
            ..cfg(1 << 24)
        };
        let cache = LineageCache::new(config);
        let item = mk_item("tsmm", "X");
        match cache.acquire(&item).unwrap() {
            Probe::Reserved(r) => r.fulfill(&mat(4), 7_000),
            _ => panic!(),
        }
        assert!(matches!(cache.acquire(&item), Some(Probe::Hit(_))));
        let events = obs.events();
        let kinds: Vec<EventKind> = events.iter().map(|(_, e)| e.kind).collect();
        assert!(kinds.contains(&EventKind::CacheMiss));
        assert!(kinds.contains(&EventKind::CacheFulfill));
        assert!(kinds.contains(&EventKind::CacheHit));
        for (_, e) in &events {
            assert_eq!(e.lineage_id, item.id());
            assert_eq!(e.name.as_str(), "tsmm");
        }
        let hit = events
            .iter()
            .find(|(_, e)| e.kind == EventKind::CacheHit)
            .unwrap();
        assert_eq!(hit.1.a, 7_000); // first hit credited the full cost
    }
}
