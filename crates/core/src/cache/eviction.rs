//! Eviction policies and scoring functions (paper §4.3, Table 1).
//!
//! | Policy      | Scoring function (evict argmin)            |
//! |-------------|--------------------------------------------|
//! | LRU         | `Ta(o) / θ` — normalized last access        |
//! | DAG-Height  | `1 / h(o)` — deep traces evicted first      |
//! | Cost & Size | `(r_h + r_m) · c(o) / s(o)`                 |

use crate::cache::entry::CacheEntry;
use crate::config::EvictionPolicy;

/// Normalization context for policies that mix heterogeneous signals
/// (currently only Hybrid). Computed once per eviction batch.
#[derive(Debug, Clone, Copy)]
pub struct Norms {
    pub max_access: u64,
    pub max_cost_size: f64,
}

impl Default for Norms {
    fn default() -> Self {
        Norms {
            max_access: 1,
            max_cost_size: 1.0,
        }
    }
}

impl Norms {
    /// Collects normalization bounds from a candidate set.
    pub fn collect<'a>(entries: impl Iterator<Item = &'a CacheEntry>) -> Norms {
        let mut n = Norms::default();
        for e in entries {
            n.max_access = n.max_access.max(e.last_access);
            n.max_cost_size = n.max_cost_size.max(e.cost_size_score());
        }
        n
    }
}

/// Eviction score of an entry under a policy; the entry with the **lowest**
/// score is evicted first.
pub fn score(policy: EvictionPolicy, entry: &CacheEntry, norms: &Norms) -> f64 {
    match policy {
        EvictionPolicy::Lru => entry.last_access as f64,
        EvictionPolicy::DagHeight => 1.0 / f64::from(entry.height.max(1)),
        EvictionPolicy::CostSize => entry.cost_size_score(),
        EvictionPolicy::Hybrid => {
            let recency = entry.last_access as f64 / norms.max_access.max(1) as f64;
            let utility = entry.cost_size_score() / norms.max_cost_size.max(f64::MIN_POSITIVE);
            0.5 * recency + 0.5 * utility
        }
    }
}

/// Picks the victim among `(index, entry)` candidates: minimal score, ties
/// broken by older access for determinism.
pub fn pick_victim<'a, K>(
    policy: EvictionPolicy,
    candidates: impl Iterator<Item = (K, &'a CacheEntry)>,
) -> Option<K> {
    let all: Vec<(K, &CacheEntry)> = candidates.collect();
    let norms = Norms::collect(all.iter().map(|(_, e)| *e));
    let mut best: Option<(K, f64, u64)> = None;
    for (key, entry) in all {
        let s = score(policy, entry, &norms);
        let replace = match &best {
            None => true,
            Some((_, bs, ba)) => s < *bs || (s == *bs && entry.last_access < *ba),
        };
        if replace {
            best = Some((key, s, entry.last_access));
        }
    }
    best.map(|(k, _, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::entry::EntryState;
    use lima_matrix::Value;

    fn entry(compute_ns: u64, size: usize, height: u32, last_access: u64, refs: u64) -> CacheEntry {
        CacheEntry {
            state: EntryState::Cached(Value::f64(0.0)),
            compute_ns,
            height,
            last_access,
            hits: refs,
            misses: 0,
            size,
            group: 0,
            persist_id: None,
            from_persist: false,
            credited: false,
            credited_ns: 0,
            children: Vec::new(),
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let old = entry(1, 1, 1, 5, 0);
        let new = entry(1, 1, 1, 9, 0);
        let victim = pick_victim(
            EvictionPolicy::Lru,
            vec![("old", &old), ("new", &new)].into_iter(),
        );
        assert_eq!(victim, Some("old"));
    }

    #[test]
    fn dag_height_evicts_deepest() {
        let shallow = entry(1, 1, 2, 0, 0);
        let deep = entry(1, 1, 100, 0, 0);
        let victim = pick_victim(
            EvictionPolicy::DagHeight,
            vec![("shallow", &shallow), ("deep", &deep)].into_iter(),
        );
        assert_eq!(victim, Some("deep"));
        // Height 0 does not divide by zero.
        assert!(score(
            EvictionPolicy::DagHeight,
            &entry(1, 1, 0, 0, 0),
            &Norms::default()
        )
        .is_finite());
    }

    #[test]
    fn cost_size_evicts_cheap_large_cold_entries() {
        let cheap_big = entry(1_000, 1_000_000, 1, 0, 1);
        let costly_small = entry(1_000_000, 1_000, 1, 0, 1);
        let victim = pick_victim(
            EvictionPolicy::CostSize,
            vec![("cheap_big", &cheap_big), ("costly_small", &costly_small)].into_iter(),
        );
        assert_eq!(victim, Some("cheap_big"));
    }

    #[test]
    fn ties_break_by_age() {
        let a = entry(10, 10, 1, 3, 1);
        let b = entry(10, 10, 1, 7, 1);
        let victim = pick_victim(
            EvictionPolicy::CostSize,
            vec![("a", &a), ("b", &b)].into_iter(),
        );
        assert_eq!(victim, Some("a"));
    }

    #[test]
    fn hybrid_balances_recency_and_utility() {
        // Same cost/size: the older entry is evicted. Same age: the cheaper
        // entry is evicted.
        let old = entry(1_000, 100, 1, 2, 1);
        let new = entry(1_000, 100, 1, 9, 1);
        let victim = pick_victim(
            EvictionPolicy::Hybrid,
            vec![("old", &old), ("new", &new)].into_iter(),
        );
        assert_eq!(victim, Some("old"));
        let cheap = entry(10, 100, 1, 5, 1);
        let costly = entry(1_000_000, 100, 1, 5, 1);
        let victim = pick_victim(
            EvictionPolicy::Hybrid,
            vec![("cheap", &cheap), ("costly", &costly)].into_iter(),
        );
        assert_eq!(victim, Some("cheap"));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let v: Option<&str> = pick_victim(
            EvictionPolicy::Lru,
            std::iter::empty::<(&str, &CacheEntry)>(),
        );
        assert!(v.is_none());
    }
}
