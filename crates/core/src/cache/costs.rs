//! Cost model for eviction and spilling decisions (paper §4.3, "Statistics
//! and Costs"): estimated spill/restore times derived from expected
//! read/write bandwidths, adapted to the hardware as an exponential moving
//! average of measured I/O times.

use parking_lot::Mutex;

/// Starting heuristics (bytes/second) before any measurement.
const DEFAULT_WRITE_BW: f64 = 1.0e9;
const DEFAULT_READ_BW: f64 = 2.0e9;
/// EMA smoothing factor for bandwidth adaptation.
const EMA_ALPHA: f64 = 0.3;

/// Adaptive I/O bandwidth estimator.
#[derive(Debug)]
pub struct IoCostModel {
    inner: Mutex<Bandwidths>,
}

#[derive(Debug, Clone, Copy)]
struct Bandwidths {
    write_bw: f64,
    read_bw: f64,
}

impl Default for IoCostModel {
    fn default() -> Self {
        IoCostModel {
            inner: Mutex::new(Bandwidths {
                write_bw: DEFAULT_WRITE_BW,
                read_bw: DEFAULT_READ_BW,
            }),
        }
    }
}

impl IoCostModel {
    /// Fresh model with heuristic bandwidths.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimated nanoseconds to spill `bytes` to disk.
    pub fn est_write_ns(&self, bytes: usize) -> u64 {
        let bw = self.inner.lock().write_bw;
        (bytes as f64 / bw * 1e9) as u64
    }

    /// Estimated nanoseconds to restore `bytes` from disk.
    pub fn est_read_ns(&self, bytes: usize) -> u64 {
        let bw = self.inner.lock().read_bw;
        (bytes as f64 / bw * 1e9) as u64
    }

    /// Spilling pays off when recomputation is slower than one write plus one
    /// read of the object (paper: "only spill objects whose re-computation
    /// time exceeds the estimated I/O time").
    pub fn worth_spilling(&self, bytes: usize, compute_ns: u64) -> bool {
        compute_ns > self.est_write_ns(bytes) + self.est_read_ns(bytes)
    }

    /// Folds a measured write into the bandwidth EMA.
    pub fn observe_write(&self, bytes: usize, elapsed_ns: u64) {
        if elapsed_ns == 0 || bytes == 0 {
            return;
        }
        let measured = bytes as f64 / (elapsed_ns as f64 / 1e9);
        let mut bw = self.inner.lock();
        bw.write_bw = EMA_ALPHA * measured + (1.0 - EMA_ALPHA) * bw.write_bw;
    }

    /// Folds a measured read into the bandwidth EMA.
    pub fn observe_read(&self, bytes: usize, elapsed_ns: u64) {
        if elapsed_ns == 0 || bytes == 0 {
            return;
        }
        let measured = bytes as f64 / (elapsed_ns as f64 / 1e9);
        let mut bw = self.inner.lock();
        bw.read_bw = EMA_ALPHA * measured + (1.0 - EMA_ALPHA) * bw.read_bw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_scale_linearly() {
        let m = IoCostModel::new();
        assert_eq!(m.est_write_ns(0), 0);
        let one = m.est_write_ns(1_000_000);
        let ten = m.est_write_ns(10_000_000);
        assert!((ten as f64 / one as f64 - 10.0).abs() < 0.01);
    }

    #[test]
    fn worth_spilling_compares_compute_to_io() {
        let m = IoCostModel::new();
        let bytes = 100_000_000; // ~150ms of I/O at default bandwidths
        assert!(m.worth_spilling(bytes, 10_000_000_000)); // 10s compute
        assert!(!m.worth_spilling(bytes, 1_000_000)); // 1ms compute
    }

    #[test]
    fn ema_moves_toward_measurements() {
        let m = IoCostModel::new();
        let before = m.est_write_ns(1_000_000_000);
        // Observe a very slow disk: 1 GB in 10 s => 0.1 GB/s.
        for _ in 0..20 {
            m.observe_write(1_000_000_000, 10_000_000_000);
        }
        let after = m.est_write_ns(1_000_000_000);
        assert!(
            after > before * 5,
            "estimate should grow: {before} -> {after}"
        );
        // Degenerate observations are ignored.
        m.observe_write(0, 100);
        m.observe_read(100, 0);
    }
}
