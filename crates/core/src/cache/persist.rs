//! Crash-safe, self-healing persistent reuse cache (durable lineage + values).
//!
//! The paper's lineage log is designed for serialization and full
//! reconstruction of intermediates (§3); this module makes the reuse cache
//! itself survive process death *and at-rest corruption*. A
//! [`PersistentCacheStore`] pairs a generational *manifest WAL* with a
//! directory of checksummed *value files*:
//!
//! ```text
//! <persist_dir>/manifest.<gen>.wal      append-only record log (active = highest gen)
//! <persist_dir>/manifest.<gen>.wal.tmp  in-flight compaction output (GC'd on recovery)
//! <persist_dir>/values/v<id>.val        one committed value per entry
//! <persist_dir>/values/v<id>.tmp        in-flight value write (GC'd on recovery)
//! <persist_dir>/quarantine/v<id>.val    corrupt files preserved for forensics
//! ```
//!
//! **Commit protocol** (per entry): (1) the value is written to `v<id>.tmp`
//! and fsynced, (2) the temp file is atomically renamed to `v<id>.val`,
//! (3) a `Put` record — serialized lineage via
//! [`crate::lineage::serialize::serialize_lineage`] plus metadata — is
//! appended to the active WAL and fsynced. *The WAL append is the commit
//! point*: a value file without a WAL record is an orphan and is
//! garbage-collected; a WAL record whose value file is missing or corrupt is
//! repaired from lineage or quarantined.
//!
//! **Compaction** bounds WAL growth: tombstones and superseded puts would
//! otherwise replay forever. When the WAL exceeds the live-record footprint
//! by [`PersistOptions::compact_factor`], every live entry is rewritten into
//! `manifest.<gen+1>.wal.tmp`, fsynced, and renamed to `manifest.<gen+1>.wal`
//! — *the rename is the commit point for the generation switch*. Recovery
//! always selects the highest on-disk generation and deletes lower ones, so a
//! crash on either side of the rename lands on a consistent generation
//! (old before, new after). [`FaultSite::PersistCompactWrite`] (torn
//! compaction output) and [`FaultSite::PersistCompactSwitch`] (consulted
//! before *and* after the rename) exercise every interleaving.
//!
//! **Scrubbing** ([`PersistentCacheStore::scrub_chunk`]) re-verifies value
//! checksums and WAL framing at a caller-controlled byte rate. A corrupt
//! entry is not simply dropped: its serialized lineage is the replica, so the
//! store first asks the configured [`RepairHook`] to recompute the value and
//! re-persists it atomically; only unrepairable entries are tombstoned and
//! moved to `quarantine/`. A damaged WAL is repaired wholesale by compacting
//! the in-memory live set into a fresh generation.
//!
//! **Recovery** scans the active WAL front to back, truncates a torn tail at
//! the last valid record, replays tombstones, validates every surviving
//! value file (FNV-1a-64 checksum), repairs or quarantines failures,
//! garbage-collects orphans / stale compaction temps / aged quarantine
//! files, and returns the consistent subset of entries. Dropped entries are
//! tombstoned so the next recovery does not re-attempt them. An unusable
//! directory degrades to an empty store — recovery never errors.
//!
//! **Write-failure posture**: after a failed fsync the kernel may have
//! dropped dirty pages, so the durability of *everything previously written*
//! is unknown — the store does not retry on the same file handle. Any fsync
//! failure or `ENOSPC` latches the store into a degraded, memory-only
//! posture ([`PersistentCacheStore::degrade_reason`]); the data already on
//! disk is revalidated by the next recovery. [`FaultSite::DiskFull`] and
//! [`FaultSite::FsyncFail`] inject both paths.
//!
//! **Crash points** ([`crate::faults::PERSIST_CRASH_POINTS`]) simulate
//! process death at every step of the commit protocols. Once a crash point
//! fires the store refuses all further writes, so the on-disk state observed
//! by the next recovery is exactly the state at the moment of the simulated
//! crash.

use crate::faults::{FaultInjector, FaultSite};
use crate::lineage::item::LinRef;
use crate::lineage::serialize::{deserialize_lineage, serialize_lineage};
use crate::resilience::{RetryBudget, RetryPolicy};
use bytes::{Buf, BufMut, BytesMut};
use lima_matrix::{DenseMatrix, ScalarValue, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Value-file magic: "LIMV".
const VALUE_MAGIC: u32 = 0x4C49_4D56;
const VALUE_VERSION: u32 = 1;
/// WAL record kinds.
const REC_PUT: u8 = 1;
const REC_TOMBSTONE: u8 = 2;
/// Upper bound on a single WAL record payload; anything larger is treated as
/// a torn/garbage tail during recovery.
const MAX_RECORD_BYTES: usize = 256 * 1024 * 1024;
/// Framing overhead of a put record beyond the lineage text: u32 length
/// prefix + (kind u8, id u64, compute_ns u64, value_bytes u64, lin_len u32)
/// + u64 checksum trailer.
const PUT_RECORD_OVERHEAD: u64 = 4 + 29 + 8;

/// FNV-1a 64-bit hash (same construction as the spill format).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Path of generation `generation`'s manifest under `dir`.
fn manifest_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("manifest.{generation}.wal"))
}

/// Recomputes a corrupt or missing persisted value from its serialized
/// lineage — the LIMA take on replication: the lineage log *is* the replica.
///
/// The hook receives the deserialized lineage root and returns the
/// recomputed value, or a human-readable reason why the lineage cannot be
/// replayed (unregistered data sources, multi-level items, placeholders).
#[derive(Clone)]
pub struct RepairHook(Arc<RepairFn>);

/// Boxed signature of a repair function (see [`RepairHook::new`]).
type RepairFn = dyn Fn(&LinRef) -> Result<Value, String> + Send + Sync;

impl RepairHook {
    /// Wraps a repair function.
    pub fn new(f: impl Fn(&LinRef) -> Result<Value, String> + Send + Sync + 'static) -> Self {
        RepairHook(Arc::new(f))
    }

    /// Attempts to recompute the value for `root`.
    pub fn repair(&self, root: &LinRef) -> Result<Value, String> {
        (self.0)(root)
    }
}

impl std::fmt::Debug for RepairHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RepairHook(..)")
    }
}

/// Why a store latched into memory-only degraded mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// A write returned `ENOSPC`; the disk (or quota) is full.
    DiskFull,
    /// An fsync failed; durability of previously written pages is unknown.
    FsyncFailed,
}

impl DegradeReason {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::DiskFull => "disk-full",
            DegradeReason::FsyncFailed => "fsync-failed",
        }
    }
}

/// Tuning knobs for [`PersistentCacheStore::open_with`].
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Disk budget for value files; 0 = unbounded.
    pub budget_bytes: u64,
    /// WAL size below which auto-compaction never triggers.
    pub compact_min_bytes: u64,
    /// Auto-compact when the WAL exceeds the live-record footprint by this
    /// factor; 0 disables auto-compaction (explicit `compact()` still works).
    pub compact_factor: u64,
    /// Quarantined files older than this are GC'd at recovery; 0 keeps them
    /// forever.
    pub quarantine_max_age_secs: u64,
    /// Recomputes corrupt values from lineage; `None` disables repair
    /// (corrupt entries are quarantined directly).
    pub repair: Option<RepairHook>,
    /// Per-attempt retry schedule for one repair.
    pub repair_retry: RetryPolicy,
    /// Global repair token budget (see [`RetryBudget`]); bounds how much
    /// recompute work a flaky disk can trigger.
    pub repair_budget: u64,
    /// Fault injector for crash-point and write-failure testing.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            budget_bytes: 0,
            compact_min_bytes: 64 * 1024,
            compact_factor: 4,
            quarantine_max_age_secs: 86_400,
            repair: None,
            repair_retry: RetryPolicy::new(2, 1, 0),
            repair_budget: 64,
            faults: None,
        }
    }
}

/// One entry recovered from disk on startup.
pub struct RecoveredEntry {
    /// Deserialized lineage root (the cache key).
    pub root: LinRef,
    /// Validated value.
    pub value: Value,
    /// Measured computation time persisted with the entry.
    pub compute_ns: u64,
    /// Manifest ID of the entry (stable across restarts).
    pub persist_id: u64,
}

/// What startup recovery found and repaired.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entries whose lineage parsed and whose value file verified (or was
    /// repaired from lineage).
    pub recovered: u64,
    /// Committed entries dropped (missing/corrupt value file that could not
    /// be repaired, or unparseable lineage).
    pub dropped: u64,
    /// Entries whose value file was recomputed from lineage and re-persisted.
    pub repaired: u64,
    /// Entries a repair hook was asked to rebuild but could not.
    pub repair_failures: u64,
    /// Corrupt files moved to `quarantine/` instead of being served.
    pub quarantined: u64,
    /// Aged quarantine files garbage-collected.
    pub quarantine_gcd: u64,
    /// Whether a torn WAL tail was truncated at the last valid record.
    pub torn_tail_truncated: bool,
    /// Orphaned value/temp files garbage-collected.
    pub orphans_gcd: u64,
    /// In-flight compaction temps (`manifest.*.wal.tmp`) garbage-collected.
    pub stale_tmp_gcd: u64,
    /// Superseded manifest generations removed.
    pub stale_generations_removed: u64,
    /// The active manifest generation after recovery.
    pub generation: u64,
}

/// Outcome of a successful [`PersistentCacheStore::persist`] call.
#[derive(Debug, Clone, Copy)]
pub struct PersistOutcome {
    /// Manifest ID assigned to the entry.
    pub id: u64,
    /// Bytes written to the value file.
    pub bytes: u64,
    /// Entries tombstoned to keep the store inside its disk budget.
    pub evicted: u64,
}

/// Outcome of a WAL compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactOutcome {
    /// The new active generation.
    pub generation: u64,
    /// WAL size before the rewrite.
    pub wal_bytes_before: u64,
    /// WAL size after the rewrite (live records only).
    pub wal_bytes_after: u64,
    /// Live entries carried into the new generation.
    pub live_entries: u64,
}

/// Outcome of one [`PersistentCacheStore::scrub_chunk`] call.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Bytes of value files (and, on wrap, WAL) re-verified.
    pub bytes: u64,
    /// Value files re-verified.
    pub entries: u64,
    /// Corruptions detected (value files + WAL).
    pub corrupt: u64,
    /// Corruptions healed (lineage recompute or WAL compaction).
    pub repaired: u64,
    /// Corrupt entries a repair hook failed to rebuild.
    pub repair_failures: u64,
    /// Entries tombstoned and moved to `quarantine/`.
    pub quarantined: u64,
    /// Manifest IDs of quarantined entries (callers un-map their cache
    /// entries so the values can be re-persisted after recompute).
    pub quarantined_ids: Vec<u64>,
    /// Whether a damaged WAL was rebuilt via compaction.
    pub wal_repaired: bool,
    /// Whether this chunk finished a full pass (cursor wrapped to start).
    pub wrapped: bool,
}

/// One live entry's in-memory bookkeeping. Keeping the serialized lineage
/// resident lets compaction rewrite the WAL without re-reading it and lets
/// scrubbing repair entries without trusting on-disk metadata.
struct LiveRec {
    value_bytes: u64,
    compute_ns: u64,
    lineage: Arc<str>,
}

struct StoreState {
    wal: fs::File,
    /// Active manifest generation (`manifest.<gen>.wal`).
    generation: u64,
    /// Bytes appended to the active WAL so far.
    wal_bytes: u64,
    /// Live entries: manifest ID → record (insertion order = ID order, which
    /// is the FIFO used by disk-budget eviction).
    live: BTreeMap<u64, LiveRec>,
    /// Sum of framed put-record sizes for live entries — the WAL size a
    /// compaction would produce.
    live_record_bytes: u64,
    total_bytes: u64,
    /// Next manifest ID the scrubber will examine.
    scrub_cursor: u64,
}

/// Durable store for reuse-cache entries. All writes go through the commit
/// protocols described in the module docs; all methods are thread-safe.
pub struct PersistentCacheStore {
    root: PathBuf,
    values_dir: PathBuf,
    quarantine_dir: PathBuf,
    state: Mutex<StoreState>,
    next_id: AtomicU64,
    opts: PersistOptions,
    /// Token budget shared by all repair attempts (recovery + scrub).
    repair_budget: RetryBudget,
    /// Set when a crash point fires: the simulated process is dead and no
    /// further bytes may reach disk.
    crashed: AtomicBool,
    /// Set when a write failure makes on-disk durability unknown; the store
    /// refuses further writes but the process keeps serving from memory.
    degraded: Mutex<Option<DegradeReason>>,
    /// Lifetime compactions (drained by the cache layer into stats).
    compactions: AtomicU64,
    /// Lifetime WAL bytes reclaimed by compaction.
    compact_reclaimed: AtomicU64,
}

impl std::fmt::Debug for PersistentCacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "PersistentCacheStore {{ gen: {}, entries: {}, bytes: {}, wal_bytes: {} }}",
            st.generation,
            st.live.len(),
            st.total_bytes,
            st.wal_bytes
        )
    }
}

impl PersistentCacheStore {
    /// Opens (or creates) the store rooted at `dir` with default options;
    /// see [`PersistentCacheStore::open_with`].
    pub fn open(
        dir: &Path,
        budget_bytes: u64,
        faults: Option<Arc<FaultInjector>>,
    ) -> Option<(Self, Vec<RecoveredEntry>, RecoveryReport)> {
        Self::open_with(
            dir,
            PersistOptions {
                budget_bytes,
                faults,
                ..PersistOptions::default()
            },
        )
    }

    /// Opens (or creates) the store rooted at `dir`, running the recovery
    /// pass. Returns `None` when the directory is unusable — the caller
    /// degrades to a memory-only cache, never an error.
    pub fn open_with(
        dir: &Path,
        opts: PersistOptions,
    ) -> Option<(Self, Vec<RecoveredEntry>, RecoveryReport)> {
        let values_dir = dir.join("values");
        let quarantine_dir = dir.join("quarantine");
        fs::create_dir_all(&values_dir).ok()?;
        fs::create_dir_all(&quarantine_dir).ok()?;
        let mut report = RecoveryReport::default();

        // Generation discovery. In-flight compaction temps were never
        // committed (single-writer store), so they are always safe to
        // delete; of the committed generations only the highest is live —
        // the rename that created it was the commit point, and anything
        // lower (including a pre-generational `manifest.wal`) is a
        // superseded snapshot whose entries the new generation carries.
        let mut gens: Vec<u64> = Vec::new();
        let mut legacy = false;
        if let Ok(entries) = fs::read_dir(dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                if name == "manifest.wal" {
                    legacy = true;
                    continue;
                }
                if name.starts_with("manifest.") && name.ends_with(".wal.tmp") {
                    if fs::remove_file(e.path()).is_ok() {
                        report.stale_tmp_gcd += 1;
                    }
                    continue;
                }
                if let Some(g) = name
                    .strip_prefix("manifest.")
                    .and_then(|s| s.strip_suffix(".wal"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        let generation = match gens.split_last() {
            Some((&active, stale)) => {
                for &g in stale {
                    if fs::remove_file(manifest_path(dir, g)).is_ok() {
                        report.stale_generations_removed += 1;
                    }
                }
                if legacy && fs::remove_file(dir.join("manifest.wal")).is_ok() {
                    report.stale_generations_removed += 1;
                }
                active
            }
            None => {
                if legacy {
                    // Migrate a pre-generational store in place.
                    fs::rename(dir.join("manifest.wal"), manifest_path(dir, 0)).ok()?;
                }
                0
            }
        };
        report.generation = generation;
        let manifest = manifest_path(dir, generation);
        let (puts, torn_offset, max_id) = scan_manifest(&manifest);

        // Truncate the torn tail so no partially written record is ever
        // visible to a later scan (or appended over mid-record).
        if let Some(off) = torn_offset {
            report.torn_tail_truncated = true;
            let f = fs::OpenOptions::new().write(true).open(&manifest).ok()?;
            f.set_len(off).ok()?;
            let _ = f.sync_all();
        }

        // Validate surviving entries: lineage must parse, the parsed DAG must
        // satisfy the lineage invariants, and the value file must verify. A
        // value that fails verification is not lost — its lineage is the
        // replica, and the repair hook recomputes it; only unrepairable
        // entries are quarantined and tombstoned.
        let repair_budget = RetryBudget::new(opts.repair_budget);
        let mut recovered = Vec::new();
        let mut live: BTreeMap<u64, LiveRec> = BTreeMap::new();
        let mut total_bytes = 0u64;
        let mut live_record_bytes = 0u64;
        let mut drop_ids: Vec<u64> = Vec::new();
        for (id, rec) in puts {
            let path = values_dir.join(format!("v{id}.val"));
            let root = match deserialize_lineage(&rec.lineage) {
                Ok(r) => r,
                Err(_) => {
                    report.dropped += 1;
                    if quarantine_file(&quarantine_dir, &path).is_some() {
                        report.quarantined += 1;
                    }
                    drop_ids.push(id);
                    continue;
                }
            };
            // A structurally invalid DAG would poison cache probes (its hash
            // can collide with a legitimate trace without ever comparing
            // equal); drop the entry rather than repopulate from it. Scope is
            // per entry: distinct programs sharing a store may reuse block
            // keys, which must not read as cross-entry patch conflicts.
            if crate::lineage::verify::verify_dag(&root).is_err() {
                report.dropped += 1;
                if quarantine_file(&quarantine_dir, &path).is_some() {
                    report.quarantined += 1;
                }
                drop_ids.push(id);
                continue;
            }
            let (value, value_bytes) = match read_value_file(&path) {
                Ok(v) => (v, rec.value_bytes),
                Err(_) => match attempt_repair(&opts, &repair_budget, &root, &path) {
                    Some((v, nb)) => {
                        report.repaired += 1;
                        (v, nb)
                    }
                    None => {
                        report.dropped += 1;
                        if opts.repair.is_some() {
                            report.repair_failures += 1;
                        }
                        if quarantine_file(&quarantine_dir, &path).is_some() {
                            report.quarantined += 1;
                        }
                        drop_ids.push(id);
                        continue;
                    }
                },
            };
            live_record_bytes += rec_len(&rec.lineage);
            total_bytes += value_bytes;
            live.insert(
                id,
                LiveRec {
                    value_bytes,
                    compute_ns: rec.compute_ns,
                    lineage: rec.lineage.into(),
                },
            );
            recovered.push(RecoveredEntry {
                root,
                value,
                compute_ns: rec.compute_ns,
                persist_id: id,
            });
        }
        report.recovered = recovered.len() as u64;

        // Garbage-collect orphans: temp files and value files with no
        // committed manifest record.
        if let Ok(entries) = fs::read_dir(&values_dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                let committed = name
                    .strip_prefix('v')
                    .and_then(|s| s.strip_suffix(".val"))
                    .and_then(|s| s.parse::<u64>().ok())
                    .is_some_and(|id| live.contains_key(&id));
                if !committed && fs::remove_file(e.path()).is_ok() {
                    report.orphans_gcd += 1;
                }
            }
        }

        // Age out quarantined files so a crash loop cannot leak disk.
        if opts.quarantine_max_age_secs > 0 {
            let cutoff = std::time::SystemTime::now()
                .checked_sub(Duration::from_secs(opts.quarantine_max_age_secs));
            if let (Some(cutoff), Ok(entries)) = (cutoff, fs::read_dir(&quarantine_dir)) {
                for e in entries.flatten() {
                    let aged = e
                        .metadata()
                        .and_then(|m| m.modified())
                        .map(|t| t <= cutoff)
                        .unwrap_or(false);
                    if aged && fs::remove_file(e.path()).is_ok() {
                        report.quarantine_gcd += 1;
                    }
                }
            }
        }

        let mut wal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest)
            .ok()?;
        // Tombstone dropped entries so the next recovery does not re-scan,
        // re-repair, or re-quarantine them.
        for id in drop_ids {
            let mut payload = BytesMut::new();
            payload.put_u8(REC_TOMBSTONE);
            payload.put_u64(id);
            let _ = wal.write_all(&frame_record(&payload));
        }
        let _ = wal.sync_data();
        let wal_bytes = fs::metadata(&manifest).map(|m| m.len()).unwrap_or(0);

        Some((
            PersistentCacheStore {
                root: dir.to_path_buf(),
                values_dir,
                quarantine_dir,
                state: Mutex::new(StoreState {
                    wal,
                    generation,
                    wal_bytes,
                    live,
                    live_record_bytes,
                    total_bytes,
                    scrub_cursor: 0,
                }),
                next_id: AtomicU64::new(max_id + 1),
                opts,
                repair_budget,
                crashed: AtomicBool::new(false),
                degraded: Mutex::new(None),
                compactions: AtomicU64::new(0),
                compact_reclaimed: AtomicU64::new(0),
            },
            recovered,
            report,
        ))
    }

    /// True once a crash point has fired; every later write is refused.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Why the store degraded to memory-only, if it has.
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        *self.degraded.lock()
    }

    /// True while the store accepts writes (neither crashed nor degraded).
    pub fn usable(&self) -> bool {
        !self.crashed() && self.degraded.lock().is_none()
    }

    /// Number of live (committed, not tombstoned) entries.
    pub fn live_entries(&self) -> usize {
        self.state.lock().live.len()
    }

    /// Bytes of committed value files.
    pub fn persisted_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    /// Bytes appended to the active WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.state.lock().wal_bytes
    }

    /// The active manifest generation.
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Drains the (compactions, reclaimed bytes) counters accumulated since
    /// the last call; the cache layer translates them into stats.
    pub fn take_compaction_counters(&self) -> (u64, u64) {
        (
            self.compactions.swap(0, Ordering::Relaxed),
            self.compact_reclaimed.swap(0, Ordering::Relaxed),
        )
    }

    fn value_path(&self, id: u64) -> PathBuf {
        self.values_dir.join(format!("v{id}.val"))
    }

    fn crash_here(&self, site: FaultSite) -> std::io::Result<()> {
        if let Some(f) = &self.opts.faults {
            if f.should_fail(site) {
                self.crashed.store(true, Ordering::Relaxed);
                return Err(std::io::Error::other(format!("injected crash: {site:?}")));
            }
        }
        Ok(())
    }

    fn dead(&self) -> std::io::Result<()> {
        if self.crashed() {
            return Err(std::io::Error::other("store crashed"));
        }
        if let Some(r) = *self.degraded.lock() {
            return Err(std::io::Error::other(format!(
                "store degraded: {}",
                r.as_str()
            )));
        }
        Ok(())
    }

    /// Latches the store into degraded, memory-only mode (first reason wins).
    fn poison(&self, reason: DegradeReason) {
        let mut g = self.degraded.lock();
        if g.is_none() {
            *g = Some(reason);
        }
    }

    /// Writes through the disk-full fault site; a real or injected `ENOSPC`
    /// degrades the store.
    fn guarded_write(&self, f: &mut fs::File, buf: &[u8]) -> std::io::Result<()> {
        if let Some(fi) = &self.opts.faults {
            if fi.should_fail(FaultSite::DiskFull) {
                self.poison(DegradeReason::DiskFull);
                return Err(std::io::Error::from_raw_os_error(28));
            }
        }
        f.write_all(buf).inspect_err(|e| {
            if e.raw_os_error() == Some(28) {
                self.poison(DegradeReason::DiskFull);
            }
        })
    }

    /// Syncs through the fsync-failure fault site. After *any* fsync failure
    /// the durability of previously written pages is unknown (the kernel may
    /// have dropped them), so the store degrades rather than retrying.
    fn guarded_sync(&self, f: &fs::File, all: bool) -> std::io::Result<()> {
        if let Some(fi) = &self.opts.faults {
            if fi.should_fail(FaultSite::FsyncFail) {
                self.poison(DegradeReason::FsyncFailed);
                return Err(std::io::Error::other("injected fsync failure"));
            }
        }
        let res = if all { f.sync_all() } else { f.sync_data() };
        res.inspect_err(|_| self.poison(DegradeReason::FsyncFailed))
    }

    /// Durably persists one cache entry. Returns `Ok(None)` for values the
    /// store does not persist (lists). Errors leave the on-disk state
    /// recoverable: at worst an orphan value/temp file or a torn WAL tail,
    /// both repaired by the next recovery pass.
    pub fn persist(
        &self,
        root: &LinRef,
        value: &Value,
        compute_ns: u64,
    ) -> std::io::Result<Option<PersistOutcome>> {
        self.dead()?;
        let Some(encoded) = encode_value(value) else {
            return Ok(None);
        };
        let lineage = serialize_lineage(root);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();

        // Step 1: value file to <id>.tmp, fsynced.
        let tmp = self.values_dir.join(format!("v{id}.tmp"));
        let fin = self.value_path(id);
        let mut f = fs::File::create(&tmp)?;
        self.guarded_write(&mut f, &encoded)?;
        self.guarded_sync(&f, true)?;
        drop(f);

        // Crash point: process dies before the rename — only the temp file
        // exists; recovery GCs it.
        self.crash_here(FaultSite::PersistRename)?;

        // Step 2: atomic rename to the committed name.
        fs::rename(&tmp, &fin)?;

        // Crash point: value committed, manifest record never written — the
        // value file is an orphan; recovery GCs it.
        self.crash_here(FaultSite::PersistCommit)?;

        // Step 3: manifest append (the commit point).
        let record = put_record(id, compute_ns, encoded.len() as u64, &lineage);

        // Crash point: process dies mid-append — a prefix of the record
        // reaches disk; recovery truncates the torn tail.
        if let Some(fi) = &self.opts.faults {
            if fi.should_fail(FaultSite::PersistWalAppend) {
                self.crashed.store(true, Ordering::Relaxed);
                let torn = &record[..record.len() / 2];
                let _ = st.wal.write_all(torn);
                let _ = st.wal.sync_data();
                return Err(std::io::Error::other("injected crash: PersistWalAppend"));
            }
        }
        self.guarded_write(&mut st.wal, &record)?;
        self.guarded_sync(&st.wal, false)?;
        st.wal_bytes += record.len() as u64;
        st.live_record_bytes += record.len() as u64;

        st.live.insert(
            id,
            LiveRec {
                value_bytes: encoded.len() as u64,
                compute_ns,
                lineage: lineage.into(),
            },
        );
        st.total_bytes += encoded.len() as u64;

        // Disk budget: tombstone the oldest entries (FIFO by manifest ID)
        // until the new entry fits.
        let mut evicted = 0u64;
        if self.opts.budget_bytes > 0 {
            while st.total_bytes > self.opts.budget_bytes && st.live.len() > 1 {
                let (old, bytes, lin) = {
                    let Some((&old, rec)) = st.live.iter().next() else {
                        break;
                    };
                    (old, rec.value_bytes, Arc::clone(&rec.lineage))
                };
                if old == id {
                    break;
                }
                self.append_tombstone(&mut st, old)?;
                st.live.remove(&old);
                st.total_bytes -= bytes;
                st.live_record_bytes = st.live_record_bytes.saturating_sub(rec_len(&lin));
                let _ = fs::remove_file(self.value_path(old));
                evicted += 1;
            }
        }

        self.maybe_compact(&mut st)?;

        Ok(Some(PersistOutcome {
            id,
            bytes: encoded.len() as u64,
            evicted,
        }))
    }

    /// Appends an eviction tombstone for `id` and deletes its value file.
    /// Unknown/already-tombstoned IDs are a no-op.
    pub fn tombstone(&self, id: u64) -> std::io::Result<bool> {
        self.dead()?;
        let mut st = self.state.lock();
        let Some(rec) = st.live.remove(&id) else {
            return Ok(false);
        };
        st.total_bytes -= rec.value_bytes;
        st.live_record_bytes = st.live_record_bytes.saturating_sub(rec_len(&rec.lineage));
        self.append_tombstone(&mut st, id)?;
        let _ = fs::remove_file(self.value_path(id));
        self.maybe_compact(&mut st)?;
        Ok(true)
    }

    fn append_tombstone(&self, st: &mut StoreState, id: u64) -> std::io::Result<()> {
        let mut payload = BytesMut::new();
        payload.put_u8(REC_TOMBSTONE);
        payload.put_u64(id);
        let record = frame_record(&payload);
        self.guarded_write(&mut st.wal, &record)?;
        self.guarded_sync(&st.wal, false)?;
        st.wal_bytes += record.len() as u64;
        Ok(())
    }

    /// Rewrites the live set into a fresh WAL generation, reclaiming
    /// tombstone and superseded-put space. The generation-file rename is the
    /// commit point; recovery from a crash on either side of it lands on a
    /// consistent generation.
    pub fn compact(&self) -> std::io::Result<CompactOutcome> {
        self.dead()?;
        let mut st = self.state.lock();
        self.compact_locked(&mut st)
    }

    /// Auto-compaction trigger: the WAL is past the floor and exceeds the
    /// live-record footprint by the configured factor.
    fn maybe_compact(&self, st: &mut StoreState) -> std::io::Result<()> {
        if self.opts.compact_factor == 0
            || st.wal_bytes < self.opts.compact_min_bytes
            || st.wal_bytes
                <= st
                    .live_record_bytes
                    .saturating_mul(self.opts.compact_factor)
        {
            return Ok(());
        }
        self.compact_locked(st).map(|_| ())
    }

    fn compact_locked(&self, st: &mut StoreState) -> std::io::Result<CompactOutcome> {
        let before = st.wal_bytes;
        let new_gen = st.generation + 1;
        let tmp = self.root.join(format!("manifest.{new_gen}.wal.tmp"));
        let fin = manifest_path(&self.root, new_gen);
        let mut buf = Vec::with_capacity(st.live_record_bytes as usize);
        for (id, rec) in &st.live {
            buf.extend_from_slice(&put_record(
                *id,
                rec.compute_ns,
                rec.value_bytes,
                &rec.lineage,
            ));
        }

        // Crash point: process dies mid-write of the compacted generation —
        // a torn `manifest.<gen>.wal.tmp` is left behind; recovery GCs it and
        // keeps serving the old generation.
        if let Some(fi) = &self.opts.faults {
            if fi.should_fail(FaultSite::PersistCompactWrite) {
                self.crashed.store(true, Ordering::Relaxed);
                let _ = fs::write(&tmp, &buf[..buf.len() / 2]);
                return Err(std::io::Error::other("injected crash: PersistCompactWrite"));
            }
        }
        let mut f = fs::File::create(&tmp)?;
        self.guarded_write(&mut f, &buf)?;
        self.guarded_sync(&f, true)?;
        drop(f);

        // Crash point (pre-rename): the compacted generation is complete but
        // uncommitted; recovery GCs the tmp and keeps the old generation.
        self.crash_here(FaultSite::PersistCompactSwitch)?;

        // The commit point: after this rename the new generation wins.
        fs::rename(&tmp, &fin)?;

        // Crash point (post-rename): both generations exist; recovery picks
        // the higher one and removes the stale file.
        self.crash_here(FaultSite::PersistCompactSwitch)?;

        let _ = fs::remove_file(manifest_path(&self.root, st.generation));
        st.wal = fs::OpenOptions::new().append(true).open(&fin)?;
        st.generation = new_gen;
        st.wal_bytes = buf.len() as u64;
        st.live_record_bytes = buf.len() as u64;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compact_reclaimed
            .fetch_add(before.saturating_sub(buf.len() as u64), Ordering::Relaxed);
        Ok(CompactOutcome {
            generation: new_gen,
            wal_bytes_before: before,
            wal_bytes_after: buf.len() as u64,
            live_entries: st.live.len() as u64,
        })
    }

    /// Re-verifies up to `max_bytes` of value files (0 = unbounded), picking
    /// up where the previous chunk left off; when the value pass completes,
    /// also re-verifies the WAL's own framing and wraps the cursor. Corrupt
    /// values are repaired from lineage where possible, otherwise
    /// quarantined and tombstoned; a damaged WAL is rebuilt by compaction.
    pub fn scrub_chunk(&self, max_bytes: u64) -> std::io::Result<ScrubOutcome> {
        self.dead()?;
        let mut st = self.state.lock();
        let mut out = ScrubOutcome::default();
        let ids: Vec<u64> = st
            .live
            .range(st.scrub_cursor..)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            if max_bytes > 0 && out.bytes >= max_bytes {
                st.scrub_cursor = id;
                return Ok(out);
            }
            let Some(rec) = st.live.get(&id) else {
                continue;
            };
            let (vb, lineage) = (rec.value_bytes, Arc::clone(&rec.lineage));
            let path = self.value_path(id);
            out.entries += 1;
            out.bytes += vb;
            if read_value_file(&path).is_ok() {
                continue;
            }
            out.corrupt += 1;
            // The lineage is the replica: recompute and rewrite in place.
            if let Some(nb) = self.repair_in_place(&lineage, &path) {
                out.repaired += 1;
                if nb != vb {
                    if let Some(r) = st.live.get_mut(&id) {
                        r.value_bytes = nb;
                    }
                    st.total_bytes = st.total_bytes.saturating_sub(vb) + nb;
                }
                continue;
            }
            if self.opts.repair.is_some() {
                out.repair_failures += 1;
            }
            self.quarantine_locked(&mut st, id)?;
            out.quarantined += 1;
            out.quarantined_ids.push(id);
        }

        // Value pass complete: verify the WAL's own framing. Any bad frame
        // in a healthy running store is at-rest damage (torn tails are
        // truncated at open, and appends are whole frames); every live
        // record is resident, so compacting into a fresh generation is a
        // full repair.
        let raw = fs::read(manifest_path(&self.root, st.generation)).unwrap_or_default();
        out.bytes += raw.len() as u64;
        if !wal_is_clean(&raw) {
            out.corrupt += 1;
            self.compact_locked(&mut st)?;
            out.wal_repaired = true;
            out.repaired += 1;
        }
        st.scrub_cursor = 0;
        out.wrapped = true;
        Ok(out)
    }

    /// Recomputes the value for `lineage` via the repair hook and atomically
    /// rewrites `path`. Returns the encoded size on success.
    fn repair_in_place(&self, lineage: &str, path: &Path) -> Option<u64> {
        let root = deserialize_lineage(lineage).ok()?;
        attempt_repair(&self.opts, &self.repair_budget, &root, path).map(|(_, nb)| nb)
    }

    /// Moves `id`'s value file to `quarantine/`, tombstones it, and drops it
    /// from the live set.
    fn quarantine_locked(&self, st: &mut StoreState, id: u64) -> std::io::Result<()> {
        let _ = quarantine_file(&self.quarantine_dir, &self.value_path(id));
        if let Some(rec) = st.live.remove(&id) {
            st.total_bytes = st.total_bytes.saturating_sub(rec.value_bytes);
            st.live_record_bytes = st.live_record_bytes.saturating_sub(rec_len(&rec.lineage));
            self.append_tombstone(st, id)?;
        }
        Ok(())
    }
}

/// Runs the repair hook (bounded by the retry policy and global budget) and
/// atomically rewrites the value file. Returns the value and encoded size.
fn attempt_repair(
    opts: &PersistOptions,
    budget: &RetryBudget,
    root: &LinRef,
    path: &Path,
) -> Option<(Value, u64)> {
    let hook = opts.repair.as_ref()?;
    let (res, _retries) =
        opts.repair_retry
            .run_budgeted(Some(budget), |_e: &String| true, || hook.repair(root));
    let value = res.ok()?;
    let encoded = encode_value(&value)?;
    write_value_atomic(path, &encoded).ok()?;
    Some((value, encoded.len() as u64))
}

/// Writes `encoded` to `path` via tmp + fsync + rename.
fn write_value_atomic(path: &Path, encoded: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(encoded)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)
}

/// Moves a file into the quarantine directory, preserving its name. Returns
/// `None` when there was nothing to move (or the file had to be deleted
/// because the move failed).
fn quarantine_file(quarantine_dir: &Path, path: &Path) -> Option<()> {
    if !path.exists() {
        return None;
    }
    let name = path.file_name()?;
    let dest = quarantine_dir.join(name);
    if fs::rename(path, &dest).is_err() {
        // Cross-device or permission trouble: delete rather than serve.
        let _ = fs::remove_file(path);
        return None;
    }
    Some(())
}

/// Frames a payload as `len ∥ payload ∥ fnv1a(payload)`.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut rec = BytesMut::with_capacity(payload.len() + 12);
    rec.put_u32(payload.len() as u32);
    rec.put_slice(payload);
    rec.put_u64(fnv1a(payload));
    rec.to_vec()
}

/// Builds a framed `Put` record.
fn put_record(id: u64, compute_ns: u64, value_bytes: u64, lineage: &str) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.put_u8(REC_PUT);
    payload.put_u64(id);
    payload.put_u64(compute_ns);
    payload.put_u64(value_bytes);
    payload.put_u32(lineage.len() as u32);
    payload.put_slice(lineage.as_bytes());
    frame_record(&payload)
}

/// Size a framed `Put` record for `lineage` occupies in the WAL.
fn rec_len(lineage: &str) -> u64 {
    PUT_RECORD_OVERHEAD + lineage.len() as u64
}

struct PutRec {
    compute_ns: u64,
    value_bytes: u64,
    lineage: String,
}

/// Scans the manifest, returning surviving puts (tombstones applied), the
/// byte offset of a torn tail (if any), and the highest manifest ID seen.
fn scan_manifest(path: &Path) -> (BTreeMap<u64, PutRec>, Option<u64>, u64) {
    let mut puts: BTreeMap<u64, PutRec> = BTreeMap::new();
    let mut max_id = 0u64;
    let raw = match fs::read(path) {
        Ok(r) => r,
        Err(_) => return (puts, None, 0),
    };
    let mut off = 0usize;
    let torn = loop {
        if off == raw.len() {
            break None; // clean end
        }
        let rest = &raw[off..];
        if rest.len() < 4 {
            break Some(off as u64);
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD_BYTES || rest.len() < 4 + len + 8 {
            break Some(off as u64);
        }
        let payload = &rest[4..4 + len];
        let mut trailer = &rest[4 + len..4 + len + 8];
        if fnv1a(payload) != trailer.get_u64() {
            break Some(off as u64);
        }
        match parse_payload(payload) {
            Some(Record::Put { id, rec }) => {
                max_id = max_id.max(id);
                puts.insert(id, rec);
            }
            Some(Record::Tombstone { id }) => {
                max_id = max_id.max(id);
                puts.remove(&id);
            }
            // Checksummed but semantically malformed (unknown kind, bad
            // lengths): written by a future/corrupted writer — stop here.
            None => break Some(off as u64),
        }
        off += 4 + len + 8;
    };
    (puts, torn, max_id)
}

/// Structural walk of a WAL image: true when every frame checksums and
/// parses and the file ends exactly on a frame boundary.
fn wal_is_clean(raw: &[u8]) -> bool {
    let mut off = 0usize;
    while off < raw.len() {
        let rest = &raw[off..];
        if rest.len() < 4 {
            return false;
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD_BYTES || rest.len() < 4 + len + 8 {
            return false;
        }
        let payload = &rest[4..4 + len];
        let mut trailer = &rest[4 + len..4 + len + 8];
        if fnv1a(payload) != trailer.get_u64() || parse_payload(payload).is_none() {
            return false;
        }
        off += 4 + len + 8;
    }
    true
}

enum Record {
    Put { id: u64, rec: PutRec },
    Tombstone { id: u64 },
}

fn parse_payload(mut p: &[u8]) -> Option<Record> {
    if p.remaining() < 9 {
        return None;
    }
    let kind = p.get_u8();
    let id = p.get_u64();
    match kind {
        REC_PUT => {
            if p.remaining() < 20 {
                return None;
            }
            let compute_ns = p.get_u64();
            let value_bytes = p.get_u64();
            let lin_len = p.get_u32() as usize;
            if p.remaining() != lin_len {
                return None;
            }
            let lineage = String::from_utf8(p.to_vec()).ok()?;
            Some(Record::Put {
                id,
                rec: PutRec {
                    compute_ns,
                    value_bytes,
                    lineage,
                },
            })
        }
        REC_TOMBSTONE => {
            if p.remaining() != 0 {
                return None;
            }
            Some(Record::Tombstone { id })
        }
        _ => None,
    }
}

/// Serializes a value into the checksummed value-file format. Lists are not
/// persisted (`None`).
fn encode_value(value: &Value) -> Option<Vec<u8>> {
    let mut buf = BytesMut::new();
    buf.put_u32(VALUE_MAGIC);
    buf.put_u32(VALUE_VERSION);
    match value {
        Value::Matrix(m) => {
            buf.put_u8(0);
            buf.put_u64(m.rows() as u64);
            buf.put_u64(m.cols() as u64);
            for &v in m.data() {
                buf.put_f64(v);
            }
        }
        Value::Scalar(s) => {
            buf.put_u8(1);
            let lit = s.lineage_literal();
            buf.put_u32(lit.len() as u32);
            buf.put_slice(lit.as_bytes());
        }
        Value::List(_) => return None,
    }
    let checksum = fnv1a(&buf);
    buf.put_u64(checksum);
    Some(buf.to_vec())
}

/// Reads and verifies a value file written by [`encode_value`].
fn read_value_file(path: &Path) -> std::io::Result<Value> {
    let mut raw = Vec::new();
    fs::File::open(path)?.read_to_end(&mut raw)?;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if raw.len() < 9 + 8 {
        return Err(bad("value file too short"));
    }
    let (body, trailer) = raw.split_at(raw.len() - 8);
    let mut t = trailer;
    if fnv1a(body) != t.get_u64() {
        return Err(bad("value file checksum mismatch"));
    }
    let mut buf = body;
    if buf.get_u32() != VALUE_MAGIC {
        return Err(bad("bad value file magic"));
    }
    let version = buf.get_u32();
    if version != VALUE_VERSION {
        return Err(bad(&format!("unsupported value format version {version}")));
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 16 {
                return Err(bad("truncated matrix header"));
            }
            let rows = buf.get_u64() as usize;
            let cols = buf.get_u64() as usize;
            if rows.checked_mul(cols).and_then(|n| n.checked_mul(8)) != Some(buf.remaining()) {
                return Err(bad("truncated matrix value file"));
            }
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows * cols {
                data.push(buf.get_f64());
            }
            DenseMatrix::new(rows, cols, data)
                .map(Value::matrix)
                .map_err(|e| bad(&e.to_string()))
        }
        1 => {
            if buf.remaining() < 4 {
                return Err(bad("truncated scalar header"));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() != len {
                return Err(bad("truncated scalar value file"));
            }
            let lit = std::str::from_utf8(buf).map_err(|_| bad("scalar not UTF-8"))?;
            ScalarValue::from_lineage_literal(lit)
                .map(Value::Scalar)
                .ok_or_else(|| bad("bad scalar literal"))
        }
        other => Err(bad(&format!("unknown value tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Offline verification (`lima-lint fsck`)
// ---------------------------------------------------------------------------

/// One finding from an offline [`fsck`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckFinding {
    /// The WAL ends in a partial or corrupt frame at `offset`.
    TornTail {
        /// Byte offset of the first bad frame.
        offset: u64,
    },
    /// A committed entry's value file does not exist.
    MissingValue {
        /// Manifest ID.
        id: u64,
    },
    /// A committed entry's value file fails verification.
    CorruptValue {
        /// Manifest ID.
        id: u64,
        /// Human-readable failure.
        detail: String,
    },
    /// A committed entry's serialized lineage does not parse or violates the
    /// DAG invariants.
    BadLineage {
        /// Manifest ID.
        id: u64,
        /// Human-readable failure.
        detail: String,
    },
    /// A file in `values/` with no committed manifest record.
    OrphanFile {
        /// File name.
        name: String,
    },
    /// An in-flight compaction temp (`manifest.*.wal.tmp`).
    StaleTmp {
        /// File name.
        name: String,
    },
    /// A manifest generation superseded by a higher one.
    StaleGeneration {
        /// The superseded generation.
        generation: u64,
    },
    /// A file previously quarantined by the scrubber (informational).
    Quarantined {
        /// File name.
        name: String,
    },
}

impl FsckFinding {
    /// True for findings that mean committed data is damaged or lost;
    /// debris findings (orphans, stale temps/generations, quarantine
    /// contents) are informational — startup recovery GCs them.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            FsckFinding::TornTail { .. }
                | FsckFinding::MissingValue { .. }
                | FsckFinding::CorruptValue { .. }
                | FsckFinding::BadLineage { .. }
        )
    }

    /// One-line human-readable rendering.
    pub fn render(&self) -> String {
        match self {
            FsckFinding::TornTail { offset } => {
                format!("torn-tail: WAL frame at byte {offset} is partial or corrupt")
            }
            FsckFinding::MissingValue { id } => {
                format!("missing-value: committed entry v{id}.val does not exist")
            }
            FsckFinding::CorruptValue { id, detail } => {
                format!("corrupt-value: v{id}.val fails verification ({detail})")
            }
            FsckFinding::BadLineage { id, detail } => {
                format!("bad-lineage: entry {id} has invalid lineage ({detail})")
            }
            FsckFinding::OrphanFile { name } => {
                format!("orphan-file: values/{name} has no committed manifest record")
            }
            FsckFinding::StaleTmp { name } => {
                format!("stale-tmp: {name} is an uncommitted compaction output")
            }
            FsckFinding::StaleGeneration { generation } => {
                format!("stale-generation: manifest.{generation}.wal is superseded")
            }
            FsckFinding::Quarantined { name } => {
                format!("quarantined: quarantine/{name}")
            }
        }
    }
}

/// Offline [`fsck`] summary.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Active manifest generation; `None` for a fresh or pre-generational
    /// (un-migrated) directory.
    pub generation: Option<u64>,
    /// Entries whose lineage and value file both verify.
    pub live_entries: u64,
    /// Bytes of verified value files.
    pub live_bytes: u64,
    /// Everything wrong or noteworthy, in scan order.
    pub findings: Vec<FsckFinding>,
}

impl FsckReport {
    /// True when any finding indicates damaged or lost committed data.
    pub fn has_corruption(&self) -> bool {
        self.findings.iter().any(|f| f.is_corruption())
    }
}

/// Read-only offline verification of a persist directory: WAL framing,
/// value checksums, lineage parse/DAG checks, and orphan/debris detection.
/// Never writes; safe to run against a live store's directory (results may
/// be stale) or a cold one.
pub fn fsck(dir: &Path) -> FsckReport {
    let mut report = FsckReport::default();
    let values_dir = dir.join("values");
    let quarantine_dir = dir.join("quarantine");

    let mut gens: Vec<u64> = Vec::new();
    let mut legacy = false;
    if let Ok(entries) = fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            if name == "manifest.wal" {
                legacy = true;
                continue;
            }
            if name.starts_with("manifest.") && name.ends_with(".wal.tmp") {
                report.findings.push(FsckFinding::StaleTmp { name });
                continue;
            }
            if let Some(g) = name
                .strip_prefix("manifest.")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable();
    let manifest = match gens.split_last() {
        Some((&active, stale)) => {
            for &g in stale {
                report
                    .findings
                    .push(FsckFinding::StaleGeneration { generation: g });
            }
            if legacy {
                // A pre-generational manifest superseded by a committed
                // generation switch.
                report.findings.push(FsckFinding::OrphanFile {
                    name: "manifest.wal".to_string(),
                });
            }
            report.generation = Some(active);
            manifest_path(dir, active)
        }
        None => {
            report.generation = None;
            dir.join("manifest.wal")
        }
    };

    let (puts, torn, _max_id) = scan_manifest(&manifest);
    if let Some(offset) = torn {
        report.findings.push(FsckFinding::TornTail { offset });
    }
    let mut committed: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (id, rec) in &puts {
        committed.insert(*id);
        let lineage_ok = match deserialize_lineage(&rec.lineage) {
            Ok(root) => match crate::lineage::verify::verify_dag(&root) {
                Ok(()) => true,
                Err(e) => {
                    report.findings.push(FsckFinding::BadLineage {
                        id: *id,
                        detail: e.to_string(),
                    });
                    false
                }
            },
            Err(e) => {
                report.findings.push(FsckFinding::BadLineage {
                    id: *id,
                    detail: e.to_string(),
                });
                false
            }
        };
        let path = values_dir.join(format!("v{id}.val"));
        if !path.exists() {
            report.findings.push(FsckFinding::MissingValue { id: *id });
            continue;
        }
        match read_value_file(&path) {
            Ok(_) => {
                if lineage_ok {
                    report.live_entries += 1;
                    report.live_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                }
            }
            Err(e) => {
                report.findings.push(FsckFinding::CorruptValue {
                    id: *id,
                    detail: e.to_string(),
                });
            }
        }
    }

    if let Ok(entries) = fs::read_dir(&values_dir) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            let is_committed = name
                .strip_prefix('v')
                .and_then(|s| s.strip_suffix(".val"))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|id| committed.contains(&id));
            if !is_committed {
                report.findings.push(FsckFinding::OrphanFile { name });
            }
        }
    }
    if let Ok(entries) = fs::read_dir(&quarantine_dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            report.findings.push(FsckFinding::Quarantined { name });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::item::{lineage_eq, LineageItem};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "lima-persist-test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn item(seed: &str) -> LinRef {
        LineageItem::op(
            "ba+*",
            vec![LineageItem::op_with_data("read", seed, vec![])],
        )
    }

    fn mat(n: usize) -> Value {
        Value::matrix(DenseMatrix::from_fn(n, n, |i, j| (i * n + j) as f64 * 0.5))
    }

    fn open(dir: &Path) -> (PersistentCacheStore, Vec<RecoveredEntry>, RecoveryReport) {
        PersistentCacheStore::open(dir, 0, None).expect("store opens")
    }

    /// Flips one byte near the middle of a file.
    fn flip_byte(path: &Path) {
        let mut raw = fs::read(path).unwrap();
        let pos = raw.len() / 2;
        raw[pos] ^= 0x40;
        fs::write(path, &raw).unwrap();
    }

    #[test]
    fn persist_then_recover_round_trips() {
        let dir = tmp_dir("roundtrip");
        {
            let (store, rec, rep) = open(&dir);
            assert!(rec.is_empty());
            assert_eq!(rep, RecoveryReport::default());
            store.persist(&item("X"), &mat(4), 1_000).unwrap().unwrap();
            store
                .persist(&item("Y"), &Value::f64(2.5), 2_000)
                .unwrap()
                .unwrap();
            // Lists are not persisted.
            assert!(store
                .persist(&item("L"), &Value::list(vec![]), 1)
                .unwrap()
                .is_none());
        }
        let (_store, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 2);
        assert_eq!(rep.dropped, 0);
        assert!(!rep.torn_tail_truncated);
        assert_eq!(rep.orphans_gcd, 0);
        assert_eq!(rep.generation, 0);
        let x = rec
            .iter()
            .find(|e| lineage_eq(&e.root, &item("X")))
            .unwrap();
        assert!(x.value.approx_eq(&mat(4), 0.0));
        assert_eq!(x.compute_ns, 1_000);
        let y = rec
            .iter()
            .find(|e| lineage_eq(&e.root, &item("Y")))
            .unwrap();
        assert_eq!(y.value.as_f64().unwrap(), 2.5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tombstoned_entries_do_not_recover() {
        let dir = tmp_dir("tombstone");
        let id = {
            let (store, _, _) = open(&dir);
            let a = store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(3), 20).unwrap().unwrap();
            assert!(store.tombstone(a.id).unwrap());
            assert!(!store.tombstone(a.id).unwrap(), "double tombstone no-ops");
            a.id
        };
        let (store, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert!(lineage_eq(&rec[0].root, &item("B")));
        assert!(rec.iter().all(|e| e.persist_id != id));
        assert_eq!(store.live_entries(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_earlier_records_survive() {
        let dir = tmp_dir("torn");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(3), 20).unwrap().unwrap();
        }
        // Append garbage prefix of a record (torn tail).
        let manifest = dir.join("manifest.0.wal");
        let clean_len = fs::metadata(&manifest).unwrap().len();
        let mut f = fs::OpenOptions::new().append(true).open(&manifest).unwrap();
        f.write_all(&[0, 0, 0, 99, 1, 2, 3]).unwrap();
        drop(f);
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 2);
        assert!(rep.torn_tail_truncated);
        assert_eq!(fs::metadata(&manifest).unwrap().len(), clean_len);
        assert_eq!(rec.len(), 2);
        // A second recovery is clean (truncation is durable).
        let (_s, _rec, rep2) = open(&dir);
        assert!(!rep2.torn_tail_truncated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_value_files_are_quarantined_not_served() {
        let dir = tmp_dir("corruptval");
        let id = {
            let (store, _, _) = open(&dir);
            let o = store.persist(&item("A"), &mat(4), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(4), 20).unwrap().unwrap();
            o.id
        };
        let victim = dir.join("values").join(format!("v{id}.val"));
        flip_byte(&victim);
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.dropped, 1);
        assert_eq!(rep.quarantined, 1);
        assert_eq!(rep.repaired, 0, "no hook, no repair");
        assert!(lineage_eq(&rec[0].root, &item("B")));
        assert!(!victim.exists(), "corrupt value file left values/");
        assert!(
            dir.join("quarantine").join(format!("v{id}.val")).exists(),
            "corrupt value file preserved in quarantine/"
        );
        // The drop was tombstoned: a second recovery is clean.
        let (_s, rec2, rep2) = open(&dir);
        assert_eq!(rep2.recovered, 1);
        assert_eq!(rep2.dropped, 0);
        assert_eq!(rec2.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_value_files_are_dropped() {
        let dir = tmp_dir("missingval");
        let id = {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(4), 10).unwrap().unwrap().id
        };
        fs::remove_file(dir.join("values").join(format!("v{id}.val"))).unwrap();
        let (_s, rec, rep) = open(&dir);
        assert!(rec.is_empty());
        assert_eq!(rep.dropped, 1);
        assert_eq!(rep.quarantined, 0, "nothing on disk to quarantine");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_value_and_temp_files_are_garbage_collected() {
        let dir = tmp_dir("orphans");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        }
        let values = dir.join("values");
        fs::write(values.join("v999.val"), b"orphan").unwrap();
        fs::write(values.join("v1000.tmp"), b"in-flight").unwrap();
        fs::write(values.join("junk.bin"), b"noise").unwrap();
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rec.len(), 1);
        assert_eq!(rep.orphans_gcd, 3);
        assert!(!values.join("v999.val").exists());
        assert!(!values.join("v1000.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unparseable_lineage_is_dropped() {
        let dir = tmp_dir("badlineage");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        }
        // Hand-craft a put record with garbage lineage but a valid frame.
        {
            let mut payload = BytesMut::new();
            payload.put_u8(REC_PUT);
            payload.put_u64(7777);
            payload.put_u64(0);
            payload.put_u64(0);
            let lin = b"not a lineage log";
            payload.put_u32(lin.len() as u32);
            payload.put_slice(lin);
            let rec = frame_record(&payload);
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("manifest.0.wal"))
                .unwrap();
            f.write_all(&rec).unwrap();
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.dropped, 1);
        assert_eq!(rec.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn structurally_invalid_lineage_is_dropped() {
        let dir = tmp_dir("invalidlineage");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        }
        // A record whose lineage parses but violates the DAG invariants:
        // a placeholder leaf outside any patch body.
        {
            let mut payload = BytesMut::new();
            payload.put_u8(REC_PUT);
            payload.put_u64(7778);
            payload.put_u64(0);
            payload.put_u64(0);
            let lin = b"(1) P 0\n::out (1)\n";
            payload.put_u32(lin.len() as u32);
            payload.put_slice(lin);
            let rec = frame_record(&payload);
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("manifest.0.wal"))
                .unwrap();
            f.write_all(&rec).unwrap();
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.dropped, 1);
        assert_eq!(rec.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_budget_evicts_oldest_with_tombstones() {
        let dir = tmp_dir("budget");
        // Each 8x8 matrix encodes to 9 + 16 + 512 + 8 = 545 bytes; a budget
        // of 1200 holds two.
        let (store, _, _) = PersistentCacheStore::open(&dir, 1200, None).unwrap();
        let a = store.persist(&item("A"), &mat(8), 10).unwrap().unwrap();
        assert_eq!(a.evicted, 0);
        let b = store.persist(&item("B"), &mat(8), 20).unwrap().unwrap();
        assert_eq!(b.evicted, 0);
        let c = store.persist(&item("C"), &mat(8), 30).unwrap().unwrap();
        assert_eq!(c.evicted, 1, "oldest entry tombstoned to fit the budget");
        assert_eq!(store.live_entries(), 2);
        drop(store);
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 2);
        assert!(rec.iter().all(|e| !lineage_eq(&e.root, &item("A"))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_wal_append_leaves_recoverable_torn_tail() {
        let dir = tmp_dir("crashwal");
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistWalAppend, &[1]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            assert!(store.persist(&item("B"), &mat(3), 20).is_err());
            assert!(store.crashed());
            assert!(!store.usable());
            // Dead process: later writes refuse without touching disk.
            assert!(store.persist(&item("C"), &mat(3), 30).is_err());
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1, "only the committed entry survives");
        assert!(rep.torn_tail_truncated);
        assert!(lineage_eq(&rec[0].root, &item("A")));
        // B's committed value file became an orphan of the torn record.
        assert_eq!(rep.orphans_gcd, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_value_commit_and_manifest_append_gcs_orphan() {
        let dir = tmp_dir("crashcommit");
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistCommit, &[1]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            assert!(store.persist(&item("B"), &mat(3), 20).is_err());
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert!(!rep.torn_tail_truncated);
        assert_eq!(rep.orphans_gcd, 1, "orphan value file GC'd");
        assert!(lineage_eq(&rec[0].root, &item("A")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_rename_gcs_temp_file() {
        let dir = tmp_dir("crashrename");
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistRename, &[0]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            assert!(store.persist(&item("A"), &mat(3), 10).is_err());
        }
        let (_s, rec, rep) = open(&dir);
        assert!(rec.is_empty());
        assert_eq!(rep.orphans_gcd, 1, "temp file GC'd");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unusable_directory_degrades_to_none() {
        // A file where the directory should be.
        let path = tmp_dir("notadir");
        fs::write(&path, b"file").unwrap();
        assert!(PersistentCacheStore::open(&path, 0, None).is_none());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn value_file_single_byte_corruption_is_always_detected() {
        let dir = tmp_dir("valcorrupt");
        let (store, _, _) = open(&dir);
        let id = store.persist(&item("A"), &mat(3), 10).unwrap().unwrap().id;
        let path = dir.join("values").join(format!("v{id}.val"));
        let clean = fs::read(&path).unwrap();
        for pos in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[pos] ^= 0x20;
            fs::write(&path, &damaged).unwrap();
            assert!(
                read_value_file(&path).is_err(),
                "corruption at byte {pos} went undetected"
            );
        }
        fs::write(&path, &clean).unwrap();
        assert!(read_value_file(&path).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    // -- compaction ---------------------------------------------------------

    #[test]
    fn compaction_drops_dead_records_and_switches_generation() {
        let dir = tmp_dir("compact");
        {
            let (store, _, _) = open(&dir);
            let a = store.persist(&item("A"), &mat(4), 10).unwrap().unwrap();
            let b = store.persist(&item("B"), &mat(4), 20).unwrap().unwrap();
            store.persist(&item("C"), &mat(4), 30).unwrap().unwrap();
            store.tombstone(a.id).unwrap();
            store.tombstone(b.id).unwrap();
            let before = store.wal_bytes();
            let out = store.compact().unwrap();
            assert_eq!(out.generation, 1);
            assert_eq!(out.wal_bytes_before, before);
            assert!(
                out.wal_bytes_after < out.wal_bytes_before,
                "tombstone-heavy WAL must shrink: {} -> {}",
                out.wal_bytes_before,
                out.wal_bytes_after
            );
            assert_eq!(out.live_entries, 1);
            assert_eq!(store.generation(), 1);
            assert!(dir.join("manifest.1.wal").exists());
            assert!(
                !dir.join("manifest.0.wal").exists(),
                "old generation removed"
            );
            let (n, reclaimed) = store.take_compaction_counters();
            assert_eq!(n, 1);
            assert_eq!(reclaimed, before - out.wal_bytes_after);
            // The store stays writable in the new generation.
            store.persist(&item("D"), &mat(4), 40).unwrap().unwrap();
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.generation, 1);
        assert_eq!(rep.recovered, 2);
        assert!(rec.iter().any(|e| lineage_eq(&e.root, &item("C"))));
        assert!(rec.iter().any(|e| lineage_eq(&e.root, &item("D"))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_triggers_on_tombstone_heavy_wal() {
        let dir = tmp_dir("autocompact");
        let opts = PersistOptions {
            compact_min_bytes: 256,
            compact_factor: 2,
            ..PersistOptions::default()
        };
        let (store, _, _) = PersistentCacheStore::open_with(&dir, opts).unwrap();
        let mut ids = Vec::new();
        for i in 0..12 {
            let o = store
                .persist(&item(&format!("E{i}")), &mat(4), i)
                .unwrap()
                .unwrap();
            ids.push(o.id);
        }
        // Tombstone all but the last entry; the WAL is now mostly dead
        // records and must auto-compact.
        for &id in &ids[..11] {
            store.tombstone(id).unwrap();
        }
        let (n, reclaimed) = store.take_compaction_counters();
        assert!(n >= 1, "auto-compaction never fired");
        assert!(reclaimed > 0);
        assert!(store.generation() >= 1);
        assert_eq!(store.live_entries(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_compact_write_keeps_old_generation() {
        let dir = tmp_dir("crashcompactwrite");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(3), 20).unwrap().unwrap();
        }
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistCompactWrite, &[0]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            assert!(store.compact().is_err());
            assert!(store.crashed());
        }
        assert!(
            dir.join("manifest.1.wal.tmp").exists(),
            "torn tmp left behind"
        );
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.generation, 0, "old generation still active");
        assert_eq!(rep.recovered, 2);
        assert_eq!(rep.stale_tmp_gcd, 1, "torn compaction tmp GC'd");
        assert_eq!(rec.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_generation_switch_keeps_old_generation() {
        let dir = tmp_dir("crashswitchpre");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(3), 20).unwrap().unwrap();
        }
        // Occurrence 0 = the pre-rename consult: the compacted generation is
        // complete but never committed.
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistCompactSwitch, &[0]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            assert!(store.compact().is_err());
        }
        assert!(dir.join("manifest.1.wal.tmp").exists());
        assert!(!dir.join("manifest.1.wal").exists());
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.generation, 0);
        assert_eq!(rep.recovered, 2);
        assert_eq!(rep.stale_tmp_gcd, 1);
        assert_eq!(rec.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_after_generation_switch_promotes_new_generation() {
        let dir = tmp_dir("crashswitchpost");
        {
            let (store, _, _) = open(&dir);
            let a = store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(3), 20).unwrap().unwrap();
            store.tombstone(a.id).unwrap();
        }
        // Occurrence 1 = the post-rename consult: both generations exist on
        // disk at the moment of death.
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistCompactSwitch, &[1]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            assert!(store.compact().is_err());
        }
        assert!(
            dir.join("manifest.0.wal").exists(),
            "old generation on disk"
        );
        assert!(
            dir.join("manifest.1.wal").exists(),
            "new generation on disk"
        );
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.generation, 1, "committed switch wins");
        assert_eq!(rep.stale_generations_removed, 1);
        assert!(!dir.join("manifest.0.wal").exists());
        assert_eq!(rep.recovered, 1);
        assert!(lineage_eq(&rec[0].root, &item("B")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_manifest_migrates_to_generation_zero() {
        let dir = tmp_dir("legacy");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        }
        // Simulate a store written before generational manifests.
        fs::rename(dir.join("manifest.0.wal"), dir.join("manifest.wal")).unwrap();
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.generation, 0);
        assert!(dir.join("manifest.0.wal").exists(), "migrated in place");
        assert!(!dir.join("manifest.wal").exists());
        assert!(lineage_eq(&rec[0].root, &item("A")));
        fs::remove_dir_all(&dir).unwrap();
    }

    // -- write-failure degrade ---------------------------------------------

    #[test]
    fn disk_full_degrades_store_to_memory_only() {
        let dir = tmp_dir("diskfull");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        }
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::DiskFull, &[0]));
        let (store, rec, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
        assert_eq!(rec.len(), 1);
        let err = store.persist(&item("B"), &mat(3), 20).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "surfaces as ENOSPC");
        assert_eq!(store.degrade_reason(), Some(DegradeReason::DiskFull));
        assert!(!store.usable());
        assert!(!store.crashed(), "degraded is not crashed");
        // Every later write refuses without touching disk.
        assert!(store.persist(&item("C"), &mat(3), 30).is_err());
        assert!(store.tombstone(0).is_err());
        assert!(store.scrub_chunk(0).is_err());
        drop(store);
        // The data already committed is intact.
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert!(lineage_eq(&rec[0].root, &item("A")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failure_degrades_store_to_memory_only() {
        let dir = tmp_dir("fsyncfail");
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::FsyncFail, &[0]));
        let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
        assert!(store.persist(&item("A"), &mat(3), 10).is_err());
        assert_eq!(store.degrade_reason(), Some(DegradeReason::FsyncFailed));
        assert!(!store.usable());
        assert!(store.persist(&item("B"), &mat(3), 20).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    // -- scrubbing & repair -------------------------------------------------

    #[test]
    fn scrub_quarantines_corrupt_value_without_hook() {
        let dir = tmp_dir("scrubquarantine");
        let (store, _, _) = open(&dir);
        let a = store.persist(&item("A"), &mat(4), 10).unwrap().unwrap();
        store.persist(&item("B"), &mat(4), 20).unwrap().unwrap();
        let victim = dir.join("values").join(format!("v{}.val", a.id));
        flip_byte(&victim);
        let out = store.scrub_chunk(0).unwrap();
        assert!(out.wrapped);
        assert_eq!(out.entries, 2);
        assert_eq!(out.corrupt, 1);
        assert_eq!(out.repaired, 0);
        assert_eq!(out.repair_failures, 0, "no hook, no attempted repair");
        assert_eq!(out.quarantined, 1);
        assert_eq!(out.quarantined_ids, vec![a.id]);
        assert!(!victim.exists());
        assert!(dir
            .join("quarantine")
            .join(format!("v{}.val", a.id))
            .exists());
        assert_eq!(store.live_entries(), 1);
        drop(store);
        // The quarantined entry was tombstoned: recovery is clean.
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.dropped, 0);
        assert!(lineage_eq(&rec[0].root, &item("B")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_repairs_corrupt_value_from_lineage() {
        let dir = tmp_dir("scrubrepair");
        let opts = PersistOptions {
            repair: Some(RepairHook::new(|_root| Ok(mat(4)))),
            ..PersistOptions::default()
        };
        let (store, _, _) = PersistentCacheStore::open_with(&dir, opts).unwrap();
        let a = store.persist(&item("A"), &mat(4), 10).unwrap().unwrap();
        let victim = dir.join("values").join(format!("v{}.val", a.id));
        flip_byte(&victim);
        let out = store.scrub_chunk(0).unwrap();
        assert_eq!(out.corrupt, 1);
        assert_eq!(out.repaired, 1);
        assert_eq!(out.quarantined, 0);
        assert!(read_value_file(&victim).unwrap().approx_eq(&mat(4), 0.0));
        assert_eq!(store.live_entries(), 1);
        // A clean follow-up pass finds nothing.
        let out2 = store.scrub_chunk(0).unwrap();
        assert_eq!(out2.corrupt, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_counts_repair_failure_then_quarantines() {
        let dir = tmp_dir("scrubrepairfail");
        let opts = PersistOptions {
            repair: Some(RepairHook::new(|_root| Err("no data source".to_string()))),
            ..PersistOptions::default()
        };
        let (store, _, _) = PersistentCacheStore::open_with(&dir, opts).unwrap();
        let a = store.persist(&item("A"), &mat(4), 10).unwrap().unwrap();
        flip_byte(&dir.join("values").join(format!("v{}.val", a.id)));
        let out = store.scrub_chunk(0).unwrap();
        assert_eq!(out.corrupt, 1);
        assert_eq!(out.repaired, 0);
        assert_eq!(out.repair_failures, 1);
        assert_eq!(out.quarantined, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_chunk_respects_byte_budget_and_resumes() {
        let dir = tmp_dir("scrubbudget");
        let (store, _, _) = open(&dir);
        for i in 0..3 {
            store
                .persist(&item(&format!("S{i}")), &mat(4), i)
                .unwrap()
                .unwrap();
        }
        // Each 4x4 matrix file is 161 bytes; a 1-byte budget scans exactly
        // one entry per chunk.
        let c1 = store.scrub_chunk(1).unwrap();
        assert_eq!(c1.entries, 1);
        assert!(!c1.wrapped);
        let c2 = store.scrub_chunk(1).unwrap();
        assert_eq!(c2.entries, 1);
        assert!(!c2.wrapped);
        let c3 = store.scrub_chunk(1).unwrap();
        assert_eq!(c3.entries, 1);
        assert!(c3.wrapped, "last chunk finishes the pass");
        let total: u64 = c1.entries + c2.entries + c3.entries;
        assert_eq!(total, 3, "every entry scanned exactly once");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_rebuilds_damaged_wal_by_compaction() {
        let dir = tmp_dir("scrubwal");
        let (store, _, _) = open(&dir);
        store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        store.persist(&item("B"), &mat(3), 20).unwrap().unwrap();
        // At-rest damage: garbage appended to the active WAL.
        {
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("manifest.0.wal"))
                .unwrap();
            f.write_all(&[9, 9, 9, 9, 9]).unwrap();
        }
        let out = store.scrub_chunk(0).unwrap();
        assert!(out.wal_repaired, "WAL damage repaired via compaction");
        assert_eq!(store.generation(), 1);
        drop(store);
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.generation, 1);
        assert_eq!(rep.recovered, 2);
        assert!(!rep.torn_tail_truncated, "rebuilt WAL is clean");
        assert_eq!(rec.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_repairs_missing_value_with_hook() {
        let dir = tmp_dir("recoverrepair");
        let id = {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(4), 10).unwrap().unwrap().id
        };
        let path = dir.join("values").join(format!("v{id}.val"));
        fs::remove_file(&path).unwrap();
        let opts = PersistOptions {
            repair: Some(RepairHook::new(|_root| Ok(mat(4)))),
            ..PersistOptions::default()
        };
        let (_s, rec, rep) = PersistentCacheStore::open_with(&dir, opts).unwrap();
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.repaired, 1);
        assert_eq!(rep.dropped, 0);
        assert!(rec[0].value.approx_eq(&mat(4), 0.0));
        assert!(path.exists(), "repaired value re-persisted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_counts_repair_failures() {
        let dir = tmp_dir("recoverrepairfail");
        let id = {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(4), 10).unwrap().unwrap().id
        };
        flip_byte(&dir.join("values").join(format!("v{id}.val")));
        let opts = PersistOptions {
            repair: Some(RepairHook::new(|_root| Err("unreplayable".to_string()))),
            ..PersistOptions::default()
        };
        let (_s, rec, rep) = PersistentCacheStore::open_with(&dir, opts).unwrap();
        assert!(rec.is_empty());
        assert_eq!(rep.dropped, 1);
        assert_eq!(rep.repair_failures, 1);
        assert_eq!(rep.quarantined, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_ages_out_on_recovery() {
        let dir = tmp_dir("quarantineage");
        {
            let (_store, _, _) = open(&dir);
        }
        let qfile = dir.join("quarantine").join("v42.val");
        fs::write(&qfile, b"preserved corpse").unwrap();
        // Age 0 = keep forever.
        let opts = PersistOptions {
            quarantine_max_age_secs: 0,
            ..PersistOptions::default()
        };
        let (_s, _, rep) = PersistentCacheStore::open_with(&dir, opts).unwrap();
        assert_eq!(rep.quarantine_gcd, 0);
        assert!(qfile.exists());
        // A 1-second horizon collects it once it has aged past that.
        std::thread::sleep(Duration::from_millis(1_200));
        let opts = PersistOptions {
            quarantine_max_age_secs: 1,
            ..PersistOptions::default()
        };
        let (_s, _, rep) = PersistentCacheStore::open_with(&dir, opts).unwrap();
        assert_eq!(rep.quarantine_gcd, 1);
        assert!(!qfile.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    // -- fsck ----------------------------------------------------------------

    #[test]
    fn fsck_clean_store_has_no_corruption() {
        let dir = tmp_dir("fsckclean");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(4), 10).unwrap().unwrap();
            store
                .persist(&item("B"), &Value::f64(1.5), 20)
                .unwrap()
                .unwrap();
        }
        let rep = fsck(&dir);
        assert_eq!(rep.generation, Some(0));
        assert_eq!(rep.live_entries, 2);
        assert!(rep.live_bytes > 0);
        assert!(rep.findings.is_empty(), "findings: {:?}", rep.findings);
        assert!(!rep.has_corruption());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_reports_typed_findings() {
        let dir = tmp_dir("fsckdirty");
        let (a, b) = {
            let (store, _, _) = open(&dir);
            let a = store.persist(&item("A"), &mat(4), 10).unwrap().unwrap();
            let b = store.persist(&item("B"), &mat(4), 20).unwrap().unwrap();
            store.persist(&item("C"), &mat(4), 30).unwrap().unwrap();
            (a.id, b.id)
        };
        // Corrupt one value, delete another, plant debris of every kind.
        flip_byte(&dir.join("values").join(format!("v{a}.val")));
        fs::remove_file(dir.join("values").join(format!("v{b}.val"))).unwrap();
        fs::write(dir.join("values").join("v777.val"), b"orphan").unwrap();
        fs::write(dir.join("manifest.9.wal.tmp"), b"inflight").unwrap();
        fs::write(dir.join("quarantine").join("v5.val"), b"old corpse").unwrap();
        {
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("manifest.0.wal"))
                .unwrap();
            f.write_all(&[0, 0, 0, 50, 1]).unwrap();
        }
        let rep = fsck(&dir);
        assert!(rep.has_corruption());
        assert_eq!(rep.live_entries, 1, "only C verifies");
        let has = |f: &dyn Fn(&FsckFinding) -> bool| rep.findings.iter().any(f);
        assert!(has(
            &|f| matches!(f, FsckFinding::CorruptValue { id, .. } if *id == a)
        ));
        assert!(has(
            &|f| matches!(f, FsckFinding::MissingValue { id } if *id == b)
        ));
        assert!(has(
            &|f| matches!(f, FsckFinding::OrphanFile { name } if name == "v777.val")
        ));
        assert!(has(&|f| matches!(f, FsckFinding::StaleTmp { .. })));
        assert!(has(&|f| matches!(f, FsckFinding::Quarantined { .. })));
        assert!(has(&|f| matches!(f, FsckFinding::TornTail { .. })));
        for f in &rep.findings {
            assert!(!f.render().is_empty());
        }
        // fsck is read-only: a second pass sees the same state.
        assert_eq!(fsck(&dir).findings.len(), rep.findings.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_flags_stale_generation_and_bad_lineage() {
        let dir = tmp_dir("fsckgen");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            store.compact().unwrap();
        }
        // Resurrect a stale generation file alongside the committed one.
        fs::write(dir.join("manifest.0.wal"), b"").unwrap();
        // Append a bad-lineage record to the active generation.
        {
            let mut payload = BytesMut::new();
            payload.put_u8(REC_PUT);
            payload.put_u64(500);
            payload.put_u64(0);
            payload.put_u64(0);
            let lin = b"garbage";
            payload.put_u32(lin.len() as u32);
            payload.put_slice(lin);
            let rec = frame_record(&payload);
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("manifest.1.wal"))
                .unwrap();
            f.write_all(&rec).unwrap();
        }
        let rep = fsck(&dir);
        assert_eq!(rep.generation, Some(1));
        assert!(rep
            .findings
            .iter()
            .any(|f| matches!(f, FsckFinding::StaleGeneration { generation: 0 })));
        assert!(rep
            .findings
            .iter()
            .any(|f| matches!(f, FsckFinding::BadLineage { id: 500, .. })));
        assert!(rep.has_corruption());
        fs::remove_dir_all(&dir).unwrap();
    }
}
