//! Crash-safe persistent reuse cache (durable lineage + values).
//!
//! The paper's lineage log is designed for serialization and full
//! reconstruction of intermediates (§3); this module makes the reuse cache
//! itself survive process death. A [`PersistentCacheStore`] pairs an
//! append-only *manifest WAL* with a directory of checksummed *value files*:
//!
//! ```text
//! <persist_dir>/manifest.wal      append-only record log
//! <persist_dir>/values/v<id>.val  one committed value per entry
//! <persist_dir>/values/v<id>.tmp  in-flight value write (GC'd on recovery)
//! ```
//!
//! **Commit protocol** (per entry): (1) the value is written to `v<id>.tmp`
//! and fsynced, (2) the temp file is atomically renamed to `v<id>.val`,
//! (3) a `Put` record — serialized lineage via
//! [`crate::lineage::serialize::serialize_lineage`] plus metadata — is
//! appended to the WAL and fsynced. *The WAL append is the commit point*: a
//! value file without a WAL record is an orphan and is garbage-collected; a
//! WAL record whose value file is missing or corrupt is dropped.
//!
//! **Recovery** scans the WAL front to back, truncates a torn tail at the
//! last valid record, replays tombstones, validates every surviving value
//! file (FNV-1a-64 checksum), garbage-collects orphans, and returns the
//! consistent subset of entries. An unusable directory degrades to an empty
//! store — recovery never errors.
//!
//! **Crash points** ([`crate::faults::PERSIST_CRASH_POINTS`]) simulate
//! process death at every step of the commit protocol: mid-rename
//! ([`FaultSite::PersistRename`]), between value commit and manifest append
//! ([`FaultSite::PersistCommit`]), and mid-WAL-append
//! ([`FaultSite::PersistWalAppend`]). Once a crash point fires the store
//! refuses all further writes, so the on-disk state observed by the next
//! recovery is exactly the state at the moment of the simulated crash.

use crate::faults::{FaultInjector, FaultSite};
use crate::lineage::item::LinRef;
use crate::lineage::serialize::{deserialize_lineage, serialize_lineage};
use bytes::{Buf, BufMut, BytesMut};
use lima_matrix::{DenseMatrix, ScalarValue, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Value-file magic: "LIMV".
const VALUE_MAGIC: u32 = 0x4C49_4D56;
const VALUE_VERSION: u32 = 1;
/// WAL record kinds.
const REC_PUT: u8 = 1;
const REC_TOMBSTONE: u8 = 2;
/// Upper bound on a single WAL record payload; anything larger is treated as
/// a torn/garbage tail during recovery.
const MAX_RECORD_BYTES: usize = 256 * 1024 * 1024;

/// FNV-1a 64-bit hash (same construction as the spill format).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One entry recovered from disk on startup.
pub struct RecoveredEntry {
    /// Deserialized lineage root (the cache key).
    pub root: LinRef,
    /// Validated value.
    pub value: Value,
    /// Measured computation time persisted with the entry.
    pub compute_ns: u64,
    /// Manifest ID of the entry (stable across restarts).
    pub persist_id: u64,
}

/// What startup recovery found and repaired.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entries whose lineage parsed and whose value file verified.
    pub recovered: u64,
    /// Committed entries dropped (missing/corrupt value file or unparseable
    /// lineage).
    pub dropped: u64,
    /// Whether a torn WAL tail was truncated at the last valid record.
    pub torn_tail_truncated: bool,
    /// Orphaned value/temp files garbage-collected.
    pub orphans_gcd: u64,
}

/// Outcome of a successful [`PersistentCacheStore::persist`] call.
pub struct PersistOutcome {
    /// Manifest ID assigned to the entry.
    pub id: u64,
    /// Bytes written to the value file.
    pub bytes: u64,
    /// Entries tombstoned to keep the store inside its disk budget.
    pub evicted: u64,
}

struct StoreState {
    wal: fs::File,
    /// Live entries: manifest ID → value-file bytes (insertion order = ID
    /// order, which is the FIFO used by disk-budget eviction).
    live: BTreeMap<u64, u64>,
    total_bytes: u64,
}

/// Durable store for reuse-cache entries. All writes go through the commit
/// protocol described in the module docs; all methods are thread-safe.
pub struct PersistentCacheStore {
    values_dir: PathBuf,
    state: Mutex<StoreState>,
    next_id: AtomicU64,
    /// Disk budget for value files; 0 = unbounded.
    budget_bytes: u64,
    faults: Option<Arc<FaultInjector>>,
    /// Set when a crash point fires: the simulated process is dead and no
    /// further bytes may reach disk.
    crashed: AtomicBool,
}

impl std::fmt::Debug for PersistentCacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "PersistentCacheStore {{ entries: {}, bytes: {} }}",
            st.live.len(),
            st.total_bytes
        )
    }
}

impl PersistentCacheStore {
    /// Opens (or creates) the store rooted at `dir`, running the recovery
    /// pass. Returns `None` when the directory is unusable — the caller
    /// degrades to a memory-only cache, never an error.
    pub fn open(
        dir: &Path,
        budget_bytes: u64,
        faults: Option<Arc<FaultInjector>>,
    ) -> Option<(Self, Vec<RecoveredEntry>, RecoveryReport)> {
        let values_dir = dir.join("values");
        fs::create_dir_all(&values_dir).ok()?;
        let manifest = dir.join("manifest.wal");
        let (puts, torn_offset, max_id) = scan_manifest(&manifest);
        let mut report = RecoveryReport::default();

        // Truncate the torn tail so no partially written record is ever
        // visible to a later scan (or appended over mid-record).
        if let Some(off) = torn_offset {
            report.torn_tail_truncated = true;
            let f = fs::OpenOptions::new().write(true).open(&manifest).ok()?;
            f.set_len(off).ok()?;
            let _ = f.sync_all();
        }

        // Validate surviving entries: lineage must parse, the parsed DAG must
        // satisfy the lineage invariants, and the value file must verify.
        let mut recovered = Vec::new();
        let mut live = BTreeMap::new();
        let mut total_bytes = 0u64;
        for (id, rec) in puts {
            let path = values_dir.join(format!("v{id}.val"));
            let root = match deserialize_lineage(&rec.lineage) {
                Ok(r) => r,
                Err(_) => {
                    report.dropped += 1;
                    let _ = fs::remove_file(&path);
                    continue;
                }
            };
            // A structurally invalid DAG would poison cache probes (its hash
            // can collide with a legitimate trace without ever comparing
            // equal); drop the entry rather than repopulate from it. Scope is
            // per entry: distinct programs sharing a store may reuse block
            // keys, which must not read as cross-entry patch conflicts.
            if crate::lineage::verify::verify_dag(&root).is_err() {
                report.dropped += 1;
                let _ = fs::remove_file(&path);
                continue;
            }
            match read_value_file(&path) {
                Ok(value) => {
                    live.insert(id, rec.value_bytes);
                    total_bytes += rec.value_bytes;
                    recovered.push(RecoveredEntry {
                        root,
                        value,
                        compute_ns: rec.compute_ns,
                        persist_id: id,
                    });
                }
                Err(_) => {
                    report.dropped += 1;
                    let _ = fs::remove_file(&path);
                }
            }
        }
        report.recovered = recovered.len() as u64;

        // Garbage-collect orphans: temp files and value files with no
        // committed manifest record.
        if let Ok(entries) = fs::read_dir(&values_dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                let committed = name
                    .strip_prefix('v')
                    .and_then(|s| s.strip_suffix(".val"))
                    .and_then(|s| s.parse::<u64>().ok())
                    .is_some_and(|id| live.contains_key(&id));
                if !committed && fs::remove_file(e.path()).is_ok() {
                    report.orphans_gcd += 1;
                }
            }
        }

        let wal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest)
            .ok()?;
        Some((
            PersistentCacheStore {
                values_dir,
                state: Mutex::new(StoreState {
                    wal,
                    live,
                    total_bytes,
                }),
                next_id: AtomicU64::new(max_id + 1),
                budget_bytes,
                faults,
                crashed: AtomicBool::new(false),
            },
            recovered,
            report,
        ))
    }

    /// True once a crash point has fired; every later write is refused.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Number of live (committed, not tombstoned) entries.
    pub fn live_entries(&self) -> usize {
        self.state.lock().live.len()
    }

    /// Bytes of committed value files.
    pub fn persisted_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    fn crash_here(&self, site: FaultSite) -> std::io::Result<()> {
        if let Some(f) = &self.faults {
            if f.should_fail(site) {
                self.crashed.store(true, Ordering::Relaxed);
                return Err(std::io::Error::other(format!("injected crash: {site:?}")));
            }
        }
        Ok(())
    }

    fn dead(&self) -> std::io::Result<()> {
        if self.crashed() {
            return Err(std::io::Error::other("store crashed"));
        }
        Ok(())
    }

    /// Durably persists one cache entry. Returns `Ok(None)` for values the
    /// store does not persist (lists). Errors leave the on-disk state
    /// recoverable: at worst an orphan value/temp file or a torn WAL tail,
    /// both repaired by the next recovery pass.
    pub fn persist(
        &self,
        root: &LinRef,
        value: &Value,
        compute_ns: u64,
    ) -> std::io::Result<Option<PersistOutcome>> {
        self.dead()?;
        let Some(encoded) = encode_value(value) else {
            return Ok(None);
        };
        let lineage = serialize_lineage(root);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();

        // Step 1: value file to <id>.tmp, fsynced.
        let tmp = self.values_dir.join(format!("v{id}.tmp"));
        let fin = self.values_dir.join(format!("v{id}.val"));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&encoded)?;
        f.sync_all()?;
        drop(f);

        // Crash point: process dies before the rename — only the temp file
        // exists; recovery GCs it.
        self.crash_here(FaultSite::PersistRename)?;

        // Step 2: atomic rename to the committed name.
        fs::rename(&tmp, &fin)?;

        // Crash point: value committed, manifest record never written — the
        // value file is an orphan; recovery GCs it.
        self.crash_here(FaultSite::PersistCommit)?;

        // Step 3: manifest append (the commit point).
        let mut payload = BytesMut::new();
        payload.put_u8(REC_PUT);
        payload.put_u64(id);
        payload.put_u64(compute_ns);
        payload.put_u64(encoded.len() as u64);
        payload.put_u32(lineage.len() as u32);
        payload.put_slice(lineage.as_bytes());
        let record = frame_record(&payload);

        // Crash point: process dies mid-append — a prefix of the record
        // reaches disk; recovery truncates the torn tail.
        if let Some(fi) = &self.faults {
            if fi.should_fail(FaultSite::PersistWalAppend) {
                self.crashed.store(true, Ordering::Relaxed);
                let torn = &record[..record.len() / 2];
                let _ = st.wal.write_all(torn);
                let _ = st.wal.sync_data();
                return Err(std::io::Error::other("injected crash: PersistWalAppend"));
            }
        }
        st.wal.write_all(&record)?;
        st.wal.sync_data()?;

        st.live.insert(id, encoded.len() as u64);
        st.total_bytes += encoded.len() as u64;

        // Disk budget: tombstone the oldest entries (FIFO by manifest ID)
        // until the new entry fits.
        let mut evicted = 0u64;
        if self.budget_bytes > 0 {
            while st.total_bytes > self.budget_bytes && st.live.len() > 1 {
                let Some((&old, &bytes)) = st.live.iter().next() else {
                    break;
                };
                if old == id {
                    break;
                }
                self.append_tombstone(&mut st, old)?;
                st.live.remove(&old);
                st.total_bytes -= bytes;
                let _ = fs::remove_file(self.values_dir.join(format!("v{old}.val")));
                evicted += 1;
            }
        }

        Ok(Some(PersistOutcome {
            id,
            bytes: encoded.len() as u64,
            evicted,
        }))
    }

    /// Appends an eviction tombstone for `id` and deletes its value file.
    /// Unknown/already-tombstoned IDs are a no-op.
    pub fn tombstone(&self, id: u64) -> std::io::Result<bool> {
        self.dead()?;
        let mut st = self.state.lock();
        let Some(bytes) = st.live.remove(&id) else {
            return Ok(false);
        };
        st.total_bytes -= bytes;
        self.append_tombstone(&mut st, id)?;
        let _ = fs::remove_file(self.values_dir.join(format!("v{id}.val")));
        Ok(true)
    }

    fn append_tombstone(&self, st: &mut StoreState, id: u64) -> std::io::Result<()> {
        let mut payload = BytesMut::new();
        payload.put_u8(REC_TOMBSTONE);
        payload.put_u64(id);
        let record = frame_record(&payload);
        st.wal.write_all(&record)?;
        st.wal.sync_data()
    }
}

/// Frames a payload as `len ∥ payload ∥ fnv1a(payload)`.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut rec = BytesMut::with_capacity(payload.len() + 12);
    rec.put_u32(payload.len() as u32);
    rec.put_slice(payload);
    rec.put_u64(fnv1a(payload));
    rec.to_vec()
}

struct PutRec {
    compute_ns: u64,
    value_bytes: u64,
    lineage: String,
}

/// Scans the manifest, returning surviving puts (tombstones applied), the
/// byte offset of a torn tail (if any), and the highest manifest ID seen.
fn scan_manifest(path: &Path) -> (BTreeMap<u64, PutRec>, Option<u64>, u64) {
    let mut puts: BTreeMap<u64, PutRec> = BTreeMap::new();
    let mut max_id = 0u64;
    let raw = match fs::read(path) {
        Ok(r) => r,
        Err(_) => return (puts, None, 0),
    };
    let mut off = 0usize;
    let torn = loop {
        if off == raw.len() {
            break None; // clean end
        }
        let rest = &raw[off..];
        if rest.len() < 4 {
            break Some(off as u64);
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD_BYTES || rest.len() < 4 + len + 8 {
            break Some(off as u64);
        }
        let payload = &rest[4..4 + len];
        let mut trailer = &rest[4 + len..4 + len + 8];
        if fnv1a(payload) != trailer.get_u64() {
            break Some(off as u64);
        }
        match parse_payload(payload) {
            Some(Record::Put { id, rec }) => {
                max_id = max_id.max(id);
                puts.insert(id, rec);
            }
            Some(Record::Tombstone { id }) => {
                max_id = max_id.max(id);
                puts.remove(&id);
            }
            // Checksummed but semantically malformed (unknown kind, bad
            // lengths): written by a future/corrupted writer — stop here.
            None => break Some(off as u64),
        }
        off += 4 + len + 8;
    };
    (puts, torn, max_id)
}

enum Record {
    Put { id: u64, rec: PutRec },
    Tombstone { id: u64 },
}

fn parse_payload(mut p: &[u8]) -> Option<Record> {
    if p.remaining() < 9 {
        return None;
    }
    let kind = p.get_u8();
    let id = p.get_u64();
    match kind {
        REC_PUT => {
            if p.remaining() < 20 {
                return None;
            }
            let compute_ns = p.get_u64();
            let value_bytes = p.get_u64();
            let lin_len = p.get_u32() as usize;
            if p.remaining() != lin_len {
                return None;
            }
            let lineage = String::from_utf8(p.to_vec()).ok()?;
            Some(Record::Put {
                id,
                rec: PutRec {
                    compute_ns,
                    value_bytes,
                    lineage,
                },
            })
        }
        REC_TOMBSTONE => {
            if p.remaining() != 0 {
                return None;
            }
            Some(Record::Tombstone { id })
        }
        _ => None,
    }
}

/// Serializes a value into the checksummed value-file format. Lists are not
/// persisted (`None`).
fn encode_value(value: &Value) -> Option<Vec<u8>> {
    let mut buf = BytesMut::new();
    buf.put_u32(VALUE_MAGIC);
    buf.put_u32(VALUE_VERSION);
    match value {
        Value::Matrix(m) => {
            buf.put_u8(0);
            buf.put_u64(m.rows() as u64);
            buf.put_u64(m.cols() as u64);
            for &v in m.data() {
                buf.put_f64(v);
            }
        }
        Value::Scalar(s) => {
            buf.put_u8(1);
            let lit = s.lineage_literal();
            buf.put_u32(lit.len() as u32);
            buf.put_slice(lit.as_bytes());
        }
        Value::List(_) => return None,
    }
    let checksum = fnv1a(&buf);
    buf.put_u64(checksum);
    Some(buf.to_vec())
}

/// Reads and verifies a value file written by [`encode_value`].
fn read_value_file(path: &Path) -> std::io::Result<Value> {
    let mut raw = Vec::new();
    fs::File::open(path)?.read_to_end(&mut raw)?;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if raw.len() < 9 + 8 {
        return Err(bad("value file too short"));
    }
    let (body, trailer) = raw.split_at(raw.len() - 8);
    let mut t = trailer;
    if fnv1a(body) != t.get_u64() {
        return Err(bad("value file checksum mismatch"));
    }
    let mut buf = body;
    if buf.get_u32() != VALUE_MAGIC {
        return Err(bad("bad value file magic"));
    }
    let version = buf.get_u32();
    if version != VALUE_VERSION {
        return Err(bad(&format!("unsupported value format version {version}")));
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 16 {
                return Err(bad("truncated matrix header"));
            }
            let rows = buf.get_u64() as usize;
            let cols = buf.get_u64() as usize;
            if rows.checked_mul(cols).and_then(|n| n.checked_mul(8)) != Some(buf.remaining()) {
                return Err(bad("truncated matrix value file"));
            }
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows * cols {
                data.push(buf.get_f64());
            }
            DenseMatrix::new(rows, cols, data)
                .map(Value::matrix)
                .map_err(|e| bad(&e.to_string()))
        }
        1 => {
            if buf.remaining() < 4 {
                return Err(bad("truncated scalar header"));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() != len {
                return Err(bad("truncated scalar value file"));
            }
            let lit = std::str::from_utf8(buf).map_err(|_| bad("scalar not UTF-8"))?;
            ScalarValue::from_lineage_literal(lit)
                .map(Value::Scalar)
                .ok_or_else(|| bad("bad scalar literal"))
        }
        other => Err(bad(&format!("unknown value tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::item::{lineage_eq, LineageItem};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "lima-persist-test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn item(seed: &str) -> LinRef {
        LineageItem::op(
            "ba+*",
            vec![LineageItem::op_with_data("read", seed, vec![])],
        )
    }

    fn mat(n: usize) -> Value {
        Value::matrix(DenseMatrix::from_fn(n, n, |i, j| (i * n + j) as f64 * 0.5))
    }

    fn open(dir: &Path) -> (PersistentCacheStore, Vec<RecoveredEntry>, RecoveryReport) {
        PersistentCacheStore::open(dir, 0, None).expect("store opens")
    }

    #[test]
    fn persist_then_recover_round_trips() {
        let dir = tmp_dir("roundtrip");
        {
            let (store, rec, rep) = open(&dir);
            assert!(rec.is_empty());
            assert_eq!(rep, RecoveryReport::default());
            store.persist(&item("X"), &mat(4), 1_000).unwrap().unwrap();
            store
                .persist(&item("Y"), &Value::f64(2.5), 2_000)
                .unwrap()
                .unwrap();
            // Lists are not persisted.
            assert!(store
                .persist(&item("L"), &Value::list(vec![]), 1)
                .unwrap()
                .is_none());
        }
        let (_store, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 2);
        assert_eq!(rep.dropped, 0);
        assert!(!rep.torn_tail_truncated);
        assert_eq!(rep.orphans_gcd, 0);
        let x = rec
            .iter()
            .find(|e| lineage_eq(&e.root, &item("X")))
            .unwrap();
        assert!(x.value.approx_eq(&mat(4), 0.0));
        assert_eq!(x.compute_ns, 1_000);
        let y = rec
            .iter()
            .find(|e| lineage_eq(&e.root, &item("Y")))
            .unwrap();
        assert_eq!(y.value.as_f64().unwrap(), 2.5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tombstoned_entries_do_not_recover() {
        let dir = tmp_dir("tombstone");
        let id = {
            let (store, _, _) = open(&dir);
            let a = store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(3), 20).unwrap().unwrap();
            assert!(store.tombstone(a.id).unwrap());
            assert!(!store.tombstone(a.id).unwrap(), "double tombstone no-ops");
            a.id
        };
        let (store, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert!(lineage_eq(&rec[0].root, &item("B")));
        assert!(rec.iter().all(|e| e.persist_id != id));
        assert_eq!(store.live_entries(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_earlier_records_survive() {
        let dir = tmp_dir("torn");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(3), 20).unwrap().unwrap();
        }
        // Append garbage prefix of a record (torn tail).
        let manifest = dir.join("manifest.wal");
        let clean_len = fs::metadata(&manifest).unwrap().len();
        let mut f = fs::OpenOptions::new().append(true).open(&manifest).unwrap();
        f.write_all(&[0, 0, 0, 99, 1, 2, 3]).unwrap();
        drop(f);
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 2);
        assert!(rep.torn_tail_truncated);
        assert_eq!(fs::metadata(&manifest).unwrap().len(), clean_len);
        assert_eq!(rec.len(), 2);
        // A second recovery is clean (truncation is durable).
        let (_s, _rec, rep2) = open(&dir);
        assert!(!rep2.torn_tail_truncated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_value_files_are_dropped_not_served() {
        let dir = tmp_dir("corruptval");
        let id = {
            let (store, _, _) = open(&dir);
            let o = store.persist(&item("A"), &mat(4), 10).unwrap().unwrap();
            store.persist(&item("B"), &mat(4), 20).unwrap().unwrap();
            o.id
        };
        let victim = dir.join("values").join(format!("v{id}.val"));
        let mut raw = fs::read(&victim).unwrap();
        let pos = raw.len() / 2;
        raw[pos] ^= 0x40;
        fs::write(&victim, &raw).unwrap();
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.dropped, 1);
        assert!(lineage_eq(&rec[0].root, &item("B")));
        assert!(!victim.exists(), "corrupt value file is deleted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_value_files_are_dropped() {
        let dir = tmp_dir("missingval");
        let id = {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(4), 10).unwrap().unwrap().id
        };
        fs::remove_file(dir.join("values").join(format!("v{id}.val"))).unwrap();
        let (_s, rec, rep) = open(&dir);
        assert!(rec.is_empty());
        assert_eq!(rep.dropped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_value_and_temp_files_are_garbage_collected() {
        let dir = tmp_dir("orphans");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        }
        let values = dir.join("values");
        fs::write(values.join("v999.val"), b"orphan").unwrap();
        fs::write(values.join("v1000.tmp"), b"in-flight").unwrap();
        fs::write(values.join("junk.bin"), b"noise").unwrap();
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rec.len(), 1);
        assert_eq!(rep.orphans_gcd, 3);
        assert!(!values.join("v999.val").exists());
        assert!(!values.join("v1000.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unparseable_lineage_is_dropped() {
        let dir = tmp_dir("badlineage");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        }
        // Hand-craft a put record with garbage lineage but a valid frame.
        {
            let mut payload = BytesMut::new();
            payload.put_u8(REC_PUT);
            payload.put_u64(7777);
            payload.put_u64(0);
            payload.put_u64(0);
            let lin = b"not a lineage log";
            payload.put_u32(lin.len() as u32);
            payload.put_slice(lin);
            let rec = frame_record(&payload);
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("manifest.wal"))
                .unwrap();
            f.write_all(&rec).unwrap();
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.dropped, 1);
        assert_eq!(rec.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn structurally_invalid_lineage_is_dropped() {
        let dir = tmp_dir("invalidlineage");
        {
            let (store, _, _) = open(&dir);
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
        }
        // A record whose lineage parses but violates the DAG invariants:
        // a placeholder leaf outside any patch body.
        {
            let mut payload = BytesMut::new();
            payload.put_u8(REC_PUT);
            payload.put_u64(7778);
            payload.put_u64(0);
            payload.put_u64(0);
            let lin = b"(1) P 0\n::out (1)\n";
            payload.put_u32(lin.len() as u32);
            payload.put_slice(lin);
            let rec = frame_record(&payload);
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("manifest.wal"))
                .unwrap();
            f.write_all(&rec).unwrap();
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert_eq!(rep.dropped, 1);
        assert_eq!(rec.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_budget_evicts_oldest_with_tombstones() {
        let dir = tmp_dir("budget");
        // Each 8x8 matrix encodes to 9 + 16 + 512 + 8 = 545 bytes; a budget
        // of 1200 holds two.
        let (store, _, _) = PersistentCacheStore::open(&dir, 1200, None).unwrap();
        let a = store.persist(&item("A"), &mat(8), 10).unwrap().unwrap();
        assert_eq!(a.evicted, 0);
        let b = store.persist(&item("B"), &mat(8), 20).unwrap().unwrap();
        assert_eq!(b.evicted, 0);
        let c = store.persist(&item("C"), &mat(8), 30).unwrap().unwrap();
        assert_eq!(c.evicted, 1, "oldest entry tombstoned to fit the budget");
        assert_eq!(store.live_entries(), 2);
        drop(store);
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 2);
        assert!(rec.iter().all(|e| !lineage_eq(&e.root, &item("A"))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_wal_append_leaves_recoverable_torn_tail() {
        let dir = tmp_dir("crashwal");
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistWalAppend, &[1]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            assert!(store.persist(&item("B"), &mat(3), 20).is_err());
            assert!(store.crashed());
            // Dead process: later writes refuse without touching disk.
            assert!(store.persist(&item("C"), &mat(3), 30).is_err());
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1, "only the committed entry survives");
        assert!(rep.torn_tail_truncated);
        assert!(lineage_eq(&rec[0].root, &item("A")));
        // B's committed value file became an orphan of the torn record.
        assert_eq!(rep.orphans_gcd, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_value_commit_and_manifest_append_gcs_orphan() {
        let dir = tmp_dir("crashcommit");
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistCommit, &[1]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            store.persist(&item("A"), &mat(3), 10).unwrap().unwrap();
            assert!(store.persist(&item("B"), &mat(3), 20).is_err());
        }
        let (_s, rec, rep) = open(&dir);
        assert_eq!(rep.recovered, 1);
        assert!(!rep.torn_tail_truncated);
        assert_eq!(rep.orphans_gcd, 1, "orphan value file GC'd");
        assert!(lineage_eq(&rec[0].root, &item("A")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_rename_gcs_temp_file() {
        let dir = tmp_dir("crashrename");
        let inj = Arc::new(FaultInjector::new(0).fail_at(FaultSite::PersistRename, &[0]));
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, Some(inj)).unwrap();
            assert!(store.persist(&item("A"), &mat(3), 10).is_err());
        }
        let (_s, rec, rep) = open(&dir);
        assert!(rec.is_empty());
        assert_eq!(rep.orphans_gcd, 1, "temp file GC'd");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unusable_directory_degrades_to_none() {
        // A file where the directory should be.
        let path = tmp_dir("notadir");
        fs::write(&path, b"file").unwrap();
        assert!(PersistentCacheStore::open(&path, 0, None).is_none());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn value_file_single_byte_corruption_is_always_detected() {
        let dir = tmp_dir("valcorrupt");
        let (store, _, _) = open(&dir);
        let id = store.persist(&item("A"), &mat(3), 10).unwrap().unwrap().id;
        let path = dir.join("values").join(format!("v{id}.val"));
        let clean = fs::read(&path).unwrap();
        for pos in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[pos] ^= 0x20;
            fs::write(&path, &damaged).unwrap();
            assert!(
                read_value_file(&path).is_err(),
                "corruption at byte {pos} went undetected"
            );
        }
        fs::write(&path, &clean).unwrap();
        assert!(read_value_file(&path).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
