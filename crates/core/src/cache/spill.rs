//! Disk spilling of evicted cache entries (paper §4.3).
//!
//! Only matrices are spilled (scalars are too small to matter; lists are
//! dropped and recomputed). The format is a tiny self-describing binary
//! header followed by the raw `f64` buffer, written with the `bytes` crate.

use bytes::{Buf, BufMut, BytesMut};
use lima_matrix::{DenseMatrix, Value};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: u32 = 0x4C49_4D41; // "LIMA"

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// Manages the spill directory lifecycle; files are removed on drop.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
}

impl SpillStore {
    /// Creates a per-process spill directory under the system temp dir.
    pub fn new() -> std::io::Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "lima-spill-{}-{}",
            std::process::id(),
            NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        Ok(SpillStore { dir })
    }

    /// Spills a matrix value; returns the file path and bytes written.
    /// Returns `None` for non-matrix values (they are not spillable).
    pub fn spill(&self, value: &Value) -> std::io::Result<Option<(PathBuf, usize)>> {
        let m = match value {
            Value::Matrix(m) => m,
            _ => return Ok(None),
        };
        let path = self
            .dir
            .join(format!("e{}.bin", NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)));
        let bytes = write_matrix(&path, m)?;
        Ok(Some((path, bytes)))
    }

    /// Restores a previously spilled matrix and deletes the file.
    pub fn restore(&self, path: &Path) -> std::io::Result<Value> {
        let m = read_matrix(path)?;
        let _ = fs::remove_file(path);
        Ok(Value::matrix(m))
    }

    /// Removes a spill file without restoring (entry deleted while spilled).
    pub fn discard(&self, path: &Path) {
        let _ = fs::remove_file(path);
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

fn write_matrix(path: &Path, m: &DenseMatrix) -> std::io::Result<usize> {
    let mut buf = BytesMut::with_capacity(16 + m.len() * 8);
    buf.put_u32(MAGIC);
    buf.put_u64(m.rows() as u64);
    buf.put_u64(m.cols() as u64);
    for &v in m.data() {
        buf.put_f64(v);
    }
    let mut f = fs::File::create(path)?;
    f.write_all(&buf)?;
    Ok(buf.len())
}

fn read_matrix(path: &Path) -> std::io::Result<DenseMatrix> {
    let mut raw = Vec::new();
    fs::File::open(path)?.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if buf.remaining() < 20 || buf.get_u32() != MAGIC {
        return Err(bad("bad spill file header"));
    }
    let rows = buf.get_u64() as usize;
    let cols = buf.get_u64() as usize;
    if buf.remaining() != rows * cols * 8 {
        return Err(bad("truncated spill file"));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(buf.get_f64());
    }
    DenseMatrix::new(rows, cols, data).map_err(|e| bad(&e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_and_restore_round_trips() {
        let store = SpillStore::new().unwrap();
        let m = DenseMatrix::from_fn(13, 7, |i, j| (i * 7 + j) as f64 * 0.5 - 3.0);
        let v = Value::matrix(m.clone());
        let (path, bytes) = store.spill(&v).unwrap().unwrap();
        assert_eq!(bytes, 20 + 13 * 7 * 8);
        assert!(path.exists());
        let back = store.restore(&path).unwrap();
        assert!(back.as_matrix().unwrap().approx_eq(&m, 0.0));
        assert!(!path.exists(), "restore deletes the spill file");
    }

    #[test]
    fn non_matrix_values_are_not_spilled() {
        let store = SpillStore::new().unwrap();
        assert!(store.spill(&Value::f64(1.0)).unwrap().is_none());
        assert!(store.spill(&Value::list(vec![])).unwrap().is_none());
    }

    #[test]
    fn discard_removes_file() {
        let store = SpillStore::new().unwrap();
        let v = Value::matrix(DenseMatrix::zeros(2, 2));
        let (path, _) = store.spill(&v).unwrap().unwrap();
        store.discard(&path);
        assert!(!path.exists());
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let store = SpillStore::new().unwrap();
        let v = Value::matrix(DenseMatrix::zeros(4, 4));
        let (path, _) = store.spill(&v).unwrap().unwrap();
        fs::write(&path, b"garbage").unwrap();
        assert!(store.restore(&path).is_err());
        let truncated = {
            let mut buf = BytesMut::new();
            buf.put_u32(MAGIC);
            buf.put_u64(10);
            buf.put_u64(10);
            buf.put_f64(1.0);
            buf
        };
        fs::write(&path, &truncated).unwrap();
        assert!(store.restore(&path).is_err());
    }

    #[test]
    fn drop_cleans_directory() {
        let dir;
        {
            let store = SpillStore::new().unwrap();
            dir = store.dir.clone();
            let v = Value::matrix(DenseMatrix::zeros(2, 2));
            store.spill(&v).unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
