//! Disk spilling of evicted cache entries (paper §4.3).
//!
//! Only matrices are spilled (scalars are too small to matter; lists are
//! dropped and recomputed). The format (version 2) is a self-describing
//! binary header, the raw `f64` buffer, and a trailing FNV-1a-64 checksum
//! over everything before it, written with the `bytes` crate. The checksum
//! detects every single-byte corruption (each FNV step is injective in both
//! operands modulo 2^64), so a damaged spill file always restores to a clean
//! error — never to a silently wrong matrix.
//!
//! A [`crate::faults::FaultInjector`] can be attached to exercise write
//! failures, read failures, and on-disk corruption deterministically.

use crate::faults::{FaultInjector, FaultSite};
use bytes::{Buf, BufMut, BytesMut};
use lima_matrix::{DenseMatrix, Value};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: u32 = 0x4C49_4D41; // "LIMA"
const VERSION: u32 = 2;
/// magic + version + rows + cols.
const HEADER_BYTES: usize = 4 + 4 + 8 + 8;
/// Trailing FNV-1a-64 checksum.
const TRAILER_BYTES: usize = 8;

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// FNV-1a 64-bit hash of `data`.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Manages the spill directory lifecycle; files are removed on drop.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    faults: Option<Arc<FaultInjector>>,
}

impl SpillStore {
    /// Creates a per-process spill directory under the system temp dir.
    pub fn new() -> std::io::Result<Self> {
        Self::with_faults(None)
    }

    /// [`Self::new`] with an optional fault-injection harness attached.
    pub fn with_faults(faults: Option<Arc<FaultInjector>>) -> std::io::Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "lima-spill-{}-{}",
            std::process::id(),
            NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        Ok(SpillStore { dir, faults })
    }

    /// Spills a matrix value; returns the file path and bytes written.
    /// Returns `None` for non-matrix values (they are not spillable).
    pub fn spill(&self, value: &Value) -> std::io::Result<Option<(PathBuf, usize)>> {
        let m = match value {
            Value::Matrix(m) => m,
            _ => return Ok(None),
        };
        if let Some(f) = &self.faults {
            if f.should_fail(FaultSite::SlowSpill) {
                // Latency (not failure) injection: a degraded disk that still
                // completes writes, exercising deadline checks around I/O.
                std::thread::sleep(std::time::Duration::from_millis(
                    crate::faults::SLOW_SPILL_DELAY_MS,
                ));
            }
            if f.should_fail(FaultSite::SpillWrite) {
                return Err(FaultInjector::io_error(FaultSite::SpillWrite));
            }
        }
        let path = self.dir.join(format!(
            "e{}.bin",
            NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = write_matrix(&path, m)?;
        #[cfg(any(test, feature = "faults"))]
        if let Some(f) = &self.faults {
            if f.should_fail(FaultSite::SpillCorrupt) {
                // Flip one byte at a position derived from the injection
                // count; the damage is found at restore time, not now.
                corrupt_file(&path, f.injected(FaultSite::SpillCorrupt))?;
            }
        }
        Ok(Some((path, bytes)))
    }

    /// Restores a previously spilled matrix and deletes the file.
    pub fn restore(&self, path: &Path) -> std::io::Result<Value> {
        if let Some(f) = &self.faults {
            if f.should_fail(FaultSite::SpillRead) {
                return Err(FaultInjector::io_error(FaultSite::SpillRead));
            }
        }
        let m = read_matrix(path)?;
        let _ = fs::remove_file(path);
        Ok(Value::matrix(m))
    }

    /// Removes a spill file without restoring (entry deleted while spilled).
    /// A file already removed by external cleanup (tmpwatch, a parallel
    /// clear) is not a failure; only genuinely failed removals report
    /// `false`.
    pub fn discard(&self, path: &Path) -> bool {
        match fs::remove_file(path) {
            Ok(()) => true,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
            Err(_) => false,
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // The directory may already be gone (external temp cleanup); that is
        // the desired end state, not a failure worth surfacing.
        if let Err(e) = fs::remove_dir_all(&self.dir) {
            debug_assert!(
                e.kind() == std::io::ErrorKind::NotFound,
                "spill cleanup failed: {e}"
            );
        }
    }
}

/// XORs a deterministic position of the file with a nonzero mask (fault
/// injection and corruption tests). Compiled only for tests and the
/// `faults` feature: production builds carry no file-corruption helper.
#[cfg(any(test, feature = "faults"))]
pub fn corrupt_file(path: &Path, salt: u64) -> std::io::Result<()> {
    let mut raw = Vec::new();
    fs::File::open(path)?.read_to_end(&mut raw)?;
    if raw.is_empty() {
        return Ok(());
    }
    let pos = (salt as usize).wrapping_mul(0x9E37_79B9) % raw.len();
    raw[pos] ^= 0x01 | (salt as u8 & 0xFE);
    fs::write(path, raw)
}

fn write_matrix(path: &Path, m: &DenseMatrix) -> std::io::Result<usize> {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + m.len() * 8 + TRAILER_BYTES);
    buf.put_u32(MAGIC);
    buf.put_u32(VERSION);
    buf.put_u64(m.rows() as u64);
    buf.put_u64(m.cols() as u64);
    for &v in m.data() {
        buf.put_f64(v);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64(checksum);
    let mut f = fs::File::create(path)?;
    f.write_all(&buf)?;
    Ok(buf.len())
}

fn read_matrix(path: &Path) -> std::io::Result<DenseMatrix> {
    let mut raw = Vec::new();
    fs::File::open(path)?.read_to_end(&mut raw)?;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if raw.len() < HEADER_BYTES + TRAILER_BYTES {
        return Err(bad("spill file too short"));
    }
    let (body, trailer) = raw.split_at(raw.len() - TRAILER_BYTES);
    let mut t = trailer;
    if fnv1a(body) != t.get_u64() {
        return Err(bad("spill file checksum mismatch"));
    }
    let mut buf = body;
    if buf.get_u32() != MAGIC {
        return Err(bad("bad spill file header"));
    }
    let version = buf.get_u32();
    if version != VERSION {
        return Err(bad(&format!("unsupported spill format version {version}")));
    }
    let rows = buf.get_u64() as usize;
    let cols = buf.get_u64() as usize;
    if rows.checked_mul(cols).and_then(|n| n.checked_mul(8)) != Some(buf.remaining()) {
        return Err(bad("truncated spill file"));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(buf.get_f64());
    }
    DenseMatrix::new(rows, cols, data).map_err(|e| bad(&e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_and_restore_round_trips() {
        let store = SpillStore::new().unwrap();
        let m = DenseMatrix::from_fn(13, 7, |i, j| (i * 7 + j) as f64 * 0.5 - 3.0);
        let v = Value::matrix(m.clone());
        let (path, bytes) = store.spill(&v).unwrap().unwrap();
        assert_eq!(bytes, HEADER_BYTES + 13 * 7 * 8 + TRAILER_BYTES);
        assert!(path.exists());
        let back = store.restore(&path).unwrap();
        assert!(back.as_matrix().unwrap().approx_eq(&m, 0.0));
        assert!(!path.exists(), "restore deletes the spill file");
    }

    #[test]
    fn non_matrix_values_are_not_spilled() {
        let store = SpillStore::new().unwrap();
        assert!(store.spill(&Value::f64(1.0)).unwrap().is_none());
        assert!(store.spill(&Value::list(vec![])).unwrap().is_none());
    }

    #[test]
    fn discard_removes_file() {
        let store = SpillStore::new().unwrap();
        let v = Value::matrix(DenseMatrix::zeros(2, 2));
        let (path, _) = store.spill(&v).unwrap().unwrap();
        assert!(store.discard(&path));
        assert!(!path.exists());
    }

    #[test]
    fn discard_tolerates_already_missing_files() {
        let store = SpillStore::new().unwrap();
        let v = Value::matrix(DenseMatrix::zeros(2, 2));
        let (path, _) = store.spill(&v).unwrap().unwrap();
        fs::remove_file(&path).unwrap(); // external cleanup beat us to it
        assert!(store.discard(&path), "missing file is not a failure");
        assert!(store.discard(Path::new("/nonexistent/lima/spill.bin")));
    }

    #[test]
    fn drop_tolerates_externally_removed_directory() {
        let store = SpillStore::new().unwrap();
        let v = Value::matrix(DenseMatrix::zeros(2, 2));
        store.spill(&v).unwrap();
        fs::remove_dir_all(&store.dir).unwrap();
        drop(store); // must not panic (debug_assert accepts NotFound)
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let store = SpillStore::new().unwrap();
        let v = Value::matrix(DenseMatrix::zeros(4, 4));
        let (path, _) = store.spill(&v).unwrap().unwrap();
        fs::write(&path, b"garbage").unwrap();
        assert!(store.restore(&path).is_err());
        let truncated = {
            let mut buf = BytesMut::new();
            buf.put_u32(MAGIC);
            buf.put_u32(VERSION);
            buf.put_u64(10);
            buf.put_u64(10);
            buf.put_f64(1.0);
            let checksum = fnv1a(&buf);
            buf.put_u64(checksum);
            buf
        };
        fs::write(&path, &truncated).unwrap();
        assert!(store.restore(&path).is_err());
    }

    #[test]
    fn single_byte_corruption_is_always_detected() {
        let store = SpillStore::new().unwrap();
        let m = DenseMatrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let (path, bytes) = store.spill(&Value::matrix(m)).unwrap().unwrap();
        let clean = fs::read(&path).unwrap();
        assert_eq!(clean.len(), bytes);
        // Every byte position, corrupted, must fail the restore.
        for pos in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[pos] ^= 0x40;
            fs::write(&path, &damaged).unwrap();
            assert!(
                store.restore(&path).is_err(),
                "corruption at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn old_format_versions_are_rejected() {
        let store = SpillStore::new().unwrap();
        let (path, _) = store
            .spill(&Value::matrix(DenseMatrix::zeros(2, 2)))
            .unwrap()
            .unwrap();
        // A structurally valid file with a wrong version (checksum fixed up).
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u32(1);
        buf.put_u64(1);
        buf.put_u64(1);
        buf.put_f64(2.0);
        let checksum = fnv1a(&buf);
        buf.put_u64(checksum);
        fs::write(&path, &buf).unwrap();
        let err = store.restore(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn injected_write_and_read_faults_surface_as_errors() {
        let inj = Arc::new(
            FaultInjector::new(0)
                .fail_at(FaultSite::SpillWrite, &[0])
                .fail_at(FaultSite::SpillRead, &[1]),
        );
        let store = SpillStore::with_faults(Some(Arc::clone(&inj))).unwrap();
        let v = Value::matrix(DenseMatrix::zeros(2, 2));
        assert!(store.spill(&v).is_err(), "first write fails");
        let (path, _) = store.spill(&v).unwrap().unwrap();
        assert!(store.restore(&path).is_ok(), "first read passes");
        let (path, _) = store.spill(&v).unwrap().unwrap();
        assert!(store.restore(&path).is_err(), "second read fails");
        assert_eq!(inj.injected(FaultSite::SpillWrite), 1);
        assert_eq!(inj.injected(FaultSite::SpillRead), 1);
    }

    #[test]
    fn injected_corruption_is_caught_at_restore() {
        let inj = Arc::new(FaultInjector::new(0).fail_every(FaultSite::SpillCorrupt, 1));
        let store = SpillStore::with_faults(Some(inj)).unwrap();
        let v = Value::matrix(DenseMatrix::from_fn(5, 5, |i, j| (i * j) as f64));
        let (path, _) = store.spill(&v).unwrap().unwrap();
        let err = store.restore(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn drop_cleans_directory() {
        let dir;
        {
            let store = SpillStore::new().unwrap();
            dir = store.dir.clone();
            let v = Value::matrix(DenseMatrix::zeros(2, 2));
            store.spill(&v).unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
