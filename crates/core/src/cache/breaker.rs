//! Half-open circuit breaker for spill and persist I/O.
//!
//! PR-1's breakers latched open forever after `spill_failure_limit`
//! consecutive failures, permanently degrading eviction to delete-only even
//! when the underlying disk recovered. This breaker adds the classic third
//! state: after a cooldown window, one *probe* attempt is allowed through —
//! success closes the breaker again, failure re-opens it for a fresh window.
//!
//! `limit == 0` disables the breaker entirely (every attempt allowed);
//! `cooldown_ms == 0` restores the old latch-open-forever behaviour.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Verdict for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attempt {
    /// Breaker closed: proceed normally.
    Allowed,
    /// Breaker half-open: this is the single probe for the current cooldown
    /// window — the caller must report the outcome via `record_*`.
    Probe,
    /// Breaker open: skip the operation.
    Rejected,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// Consecutive-failure breaker with half-open probing; see module docs.
#[derive(Debug)]
pub struct CircuitBreaker {
    limit: u32,
    cooldown: Duration,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker opening after `limit` consecutive failures and
    /// probing once per `cooldown_ms` window.
    pub fn new(limit: u32, cooldown_ms: u64) -> Self {
        CircuitBreaker {
            limit,
            cooldown: Duration::from_millis(cooldown_ms),
            state: Mutex::new(State::Closed { failures: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // The breaker holds no invariants a panicked holder could break:
        // recover the poisoned guard rather than propagate.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Gate one attempt. `Probe` grants exactly one in-flight attempt per
    /// cooldown window; concurrent callers see `Rejected` until the probe
    /// outcome is recorded.
    pub fn allow(&self) -> Attempt {
        if self.limit == 0 {
            return Attempt::Allowed;
        }
        let mut st = self.lock();
        match *st {
            State::Closed { .. } => Attempt::Allowed,
            State::Open { since }
                if !self.cooldown.is_zero() && since.elapsed() >= self.cooldown =>
            {
                *st = State::HalfOpen;
                Attempt::Probe
            }
            State::Open { .. } | State::HalfOpen => Attempt::Rejected,
        }
    }

    /// Reports success: closes the breaker and resets the failure count.
    pub fn record_success(&self) {
        if self.limit == 0 {
            return;
        }
        *self.lock() = State::Closed { failures: 0 };
    }

    /// Reports a failure: increments toward the limit, or re-opens a fresh
    /// cooldown window after a failed probe.
    pub fn record_failure(&self) {
        if self.limit == 0 {
            return;
        }
        let mut st = self.lock();
        *st = match *st {
            State::Closed { failures } if failures + 1 >= self.limit => State::Open {
                since: Instant::now(),
            },
            State::Closed { failures } => State::Closed {
                failures: failures + 1,
            },
            State::Open { .. } | State::HalfOpen => State::Open {
                since: Instant::now(),
            },
        };
    }

    /// True while the breaker is open or probing (i.e. not fully closed).
    pub fn is_open(&self) -> bool {
        if self.limit == 0 {
            return false;
        }
        !matches!(*self.lock(), State::Closed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_consecutive_failures_and_success_resets() {
        let b = CircuitBreaker::new(3, 60_000);
        assert_eq!(b.allow(), Attempt::Allowed);
        b.record_failure();
        b.record_failure();
        b.record_success(); // streak broken
        b.record_failure();
        b.record_failure();
        assert_eq!(b.allow(), Attempt::Allowed);
        b.record_failure(); // third consecutive → open
        assert_eq!(b.allow(), Attempt::Rejected);
        assert!(b.is_open());
    }

    #[test]
    fn half_open_grants_single_probe_after_cooldown() {
        let b = CircuitBreaker::new(1, 10);
        b.record_failure();
        assert_eq!(b.allow(), Attempt::Rejected);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.allow(), Attempt::Probe);
        // Concurrent attempts during the probe are rejected.
        assert_eq!(b.allow(), Attempt::Rejected);
        b.record_success();
        assert_eq!(b.allow(), Attempt::Allowed);
        assert!(!b.is_open());
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_window() {
        let b = CircuitBreaker::new(1, 10);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.allow(), Attempt::Probe);
        b.record_failure();
        assert_eq!(b.allow(), Attempt::Rejected);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.allow(), Attempt::Probe);
    }

    #[test]
    fn zero_limit_disables_breaker() {
        let b = CircuitBreaker::new(0, 10);
        for _ in 0..10 {
            b.record_failure();
        }
        assert_eq!(b.allow(), Attempt::Allowed);
        assert!(!b.is_open());
    }

    #[test]
    fn zero_cooldown_latches_open_forever() {
        let b = CircuitBreaker::new(1, 0);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(b.allow(), Attempt::Rejected);
    }
}
