//! Lineage-cache entries and their metadata (paper §4.1/§4.3): data value or
//! placeholder, cache status, measured computation time, access statistics,
//! and the lineage-trace height used by the DAG-Height policy.

use crate::lineage::item::LinKey;
use lima_matrix::Value;
use std::path::PathBuf;

/// Lifecycle state of a cache entry.
#[derive(Debug, Clone)]
pub enum EntryState {
    /// Placeholder: some thread is computing the value; others block
    /// (paper §4.1, task-parallel loops).
    Computing,
    /// Value resident in memory.
    Cached(Value),
    /// Value evicted to disk; restorable.
    Spilled { path: PathBuf, bytes: usize },
    /// Shell: value dropped, statistics retained so future misses can raise
    /// the entry's eviction score again (paper Fig 8(a): P2 entries get
    /// evicted, their scores increase due to misses, and they get reused).
    Evicted,
}

/// A cache entry; the key (lineage trace) lives in the cache map.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Current state.
    pub state: EntryState,
    /// Measured computation time of the cached object in nanoseconds.
    pub compute_ns: u64,
    /// Height of the lineage trace (distance from leaves).
    pub height: u32,
    /// Logical timestamp of the last access.
    pub last_access: u64,
    /// Reuse hits against this entry.
    pub hits: u64,
    /// Probes that missed because the value was absent/evicted.
    pub misses: u64,
    /// In-memory size of the value in bytes (0 while Computing/Evicted).
    pub size: usize,
    /// Entry-group tag: entries caching the *same object* at different
    /// levels (operation vs. function) share this pointer tag, so spilling
    /// can be deferred until the whole group is evicted (paper §4.3).
    pub group: usize,
    /// Manifest ID in the persistent cache store, when the entry has been
    /// durably written (or was recovered from disk).
    pub persist_id: Option<u64>,
    /// True when the entry was repopulated from a prior process by startup
    /// recovery; hits against it count as `persist_hits`.
    pub from_persist: bool,
    /// True once this entry has contributed to `saved_compute_ns` (directly
    /// on its first hit, or transitively when an enclosing composite entry
    /// was hit). Savings attribution credits each entry at most once.
    pub credited: bool,
    /// Nanoseconds this entry actually credited to `saved_compute_ns` when
    /// it was first hit (0 if never hit, or if a composite hit absorbed it).
    pub credited_ns: u64,
    /// For composite (function/block) entries: keys of entries fulfilled
    /// within this entry's computation window on the same thread. Their
    /// compute time is a subset of this entry's `compute_ns`, which is what
    /// lets a composite hit credit only the not-yet-credited remainder.
    pub children: Vec<LinKey>,
}

impl CacheEntry {
    /// New placeholder entry.
    pub fn computing(height: u32, now: u64) -> Self {
        CacheEntry {
            state: EntryState::Computing,
            compute_ns: 0,
            height,
            last_access: now,
            hits: 0,
            misses: 1, // the probe that created the placeholder missed
            size: 0,
            group: 0,
            persist_id: None,
            from_persist: false,
            credited: false,
            credited_ns: 0,
            children: Vec::new(),
        }
    }

    /// True when a value is immediately available in memory.
    pub fn is_resident(&self) -> bool {
        matches!(self.state, EntryState::Cached(_))
    }

    /// True while a placeholder is pending.
    pub fn is_computing(&self) -> bool {
        matches!(self.state, EntryState::Computing)
    }

    /// True when the value lives on disk.
    pub fn is_spilled(&self) -> bool {
        matches!(self.state, EntryState::Spilled { .. })
    }

    /// Total references — the `(r_h + r_m)` factor of the Cost&Size score.
    pub fn references(&self) -> u64 {
        self.hits + self.misses
    }

    /// Cost&Size eviction score `(r_h + r_m) · c(o) / s(o)`; lower scores are
    /// evicted first (paper Table 1).
    pub fn cost_size_score(&self) -> f64 {
        let size = self.size.max(1) as f64;
        self.references() as f64 * self.compute_ns as f64 / size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholder_lifecycle_flags() {
        let e = CacheEntry::computing(3, 17);
        assert!(e.is_computing());
        assert!(!e.is_resident());
        assert!(!e.is_spilled());
        assert_eq!(e.misses, 1);
        assert_eq!(e.height, 3);
        assert_eq!(e.last_access, 17);
    }

    #[test]
    fn cost_size_score_prefers_expensive_small_hot_entries() {
        let mut cheap_big = CacheEntry::computing(1, 0);
        cheap_big.state = EntryState::Cached(Value::f64(0.0));
        cheap_big.compute_ns = 1_000;
        cheap_big.size = 1_000_000;
        let mut costly_small = cheap_big.clone();
        costly_small.compute_ns = 1_000_000;
        costly_small.size = 1_000;
        assert!(costly_small.cost_size_score() > cheap_big.cost_size_score());
        // More references raise the score.
        let mut hot = cheap_big.clone();
        hot.hits = 10;
        assert!(hot.cost_size_score() > cheap_big.cost_size_score());
    }

    #[test]
    fn score_handles_zero_size() {
        let e = CacheEntry::computing(0, 0);
        assert!(e.cost_size_score().is_finite());
    }
}
