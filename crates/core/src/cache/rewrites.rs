//! Partial-reuse rewrites (paper §4.2).
//!
//! When a full-reuse probe misses, LIMA pattern-matches the *about-to-execute*
//! lineage item against a list of source→target rewrites. If a component of
//! the target pattern is found in the cache, the output is assembled from the
//! cached intermediate plus an inexpensive compensation computed with the
//! matrix kernels (semantically the paper's "compile and execute actual
//! runtime instructions").
//!
//! Implemented meta-rewrites (each with internal variants):
//!
//! 1.  `rbind(X,ΔX) %*% Y            → rbind(X%*%Y, ΔX%*%Y)`
//! 2.  `X %*% cbind(Y,ΔY)            → cbind(X%*%Y, X%*%ΔY)`
//! 3.  `X %*% cbind(Y,1)             → cbind(X%*%Y, rowSums(X))` (variant of 2)
//! 4.  `X %*% Y[,1:k]                → (X%*%Y)[,1:k]`
//! 5.  `tsmm(rbind(X,ΔX))            → tsmm(X) + tsmm(ΔX)`
//! 6.  `tsmm(cbind(X,ΔX))            → [[tsmm(X), XᵀΔX],[ΔXᵀX, tsmm(ΔX)]]`
//! 7.  `tsmm(cbind(X,1))             → augment with colSums(X), nrow(X)` (variant of 6)
//! 8.  `cbind(X,ΔX) ⊙ cbind(Y,ΔY)    → cbind(X⊙Y, ΔX⊙ΔY)`
//! 9.  `colAgg(cbind(X,ΔX))          → cbind(colAgg(X), colAgg(ΔX))`
//! 10. `t(rbind(Xa,Xb)) %*% rbind(Ya,Yb) → t(Xa)%*%Ya + t(Xb)%*%Yb`
//! 11. `rowAgg(rbind(X,ΔX))          → rbind(rowAgg(X), rowAgg(ΔX))`
//! 12. `t(cbind(X,ΔX))               → rbind(t(X), t(ΔX))`
//! 13. `fullAgg(cbind/rbind(X,ΔX))   → combine(fullAgg(X), fullAgg(ΔX))`
//!     (sum/sumsq/min/max)
//! 14. `rbind(X,ΔX) ⊙ rbind(Y,ΔY)    → rbind(X⊙Y, ΔX⊙ΔY)`
//!
//! Shapes needed to size the compensations come from the shape metadata the
//! runtime registers on lineage items, or from cached component shapes.

use crate::cache::LineageCache;
use crate::lineage::item::{LinRef, LineageItem};
use crate::opcodes as op;
use crate::stats::LimaStats;
use lima_matrix::ops::{
    agg, cbind, col_agg, ew_matrix_matrix, matmult, rbind, row_agg, slice, transpose, tsmm, AggFn,
    BinOp, TsmmSide,
};
use lima_matrix::{DenseMatrix, MatrixRef, Value};
use std::time::Instant;

/// Result of a successful partial reuse.
#[derive(Debug)]
pub struct PartialHit {
    /// The assembled output value.
    pub value: Value,
    /// Name of the rewrite that fired (for statistics / tests).
    pub rewrite: &'static str,
}

/// Attempts all partial-reuse rewrites for `item`, whose immediate input
/// values are `input_values` (same order as `item.inputs()`).
pub fn try_partial_reuse(
    cache: &LineageCache,
    item: &LinRef,
    input_values: &[Value],
) -> Option<PartialHit> {
    if !cache.partial_reuse() {
        return None;
    }
    let t0 = Instant::now();
    let hit = dispatch(cache, item, input_values);
    if let Some(h) = &hit {
        LimaStats::bump(&cache.stats().partial_hits);
        LimaStats::add(
            &cache.stats().compensation_ns,
            t0.elapsed().as_nanos() as u64,
        );
        let _ = h; // value returned below
    }
    hit
}

fn dispatch(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    match item.opcode() {
        op::MATMULT => try_mm_rewrites(cache, item, vals),
        op::TSMM => try_tsmm_rewrites(cache, item, vals),
        op::TRANSPOSE => try_transpose_cbind(cache, item, vals),
        o if BinOp::from_opcode(o).is_some() => {
            try_ew_cbind(cache, item, vals).or_else(|| try_ew_rbind(cache, item, vals))
        }
        o if o.starts_with(op::COL_AGG_PREFIX) => try_colagg_cbind(cache, item, vals),
        o if o.starts_with(op::ROW_AGG_PREFIX) => try_rowagg_rbind(cache, item, vals),
        o if o.starts_with(op::FULL_AGG_PREFIX) => try_fullagg_concat(cache, item, vals),
        _ => None,
    }
}

/// Peeks a matrix value for a probe lineage item.
fn peek_matrix(cache: &LineageCache, probe: &LinRef) -> Option<MatrixRef> {
    match cache.peek(probe) {
        Some(Value::Matrix(m)) => Some(m),
        _ => None,
    }
}

fn as_matrix(v: &Value) -> Option<&MatrixRef> {
    match v {
        Value::Matrix(m) => Some(m),
        _ => None,
    }
}

/// True if `lin` denotes a constant fill of `value` with a single column
/// (the appended intercept column `matrix(1, nrow(X), 1)`).
fn is_const_col(lin: &LinRef, value: f64) -> bool {
    if lin.opcode() != op::MATRIX_FILL {
        return false;
    }
    // Fill data format: "value rows cols" (see runtime tracing).
    let Some(data) = lin.data() else { return false };
    let mut parts = data.split(' ');
    let v: f64 = match parts.next().and_then(|s| s.parse().ok()) {
        Some(v) => v,
        None => return false,
    };
    let _rows = parts.next();
    let cols: usize = match parts.next().and_then(|s| s.parse().ok()) {
        Some(c) => c,
        None => return false,
    };
    v == value && cols == 1
}

fn probe_mm(a: &LinRef, b: &LinRef) -> LinRef {
    LineageItem::op(op::MATMULT, vec![a.clone(), b.clone()])
}

fn probe_tsmm(x: &LinRef) -> LinRef {
    LineageItem::op_with_data(op::TSMM, "LEFT", vec![x.clone()])
}

/// Rewrites 1–4 and 10: matrix-multiply patterns.
fn try_mm_rewrites(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    let [a_lin, b_lin] = item.inputs() else {
        return None;
    };
    let av = as_matrix(vals.first()?)?;
    let bv = as_matrix(vals.get(1)?)?;

    // (10) t(rbind(Xa,Xb)) %*% rbind(Ya,Yb) → t(Xa)%*%Ya + t(Xb)%*%Yb
    if a_lin.opcode() == op::TRANSPOSE && b_lin.opcode() == op::RBIND {
        if let [inner] = a_lin.inputs() {
            if inner.opcode() == op::RBIND {
                let [xa, _xb] = inner.inputs() else {
                    return None;
                };
                let [ya, _yb] = b_lin.inputs() else {
                    return None;
                };
                let probe = probe_mm(
                    &LineageItem::op(op::TRANSPOSE, vec![xa.clone()]),
                    &ya.clone(),
                );
                if let Some(head) = peek_matrix(cache, &probe) {
                    let na = xa.shape().map(|(r, _)| r).or(ya.shape().map(|(r, _)| r))?;
                    if na < bv.rows() && na < av.cols() {
                        // av is already t(rbind(Xa,Xb)): k × (na+nb)
                        let t_tail = slice(av, 0, av.rows() - 1, na, av.cols() - 1).ok()?;
                        let y_tail = slice(bv, na, bv.rows() - 1, 0, bv.cols() - 1).ok()?;
                        let comp = matmult(&t_tail, &y_tail).ok()?;
                        let sum = ew_matrix_matrix(BinOp::Add, &head, &comp).ok()?;
                        return Some(PartialHit {
                            value: Value::matrix(sum),
                            rewrite: "mm-t-rbind-pair",
                        });
                    }
                }
            }
        }
    }

    // (1) rbind(X,ΔX) %*% Y → rbind(X%*%Y, ΔX%*%Y)
    if a_lin.opcode() == op::RBIND {
        let [x, _dx] = a_lin.inputs() else {
            return None;
        };
        if let Some(xy) = peek_matrix(cache, &probe_mm(x, b_lin)) {
            let nx = xy.rows();
            if nx < av.rows() && xy.cols() == bv.cols() {
                let dxv = slice(av, nx, av.rows() - 1, 0, av.cols() - 1).ok()?;
                let comp = matmult(&dxv, bv).ok()?;
                let out = rbind(&xy, &comp).ok()?;
                return Some(PartialHit {
                    value: Value::matrix(out),
                    rewrite: "mm-rbind-left",
                });
            }
        }
    }

    // (2)/(3) X %*% cbind(Y,ΔY) → cbind(X%*%Y, X%*%ΔY | rowSums(X))
    if b_lin.opcode() == op::CBIND {
        let [y, dy] = b_lin.inputs() else { return None };
        if let Some(xy) = peek_matrix(cache, &probe_mm(a_lin, y)) {
            let ky = xy.cols();
            if ky < bv.cols() && xy.rows() == av.rows() {
                let comp = if is_const_col(dy, 1.0) && bv.cols() - ky == 1 {
                    row_agg(av, AggFn::Sum)
                } else {
                    let dyv = slice(bv, 0, bv.rows() - 1, ky, bv.cols() - 1).ok()?;
                    matmult(av, &dyv).ok()?
                };
                let out = cbind(&xy, &comp).ok()?;
                return Some(PartialHit {
                    value: Value::matrix(out),
                    rewrite: if is_const_col(dy, 1.0) {
                        "mm-cbind-ones"
                    } else {
                        "mm-cbind-right"
                    },
                });
            }
        }
    }

    // (4) X %*% (Y[,1:k]) → (X%*%Y)[,1:k]
    if b_lin.opcode() == op::RIGHT_INDEX {
        let [y] = b_lin.inputs() else { return None };
        let bounds: Vec<usize> = b_lin
            .data()?
            .split(' ')
            .filter_map(|s| s.parse().ok())
            .collect();
        let [rl, ru, cl, cu] = bounds[..] else {
            return None;
        };
        // Full row range required.
        let (y_rows, _) = y.shape()?;
        if rl == 0 && ru == y_rows - 1 {
            if let Some(xy) = peek_matrix(cache, &probe_mm(a_lin, y)) {
                if cu < xy.cols() {
                    let out = slice(&xy, 0, xy.rows() - 1, cl, cu).ok()?;
                    return Some(PartialHit {
                        value: Value::matrix(out),
                        rewrite: "mm-indexed-right",
                    });
                }
            }
        }
    }

    None
}

/// Rewrites 5–7: tsmm patterns (`dsyrk` in the paper's notation).
fn try_tsmm_rewrites(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    if item.data() != Some("LEFT") {
        return None;
    }
    let [c_lin] = item.inputs() else { return None };
    let cv = as_matrix(vals.first()?)?;

    // (5) tsmm(rbind(X,ΔX)) → tsmm(X) + tsmm(ΔX)
    if c_lin.opcode() == op::RBIND {
        let [x, _dx] = c_lin.inputs() else {
            return None;
        };
        if let Some(ts) = peek_matrix(cache, &probe_tsmm(x)) {
            let nx = x.shape().map(|(r, _)| r)?;
            if nx < cv.rows() && ts.cols() == cv.cols() {
                let dxv = slice(cv, nx, cv.rows() - 1, 0, cv.cols() - 1).ok()?;
                let comp = tsmm(&dxv, TsmmSide::Left).ok()?;
                let out = ew_matrix_matrix(BinOp::Add, &ts, &comp).ok()?;
                return Some(PartialHit {
                    value: Value::matrix(out),
                    rewrite: "tsmm-rbind",
                });
            }
        }
    }

    // (6)/(7) tsmm(cbind(X,ΔX)) → blocked assembly
    if c_lin.opcode() == op::CBIND {
        let [x, dx] = c_lin.inputs() else { return None };
        if let Some(ts) = peek_matrix(cache, &probe_tsmm(x)) {
            let kx = ts.cols();
            if kx >= cv.cols() {
                return None;
            }
            let xv = slice(cv, 0, cv.rows() - 1, 0, kx - 1).ok()?;
            if is_const_col(dx, 1.0) && cv.cols() - kx == 1 {
                // tsmm(cbind(X,1)) = [[XᵀX, colSums(X)ᵀ],[colSums(X), n]]
                let cs = col_agg(&xv, AggFn::Sum); // 1 × kx
                let cs_t = transpose(&cs); // kx × 1
                let n = DenseMatrix::filled(1, 1, cv.rows() as f64);
                let top = cbind(&ts, &cs_t).ok()?;
                let bottom = cbind(&cs, &n).ok()?;
                let out = rbind(&top, &bottom).ok()?;
                return Some(PartialHit {
                    value: Value::matrix(out),
                    rewrite: "tsmm-cbind-ones",
                });
            }
            let dxv = slice(cv, 0, cv.rows() - 1, kx, cv.cols() - 1).ok()?;
            let xtdx = matmult(&transpose(&xv), &dxv).ok()?;
            let dxtx = transpose(&xtdx);
            let dxtdx = tsmm(&dxv, TsmmSide::Left).ok()?;
            let top = cbind(&ts, &xtdx).ok()?;
            let bottom = cbind(&dxtx, &dxtdx).ok()?;
            let out = rbind(&top, &bottom).ok()?;
            return Some(PartialHit {
                value: Value::matrix(out),
                rewrite: "tsmm-cbind",
            });
        }
    }

    None
}

/// Rewrite 8: `cbind(X,ΔX) ⊙ cbind(Y,ΔY) → cbind(X⊙Y, ΔX⊙ΔY)`.
fn try_ew_cbind(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    let bin = BinOp::from_opcode(item.opcode())?;
    let [a_lin, b_lin] = item.inputs() else {
        return None;
    };
    if a_lin.opcode() != op::CBIND || b_lin.opcode() != op::CBIND {
        return None;
    }
    let av = as_matrix(vals.first()?)?;
    let bv = as_matrix(vals.get(1)?)?;
    if av.shape() != bv.shape() {
        return None;
    }
    let [x, _dx] = a_lin.inputs() else {
        return None;
    };
    let [y, _dy] = b_lin.inputs() else {
        return None;
    };
    let probe = LineageItem::op(item.opcode(), vec![x.clone(), y.clone()]);
    let head = peek_matrix(cache, &probe)?;
    let k = head.cols();
    // The splits must align for the rewrite to be sound.
    let kx = x.shape().map(|(_, c)| c)?;
    let ky = y.shape().map(|(_, c)| c)?;
    if kx != ky || kx != k || k >= av.cols() || head.rows() != av.rows() {
        return None;
    }
    let dxv = slice(av, 0, av.rows() - 1, k, av.cols() - 1).ok()?;
    let dyv = slice(bv, 0, bv.rows() - 1, k, bv.cols() - 1).ok()?;
    let comp = ew_matrix_matrix(bin, &dxv, &dyv).ok()?;
    let out = cbind(&head, &comp).ok()?;
    Some(PartialHit {
        value: Value::matrix(out),
        rewrite: "ew-cbind-pair",
    })
}

/// Rewrite 9: `colAgg(cbind(X,ΔX)) → cbind(colAgg(X), colAgg(ΔX))`.
/// Sound for sum/min/max/mean/sumsq/var — column aggregates are per-column.
fn try_colagg_cbind(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    let fname = item.opcode().strip_prefix(op::COL_AGG_PREFIX)?;
    let f = AggFn::from_name(fname)?;
    let [c_lin] = item.inputs() else { return None };
    if c_lin.opcode() != op::CBIND {
        return None;
    }
    let cv = as_matrix(vals.first()?)?;
    let [x, _dx] = c_lin.inputs() else {
        return None;
    };
    let probe = LineageItem::op(item.opcode(), vec![x.clone()]);
    let head = peek_matrix(cache, &probe)?;
    let k = head.cols();
    if k >= cv.cols() || head.rows() != 1 {
        return None;
    }
    let dxv = slice(cv, 0, cv.rows() - 1, k, cv.cols() - 1).ok()?;
    let comp = col_agg(&dxv, f);
    let out = cbind(&head, &comp).ok()?;
    Some(PartialHit {
        value: Value::matrix(out),
        rewrite: "colagg-cbind",
    })
}

/// Row-aggregate variant of rewrite 9 for `rbind`:
/// `rowAgg(rbind(X,ΔX)) → rbind(rowAgg(X), rowAgg(ΔX))`.
fn try_rowagg_rbind(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    let fname = item.opcode().strip_prefix(op::ROW_AGG_PREFIX)?;
    let f = AggFn::from_name(fname)?;
    let [r_lin] = item.inputs() else { return None };
    if r_lin.opcode() != op::RBIND {
        return None;
    }
    let rv = as_matrix(vals.first()?)?;
    let [x, _dx] = r_lin.inputs() else {
        return None;
    };
    let probe = LineageItem::op(item.opcode(), vec![x.clone()]);
    let head = peek_matrix(cache, &probe)?;
    let n = head.rows();
    if n >= rv.rows() || head.cols() != 1 {
        return None;
    }
    let dxv = slice(rv, n, rv.rows() - 1, 0, rv.cols() - 1).ok()?;
    let comp = agg::row_agg(&dxv, f);
    let out = rbind(&head, &comp).ok()?;
    Some(PartialHit {
        value: Value::matrix(out),
        rewrite: "rowagg-rbind",
    })
}

/// Rewrite 12: `t(cbind(X,ΔX)) → rbind(t(X), t(ΔX))` with cached `t(X)`.
fn try_transpose_cbind(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    let [c_lin] = item.inputs() else { return None };
    if c_lin.opcode() != op::CBIND {
        return None;
    }
    let cv = as_matrix(vals.first()?)?;
    let [x, _dx] = c_lin.inputs() else {
        return None;
    };
    let head = peek_matrix(cache, &LineageItem::op(op::TRANSPOSE, vec![x.clone()]))?;
    let k = head.rows(); // t(X) is k × m
    if k >= cv.cols() || head.cols() != cv.rows() {
        return None;
    }
    let dxv = slice(cv, 0, cv.rows() - 1, k, cv.cols() - 1).ok()?;
    let out = rbind(&head, &transpose(&dxv)).ok()?;
    Some(PartialHit {
        value: Value::matrix(out),
        rewrite: "transpose-cbind",
    })
}

/// Rewrite 14: `rbind(X,ΔX) ⊙ rbind(Y,ΔY) → rbind(X⊙Y, ΔX⊙ΔY)`.
fn try_ew_rbind(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    let bin = BinOp::from_opcode(item.opcode())?;
    let [a_lin, b_lin] = item.inputs() else {
        return None;
    };
    if a_lin.opcode() != op::RBIND || b_lin.opcode() != op::RBIND {
        return None;
    }
    let av = as_matrix(vals.first()?)?;
    let bv = as_matrix(vals.get(1)?)?;
    if av.shape() != bv.shape() {
        return None;
    }
    let [x, _dx] = a_lin.inputs() else {
        return None;
    };
    let [y, _dy] = b_lin.inputs() else {
        return None;
    };
    let probe = LineageItem::op(item.opcode(), vec![x.clone(), y.clone()]);
    let head = peek_matrix(cache, &probe)?;
    let n = head.rows();
    let nx = x.shape().map(|(r, _)| r)?;
    let ny = y.shape().map(|(r, _)| r)?;
    if nx != ny || nx != n || n >= av.rows() || head.cols() != av.cols() {
        return None;
    }
    let dxv = slice(av, n, av.rows() - 1, 0, av.cols() - 1).ok()?;
    let dyv = slice(bv, n, bv.rows() - 1, 0, bv.cols() - 1).ok()?;
    let comp = ew_matrix_matrix(bin, &dxv, &dyv).ok()?;
    let out = rbind(&head, &comp).ok()?;
    Some(PartialHit {
        value: Value::matrix(out),
        rewrite: "ew-rbind-pair",
    })
}

/// Rewrite 13: decomposable full aggregates over concatenations —
/// `sum(cbind(X,ΔX)) = sum(X) + sum(ΔX)`, `min/max` via the combiner.
fn try_fullagg_concat(cache: &LineageCache, item: &LinRef, vals: &[Value]) -> Option<PartialHit> {
    let fname = item.opcode().strip_prefix(op::FULL_AGG_PREFIX)?;
    let f = AggFn::from_name(fname)?;
    // Mean/variance do not decompose without cardinality bookkeeping.
    if !matches!(f, AggFn::Sum | AggFn::SumSq | AggFn::Min | AggFn::Max) {
        return None;
    }
    let [c_lin] = item.inputs() else { return None };
    let concat_cols = match c_lin.opcode() {
        o if o == op::CBIND => true,
        o if o == op::RBIND => false,
        _ => return None,
    };
    let cv = as_matrix(vals.first()?)?;
    let [x, _dx] = c_lin.inputs() else {
        return None;
    };
    let probe = LineageItem::op(item.opcode(), vec![x.clone()]);
    let head = match cache.peek(&probe) {
        Some(Value::Scalar(s)) => s.as_f64().ok()?,
        _ => return None,
    };
    let (xr, xc) = x.shape()?;
    let delta = if concat_cols {
        if xr != cv.rows() || xc >= cv.cols() {
            return None;
        }
        slice(cv, 0, cv.rows() - 1, xc, cv.cols() - 1).ok()?
    } else {
        if xc != cv.cols() || xr >= cv.rows() {
            return None;
        }
        slice(cv, xr, cv.rows() - 1, 0, cv.cols() - 1).ok()?
    };
    let tail = agg::full_agg(&delta, f);
    let combined = match f {
        AggFn::Sum | AggFn::SumSq => head + tail,
        AggFn::Min => head.min(tail),
        AggFn::Max => head.max(tail),
        _ => unreachable!("filtered above"),
    };
    Some(PartialHit {
        value: Value::f64(combined),
        rewrite: "fullagg-concat",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LimaConfig;
    use std::sync::Arc;

    fn cache() -> Arc<LineageCache> {
        LineageCache::new(LimaConfig::default())
    }

    fn leaf(name: &str, rows: usize, cols: usize) -> LinRef {
        let l = LineageItem::op_with_data("read", name, vec![]);
        l.set_shape(rows, cols);
        l
    }

    fn mat(rows: usize, cols: usize, salt: u64) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |i, j| {
            (((i as u64 * 31 + j as u64 * 7 + salt) % 13) as f64) - 6.0
        })
    }

    #[test]
    fn mm_rbind_left_assembles_from_cached_head() {
        let c = cache();
        let (x, dx, y) = (leaf("X", 6, 4), leaf("dX", 2, 4), leaf("Y", 4, 3));
        let (xv, dxv, yv) = (mat(6, 4, 1), mat(2, 4, 2), mat(4, 3, 3));
        let xy = matmult(&xv, &yv).unwrap();
        c.put(&probe_mm(&x, &y), &Value::matrix(xy), 1_000);

        let rb = LineageItem::op(op::RBIND, vec![x, dx]);
        rb.set_shape(8, 4);
        let item = probe_mm(&rb, &y);
        let rv = rbind(&xv, &dxv).unwrap();
        let hit = try_partial_reuse(
            &c,
            &item,
            &[Value::matrix(rv.clone()), Value::matrix(yv.clone())],
        )
        .expect("rewrite fires");
        assert_eq!(hit.rewrite, "mm-rbind-left");
        let expect = matmult(&rv, &yv).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
        assert_eq!(LimaStats::get(&c.stats().partial_hits), 1);
    }

    #[test]
    fn mm_cbind_right_and_ones_variant() {
        let c = cache();
        let (x, y) = (leaf("X", 5, 4), leaf("Y", 4, 3));
        let (xv, yv) = (mat(5, 4, 1), mat(4, 3, 2));
        let xy = matmult(&xv, &yv).unwrap();
        c.put(&probe_mm(&x, &y), &Value::matrix(xy), 1_000);

        // Generic ΔY.
        let dy = leaf("dY", 4, 2);
        let dyv = mat(4, 2, 3);
        let cb = LineageItem::op(op::CBIND, vec![y.clone(), dy]);
        let item = probe_mm(&x, &cb);
        let cv = cbind(&yv, &dyv).unwrap();
        let hit = try_partial_reuse(
            &c,
            &item,
            &[Value::matrix(xv.clone()), Value::matrix(cv.clone())],
        )
        .expect("rewrite fires");
        assert_eq!(hit.rewrite, "mm-cbind-right");
        let expect = matmult(&xv, &cv).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));

        // Ones variant: ΔY = matrix(1, 4, 1).
        let ones_lin = LineageItem::op_with_data(op::MATRIX_FILL, "1 4 1", vec![]);
        ones_lin.set_shape(4, 1);
        let cb1 = LineageItem::op(op::CBIND, vec![y.clone(), ones_lin]);
        let item = probe_mm(&x, &cb1);
        let ones = DenseMatrix::filled(4, 1, 1.0);
        let cv1 = cbind(&yv, &ones).unwrap();
        let hit = try_partial_reuse(
            &c,
            &item,
            &[Value::matrix(xv.clone()), Value::matrix(cv1.clone())],
        )
        .expect("ones rewrite fires");
        assert_eq!(hit.rewrite, "mm-cbind-ones");
        let expect = matmult(&xv, &cv1).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn mm_indexed_right_slices_cached_product() {
        let c = cache();
        let (x, y) = (leaf("X", 5, 4), leaf("Y", 4, 6));
        let (xv, yv) = (mat(5, 4, 1), mat(4, 6, 2));
        let xy = matmult(&xv, &yv).unwrap();
        c.put(&probe_mm(&x, &y), &Value::matrix(xy.clone()), 1_000);

        let sl = LineageItem::op_with_data(op::RIGHT_INDEX, "0 3 0 2", vec![y.clone()]);
        let item = probe_mm(&x, &sl);
        let yk = slice(&yv, 0, 3, 0, 2).unwrap();
        let hit = try_partial_reuse(&c, &item, &[Value::matrix(xv), Value::matrix(yk.clone())])
            .expect("rewrite fires");
        assert_eq!(hit.rewrite, "mm-indexed-right");
        let expect = slice(&xy, 0, 4, 0, 2).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn tsmm_rbind_adds_delta_gram() {
        let c = cache();
        let (x, dx) = (leaf("X", 6, 3), leaf("dX", 2, 3));
        let (xv, dxv) = (mat(6, 3, 1), mat(2, 3, 2));
        c.put(
            &probe_tsmm(&x),
            &Value::matrix(tsmm(&xv, TsmmSide::Left).unwrap()),
            1_000,
        );

        let rb = LineageItem::op(op::RBIND, vec![x, dx]);
        let item = probe_tsmm(&rb);
        let rv = rbind(&xv, &dxv).unwrap();
        let hit = try_partial_reuse(&c, &item, &[Value::matrix(rv.clone())]).expect("fires");
        assert_eq!(hit.rewrite, "tsmm-rbind");
        let expect = tsmm(&rv, TsmmSide::Left).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn tsmm_cbind_blocked_assembly() {
        let c = cache();
        let (x, dx) = (leaf("X", 8, 3), leaf("dX", 8, 2));
        let (xv, dxv) = (mat(8, 3, 1), mat(8, 2, 2));
        c.put(
            &probe_tsmm(&x),
            &Value::matrix(tsmm(&xv, TsmmSide::Left).unwrap()),
            1_000,
        );

        let cb = LineageItem::op(op::CBIND, vec![x, dx]);
        let item = probe_tsmm(&cb);
        let cv = cbind(&xv, &dxv).unwrap();
        let hit = try_partial_reuse(&c, &item, &[Value::matrix(cv.clone())]).expect("fires");
        assert_eq!(hit.rewrite, "tsmm-cbind");
        let expect = tsmm(&cv, TsmmSide::Left).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn tsmm_cbind_ones_uses_colsums_augmentation() {
        let c = cache();
        let x = leaf("X", 9, 4);
        let xv = mat(9, 4, 5);
        c.put(
            &probe_tsmm(&x),
            &Value::matrix(tsmm(&xv, TsmmSide::Left).unwrap()),
            1_000,
        );

        let ones_lin = LineageItem::op_with_data(op::MATRIX_FILL, "1 9 1", vec![]);
        ones_lin.set_shape(9, 1);
        let cb = LineageItem::op(op::CBIND, vec![x, ones_lin]);
        let item = probe_tsmm(&cb);
        let cv = cbind(&xv, &DenseMatrix::filled(9, 1, 1.0)).unwrap();
        let hit = try_partial_reuse(&c, &item, &[Value::matrix(cv.clone())]).expect("fires");
        assert_eq!(hit.rewrite, "tsmm-cbind-ones");
        let expect = tsmm(&cv, TsmmSide::Left).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn ew_cbind_pair_splits_elementwise_ops() {
        let c = cache();
        let (x, y) = (leaf("X", 4, 3), leaf("Y", 4, 3));
        let (xv, yv) = (mat(4, 3, 1), mat(4, 3, 2));
        let head = ew_matrix_matrix(BinOp::Mul, &xv, &yv).unwrap();
        let probe = LineageItem::op("*", vec![x.clone(), y.clone()]);
        c.put(&probe, &Value::matrix(head), 1_000);

        let (dx, dy) = (leaf("dX", 4, 2), leaf("dY", 4, 2));
        let (dxv, dyv) = (mat(4, 2, 3), mat(4, 2, 4));
        let ca = LineageItem::op(op::CBIND, vec![x, dx]);
        let cb = LineageItem::op(op::CBIND, vec![y, dy]);
        let item = LineageItem::op("*", vec![ca, cb]);
        let av = cbind(&xv, &dxv).unwrap();
        let bv = cbind(&yv, &dyv).unwrap();
        let hit = try_partial_reuse(
            &c,
            &item,
            &[Value::matrix(av.clone()), Value::matrix(bv.clone())],
        )
        .expect("fires");
        assert_eq!(hit.rewrite, "ew-cbind-pair");
        let expect = ew_matrix_matrix(BinOp::Mul, &av, &bv).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn colagg_cbind_appends_delta_aggregate() {
        let c = cache();
        let x = leaf("X", 5, 3);
        let xv = mat(5, 3, 1);
        let probe = LineageItem::op(op::col_agg("sum"), vec![x.clone()]);
        c.put(&probe, &Value::matrix(col_agg(&xv, AggFn::Sum)), 1_000);

        let dx = leaf("dX", 5, 2);
        let dxv = mat(5, 2, 2);
        let cb = LineageItem::op(op::CBIND, vec![x, dx]);
        let item = LineageItem::op(op::col_agg("sum"), vec![cb]);
        let cv = cbind(&xv, &dxv).unwrap();
        let hit = try_partial_reuse(&c, &item, &[Value::matrix(cv.clone())]).expect("fires");
        assert_eq!(hit.rewrite, "colagg-cbind");
        let expect = col_agg(&cv, AggFn::Sum);
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn rowagg_rbind_appends_delta_aggregate() {
        let c = cache();
        let x = leaf("X", 4, 3);
        let xv = mat(4, 3, 1);
        let probe = LineageItem::op(op::row_agg("sum"), vec![x.clone()]);
        c.put(&probe, &Value::matrix(agg::row_agg(&xv, AggFn::Sum)), 1_000);

        let dx = leaf("dX", 2, 3);
        let dxv = mat(2, 3, 2);
        let rb = LineageItem::op(op::RBIND, vec![x, dx]);
        let item = LineageItem::op(op::row_agg("sum"), vec![rb]);
        let rv = rbind(&xv, &dxv).unwrap();
        let hit = try_partial_reuse(&c, &item, &[Value::matrix(rv.clone())]).expect("fires");
        assert_eq!(hit.rewrite, "rowagg-rbind");
        let expect = agg::row_agg(&rv, AggFn::Sum);
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn mm_t_rbind_pair_for_cross_validation() {
        let c = cache();
        let (xa, xb) = (leaf("Xa", 5, 3), leaf("Xb", 4, 3));
        let (ya, yb) = (leaf("ya", 5, 1), leaf("yb", 4, 1));
        let (xav, xbv) = (mat(5, 3, 1), mat(4, 3, 2));
        let (yav, ybv) = (mat(5, 1, 3), mat(4, 1, 4));
        let head = matmult(&transpose(&xav), &yav).unwrap();
        let probe = probe_mm(&LineageItem::op(op::TRANSPOSE, vec![xa.clone()]), &ya);
        c.put(&probe, &Value::matrix(head), 1_000);

        let rx = LineageItem::op(op::RBIND, vec![xa, xb]);
        let t = LineageItem::op(op::TRANSPOSE, vec![rx]);
        let ry = LineageItem::op(op::RBIND, vec![ya, yb]);
        let item = probe_mm(&t, &ry);
        let xv = rbind(&xav, &xbv).unwrap();
        let yv = rbind(&yav, &ybv).unwrap();
        let tv = transpose(&xv);
        let hit = try_partial_reuse(
            &c,
            &item,
            &[Value::matrix(tv.clone()), Value::matrix(yv.clone())],
        )
        .expect("fires");
        assert_eq!(hit.rewrite, "mm-t-rbind-pair");
        let expect = matmult(&tv, &yv).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn transpose_cbind_reuses_cached_transpose() {
        let c = cache();
        let x = leaf("X", 6, 3);
        let xv = mat(6, 3, 1);
        let probe = LineageItem::op(op::TRANSPOSE, vec![x.clone()]);
        c.put(&probe, &Value::matrix(transpose(&xv)), 1_000);

        let dx = leaf("dX", 6, 2);
        let dxv = mat(6, 2, 2);
        let cb = LineageItem::op(op::CBIND, vec![x, dx]);
        let item = LineageItem::op(op::TRANSPOSE, vec![cb]);
        let cv = cbind(&xv, &dxv).unwrap();
        let hit = try_partial_reuse(&c, &item, &[Value::matrix(cv.clone())]).expect("fires");
        assert_eq!(hit.rewrite, "transpose-cbind");
        assert!(hit
            .value
            .as_matrix()
            .unwrap()
            .rel_eq(&transpose(&cv), 1e-12));
    }

    #[test]
    fn ew_rbind_pair_splits_elementwise_ops() {
        let c = cache();
        let (x, y) = (leaf("X", 3, 4), leaf("Y", 3, 4));
        let (xv, yv) = (mat(3, 4, 1), mat(3, 4, 2));
        let head = ew_matrix_matrix(BinOp::Add, &xv, &yv).unwrap();
        let probe = LineageItem::op("+", vec![x.clone(), y.clone()]);
        c.put(&probe, &Value::matrix(head), 1_000);

        let (dx, dy) = (leaf("dX", 2, 4), leaf("dY", 2, 4));
        let (dxv, dyv) = (mat(2, 4, 3), mat(2, 4, 4));
        let ra = LineageItem::op(op::RBIND, vec![x, dx]);
        let rb2 = LineageItem::op(op::RBIND, vec![y, dy]);
        let item = LineageItem::op("+", vec![ra, rb2]);
        let av = rbind(&xv, &dxv).unwrap();
        let bv = rbind(&yv, &dyv).unwrap();
        let hit = try_partial_reuse(
            &c,
            &item,
            &[Value::matrix(av.clone()), Value::matrix(bv.clone())],
        )
        .expect("fires");
        assert_eq!(hit.rewrite, "ew-rbind-pair");
        let expect = ew_matrix_matrix(BinOp::Add, &av, &bv).unwrap();
        assert!(hit.value.as_matrix().unwrap().rel_eq(&expect, 1e-12));
    }

    #[test]
    fn fullagg_concat_combines_scalars() {
        let c = cache();
        let x = leaf("X", 4, 3);
        let xv = mat(4, 3, 1);
        for (fname, f) in [
            ("sum", AggFn::Sum),
            ("max", AggFn::Max),
            ("min", AggFn::Min),
        ] {
            let probe = LineageItem::op(op::full_agg(fname), vec![x.clone()]);
            c.put(&probe, &Value::f64(agg::full_agg(&xv, f)), 1_000);
        }
        let dx = leaf("dX", 4, 2);
        let dxv = mat(4, 2, 2);
        let cb = LineageItem::op(op::CBIND, vec![x.clone(), dx]);
        let cv = cbind(&xv, &dxv).unwrap();
        for (fname, f) in [
            ("sum", AggFn::Sum),
            ("max", AggFn::Max),
            ("min", AggFn::Min),
        ] {
            let item = LineageItem::op(op::full_agg(fname), vec![cb.clone()]);
            let hit = try_partial_reuse(&c, &item, &[Value::matrix(cv.clone())])
                .unwrap_or_else(|| panic!("{fname} fires"));
            assert_eq!(hit.rewrite, "fullagg-concat");
            let expect = agg::full_agg(&cv, f);
            assert!((hit.value.as_f64().unwrap() - expect).abs() < 1e-9);
        }
        // Mean does not decompose: no rewrite.
        let item = LineageItem::op(op::full_agg("mean"), vec![cb]);
        assert!(try_partial_reuse(&c, &item, &[Value::matrix(cv)]).is_none());
    }

    #[test]
    fn no_rewrite_without_cached_component() {
        let c = cache();
        let (x, dx, y) = (leaf("X", 6, 4), leaf("dX", 2, 4), leaf("Y", 4, 3));
        let rb = LineageItem::op(op::RBIND, vec![x, dx]);
        let item = probe_mm(&rb, &y);
        let rv = mat(8, 4, 1);
        let yv = mat(4, 3, 2);
        assert!(try_partial_reuse(&c, &item, &[Value::matrix(rv), Value::matrix(yv)]).is_none());
    }

    #[test]
    fn partial_reuse_respects_config() {
        let cfg = LimaConfig {
            reuse: crate::config::ReuseMode::Full, // no partial
            ..LimaConfig::default()
        };
        let c = LineageCache::new(cfg);
        let (x, dx) = (leaf("X", 6, 3), leaf("dX", 2, 3));
        let xv = mat(6, 3, 1);
        c.put(
            &probe_tsmm(&x),
            &Value::matrix(tsmm(&xv, TsmmSide::Left).unwrap()),
            1_000,
        );
        let rb = LineageItem::op(op::RBIND, vec![x, dx]);
        let item = probe_tsmm(&rb);
        let rv = mat(8, 3, 1);
        assert!(try_partial_reuse(&c, &item, &[Value::matrix(rv)]).is_none());
    }
}
