//! Canonical opcode strings shared between the runtime (which traces lineage)
//! and the reuse cache (whose partial-reuse rewrites pattern-match on them).
//!
//! Keeping these in one place guarantees that a probe item constructed by a
//! rewrite hashes/compares identically to the item the runtime traced.

/// Matrix multiply `A %*% B` (SystemDS `ba+*`).
pub const MATMULT: &str = "ba+*";
/// Transpose-self matrix multiply `XᵀX` (SystemDS `tsmm`).
pub const TSMM: &str = "tsmm";
/// Transpose (SystemDS `r'`).
pub const TRANSPOSE: &str = "r'";
/// Horizontal concatenation.
pub const CBIND: &str = "cbind";
/// Vertical concatenation.
pub const RBIND: &str = "rbind";
/// Right indexing (slicing); data string carries the bounds.
pub const RIGHT_INDEX: &str = "rightIndex";
/// Column projection by index vector.
pub const SELECT_COLS: &str = "selectCols";
/// Row projection by index vector.
pub const SELECT_ROWS: &str = "selectRows";
/// Left indexing (sub-block assignment); data string carries the offsets.
pub const LEFT_INDEX: &str = "leftIndex";
/// Random matrix generation; data string carries shape/dist/sparsity/seed.
pub const RAND: &str = "rand";
/// Sampling without replacement; data string carries range/size/seed.
pub const SAMPLE: &str = "sample";
/// Sequence generation.
pub const SEQ: &str = "seq";
/// File read; data string carries the (logical) path.
pub const READ: &str = "read";
/// Solve linear system.
pub const SOLVE: &str = "solve";
/// Diagonal extraction/construction (SystemDS `rdiag`).
pub const DIAG: &str = "rdiag";
/// Symmetric eigen decomposition (bundles values+vectors as a list).
pub const EIGEN: &str = "eigen";
/// Sort-order indices.
pub const ORDER: &str = "order";
/// Row reversal.
pub const REV: &str = "rev";
/// Contingency table.
pub const TABLE: &str = "ctable";
/// Row-wise argmax.
pub const ROW_INDEX_MAX: &str = "uarimax";
/// Number of rows (scalar).
pub const NROW: &str = "nrow";
/// Number of columns (scalar).
pub const NCOL: &str = "ncol";
/// Full aggregate prefix: `ua<f>` (e.g. `uasum`).
pub const FULL_AGG_PREFIX: &str = "ua";
/// Column aggregate prefix: `uac<f>` (e.g. `uacsum` is colSums).
pub const COL_AGG_PREFIX: &str = "uac";
/// Row aggregate prefix: `uar<f>`.
pub const ROW_AGG_PREFIX: &str = "uar";
/// List construction.
pub const LIST: &str = "list";
/// List element access; data string carries the index.
pub const LIST_GET: &str = "listGet";
/// Matrix construction filled with a constant.
pub const MATRIX_FILL: &str = "matrix";
/// Matrix reshape; data carries target dims.
pub const RESHAPE: &str = "rshape";
/// Cast a 1x1 matrix to scalar.
pub const CAST_SCALAR: &str = "castdts";
/// Cast a scalar to 1x1 matrix.
pub const CAST_MATRIX: &str = "castdtm";
/// String concatenation / formatting (non-cacheable).
pub const CONCAT: &str = "concat";
/// Multi-level lineage item bundling a deterministic function call.
pub const FCALL: &str = "fcall";
/// Multi-level lineage item bundling a deterministic program block.
pub const BCALL: &str = "bcall";
/// Lineage literal marker used in serialized logs.
pub const LITERAL: &str = "L";
/// Dedup item marker used in serialized logs.
pub const DEDUP: &str = "dedup";
/// Placeholder marker used inside dedup/fused patches.
pub const PLACEHOLDER: &str = "ph";
/// Fused-operator marker; the runtime expands fused ops into patches.
pub const FUSED_PREFIX: &str = "spoof";

/// Column aggregate opcode for a given aggregate function name.
pub fn col_agg(op: &str) -> String {
    format!("{COL_AGG_PREFIX}{op}")
}

/// Row aggregate opcode for a given aggregate function name.
pub fn row_agg(op: &str) -> String {
    format!("{ROW_AGG_PREFIX}{op}")
}

/// Full aggregate opcode for a given aggregate function name.
pub fn full_agg(op: &str) -> String {
    format!("{FULL_AGG_PREFIX}{op}")
}

/// The default set of opcodes whose outputs qualify for the lineage cache.
/// Mirrors the paper's "set of reusable instruction opcodes" configuration:
/// compute-bearing operations qualify, bookkeeping and string ops do not.
pub fn default_cacheable() -> Vec<&'static str> {
    vec![
        MATMULT,
        TSMM,
        TRANSPOSE,
        CBIND,
        RBIND,
        RIGHT_INDEX,
        SELECT_COLS,
        SELECT_ROWS,
        SOLVE,
        DIAG,
        EIGEN,
        ORDER,
        REV,
        TABLE,
        ROW_INDEX_MAX,
        "uasum",
        "uamean",
        "uamin",
        "uamax",
        "uasumsq",
        "uavar",
        "uacsum",
        "uacmean",
        "uacmin",
        "uacmax",
        "uacsumsq",
        "uacvar",
        "uarsum",
        "uarmean",
        "uarmin",
        "uarmax",
        "uarsumsq",
        "uarvar",
        "+",
        "-",
        "*",
        "/",
        "^",
        "min",
        "max",
        "==",
        "!=",
        "<",
        "<=",
        ">",
        ">=",
        "&",
        "|",
        "uneg",
        "abs",
        "exp",
        "log",
        "sqrt",
        "round",
        "floor",
        "ceil",
        "sign",
        "sigmoid",
        "!",
        RESHAPE,
        FCALL,
        BCALL,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_opcode_builders() {
        assert_eq!(col_agg("sum"), "uacsum");
        assert_eq!(row_agg("max"), "uarmax");
        assert_eq!(full_agg("mean"), "uamean");
    }

    #[test]
    fn default_cacheable_contains_compute_ops_not_bookkeeping() {
        let set = default_cacheable();
        assert!(set.contains(&MATMULT));
        assert!(set.contains(&TSMM));
        assert!(!set.contains(&READ));
        assert!(!set.contains(&RAND));
        assert!(!set.contains(&CONCAT));
    }
}
