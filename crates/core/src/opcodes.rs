//! Canonical opcode strings shared between the runtime (which traces lineage)
//! and the reuse cache (whose partial-reuse rewrites pattern-match on them).
//!
//! Keeping these in one place guarantees that a probe item constructed by a
//! rewrite hashes/compares identically to the item the runtime traced.

/// Matrix multiply `A %*% B` (SystemDS `ba+*`).
pub const MATMULT: &str = "ba+*";
/// Transpose-self matrix multiply `XᵀX` (SystemDS `tsmm`).
pub const TSMM: &str = "tsmm";
/// Transpose (SystemDS `r'`).
pub const TRANSPOSE: &str = "r'";
/// Horizontal concatenation.
pub const CBIND: &str = "cbind";
/// Vertical concatenation.
pub const RBIND: &str = "rbind";
/// Right indexing (slicing); data string carries the bounds.
pub const RIGHT_INDEX: &str = "rightIndex";
/// Column projection by index vector.
pub const SELECT_COLS: &str = "selectCols";
/// Row projection by index vector.
pub const SELECT_ROWS: &str = "selectRows";
/// Left indexing (sub-block assignment); data string carries the offsets.
pub const LEFT_INDEX: &str = "leftIndex";
/// Random matrix generation; data string carries shape/dist/sparsity/seed.
pub const RAND: &str = "rand";
/// Sampling without replacement; data string carries range/size/seed.
pub const SAMPLE: &str = "sample";
/// Sequence generation.
pub const SEQ: &str = "seq";
/// File read; data string carries the (logical) path.
pub const READ: &str = "read";
/// Solve linear system.
pub const SOLVE: &str = "solve";
/// Diagonal extraction/construction (SystemDS `rdiag`).
pub const DIAG: &str = "rdiag";
/// Symmetric eigen decomposition (bundles values+vectors as a list).
pub const EIGEN: &str = "eigen";
/// Sort-order indices.
pub const ORDER: &str = "order";
/// Row reversal.
pub const REV: &str = "rev";
/// Contingency table.
pub const TABLE: &str = "ctable";
/// Row-wise argmax.
pub const ROW_INDEX_MAX: &str = "uarimax";
/// Number of rows (scalar).
pub const NROW: &str = "nrow";
/// Number of columns (scalar).
pub const NCOL: &str = "ncol";
/// Full aggregate prefix: `ua<f>` (e.g. `uasum`).
pub const FULL_AGG_PREFIX: &str = "ua";
/// Column aggregate prefix: `uac<f>` (e.g. `uacsum` is colSums).
pub const COL_AGG_PREFIX: &str = "uac";
/// Row aggregate prefix: `uar<f>`.
pub const ROW_AGG_PREFIX: &str = "uar";
/// List construction.
pub const LIST: &str = "list";
/// List element access; data string carries the index.
pub const LIST_GET: &str = "listGet";
/// Matrix construction filled with a constant.
pub const MATRIX_FILL: &str = "matrix";
/// Matrix reshape; data carries target dims.
pub const RESHAPE: &str = "rshape";
/// Cast a 1x1 matrix to scalar.
pub const CAST_SCALAR: &str = "castdts";
/// Cast a scalar to 1x1 matrix.
pub const CAST_MATRIX: &str = "castdtm";
/// String concatenation / formatting (non-cacheable).
pub const CONCAT: &str = "concat";
/// Multi-level lineage item bundling a deterministic function call.
pub const FCALL: &str = "fcall";
/// Multi-level lineage item bundling a deterministic program block.
pub const BCALL: &str = "bcall";
/// Lineage literal marker used in serialized logs.
pub const LITERAL: &str = "L";
/// Dedup item marker used in serialized logs.
pub const DEDUP: &str = "dedup";
/// Placeholder marker used inside dedup/fused patches.
pub const PLACEHOLDER: &str = "ph";
/// Fused-operator marker; the runtime expands fused ops into patches.
pub const FUSED_PREFIX: &str = "spoof";

/// Column aggregate opcode for a given aggregate function name.
pub fn col_agg(op: &str) -> String {
    format!("{COL_AGG_PREFIX}{op}")
}

/// Row aggregate opcode for a given aggregate function name.
pub fn row_agg(op: &str) -> String {
    format!("{ROW_AGG_PREFIX}{op}")
}

/// Full aggregate opcode for a given aggregate function name.
pub fn full_agg(op: &str) -> String {
    format!("{FULL_AGG_PREFIX}{op}")
}

/// Determinism class of an operation, ordered as a join-semilattice:
/// `Deterministic < Seeded < NonDeterministic < SideEffecting`.
///
/// * `Deterministic` — output is a pure function of the inputs.
/// * `Seeded` — pseudo-random, but replayable once the seed is pinned
///   (an explicit literal seed, or a system seed captured in the lineage).
/// * `NonDeterministic` — not replayable even with captured parameters.
/// * `SideEffecting` — interacts with the outside world; must never be
///   skipped or memoized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Pure function of its inputs.
    Deterministic,
    /// Replayable given a pinned seed.
    Seeded,
    /// Not replayable.
    NonDeterministic,
    /// Externally visible effect.
    SideEffecting,
}

impl OpClass {
    /// Least upper bound: the class of a computation combining both.
    pub fn join(self, other: OpClass) -> OpClass {
        self.max(other)
    }

    /// True when results of this class may be reused from the lineage cache
    /// (deterministic, or seeded with the seed recorded in the lineage).
    pub fn reuse_eligible(self) -> bool {
        self <= OpClass::Seeded
    }
}

/// One row of the opcode classification table: determinism class plus
/// whether outputs of the opcode qualify for the lineage cache by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpcodeInfo {
    /// Determinism class.
    pub class: OpClass,
    /// Default cache eligibility (compute-bearing ops qualify, bookkeeping
    /// and string ops do not).
    pub cacheable: bool,
}

/// The single classification table shared by the tracer, the compiler's
/// unmarking pass, and `lima-analysis`. Every opcode the runtime can emit
/// appears here; prefixed families (`spoof*`, `fcall:*`, `bcall*`) are
/// resolved by [`opcode_info`].
pub const OPCODE_TABLE: &[(&str, OpcodeInfo)] = &{
    const DC: OpcodeInfo = OpcodeInfo {
        class: OpClass::Deterministic,
        cacheable: true,
    };
    const DN: OpcodeInfo = OpcodeInfo {
        class: OpClass::Deterministic,
        cacheable: false,
    };
    const SEED: OpcodeInfo = OpcodeInfo {
        class: OpClass::Seeded,
        cacheable: false,
    };
    const EFFECT: OpcodeInfo = OpcodeInfo {
        class: OpClass::SideEffecting,
        cacheable: false,
    };
    [
        // Compute-bearing deterministic ops: reuse-eligible and cacheable.
        (MATMULT, DC),
        (TSMM, DC),
        (TRANSPOSE, DC),
        (CBIND, DC),
        (RBIND, DC),
        (RIGHT_INDEX, DC),
        (SELECT_COLS, DC),
        (SELECT_ROWS, DC),
        (SOLVE, DC),
        (DIAG, DC),
        (EIGEN, DC),
        (ORDER, DC),
        (REV, DC),
        (TABLE, DC),
        (ROW_INDEX_MAX, DC),
        ("uasum", DC),
        ("uamean", DC),
        ("uamin", DC),
        ("uamax", DC),
        ("uasumsq", DC),
        ("uavar", DC),
        ("uacsum", DC),
        ("uacmean", DC),
        ("uacmin", DC),
        ("uacmax", DC),
        ("uacsumsq", DC),
        ("uacvar", DC),
        ("uarsum", DC),
        ("uarmean", DC),
        ("uarmin", DC),
        ("uarmax", DC),
        ("uarsumsq", DC),
        ("uarvar", DC),
        ("+", DC),
        ("-", DC),
        ("*", DC),
        ("/", DC),
        ("^", DC),
        ("min", DC),
        ("max", DC),
        ("==", DC),
        ("!=", DC),
        ("<", DC),
        ("<=", DC),
        (">", DC),
        (">=", DC),
        ("&", DC),
        ("|", DC),
        ("uneg", DC),
        ("abs", DC),
        ("exp", DC),
        ("log", DC),
        ("sqrt", DC),
        ("round", DC),
        ("floor", DC),
        ("ceil", DC),
        ("sign", DC),
        ("sigmoid", DC),
        ("!", DC),
        (RESHAPE, DC),
        (FCALL, DC),
        (BCALL, DC),
        // Deterministic bookkeeping / cheap ops: not worth caching.
        (LEFT_INDEX, DN),
        (SEQ, DN),
        (READ, DN),
        (NROW, DN),
        (NCOL, DN),
        (MATRIX_FILL, DN),
        (CAST_SCALAR, DN),
        (CAST_MATRIX, DN),
        (LIST, DN),
        (LIST_GET, DN),
        (CONCAT, DN),
        ("assign", DN),
        ("mvvar", DN),
        ("rmvar", DN),
        ("lineage", DN),
        (LITERAL, DN),
        (DEDUP, DN),
        (PLACEHOLDER, DN),
        // Pseudo-random creation ops: deterministic once the seed is pinned.
        (RAND, SEED),
        (SAMPLE, SEED),
        // Externally visible effects.
        ("print", EFFECT),
        ("write", EFFECT),
    ]
};

fn table_lookup(op: &str) -> Option<OpcodeInfo> {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static INDEX: OnceLock<HashMap<&'static str, OpcodeInfo>> = OnceLock::new();
    INDEX
        .get_or_init(|| OPCODE_TABLE.iter().copied().collect())
        .get(op)
        .copied()
}

/// Classification for an opcode string, resolving prefixed families:
/// fused operators (`spoof*`) and multi-level items (`fcall:*`/`bcall*`) are
/// deterministic and cacheable (multi-level items only exist for bodies the
/// compiler already proved deterministic). Unknown opcodes conservatively
/// classify as non-deterministic and non-cacheable.
pub fn opcode_info(op: &str) -> OpcodeInfo {
    if let Some(info) = table_lookup(op) {
        return info;
    }
    if op.starts_with(FUSED_PREFIX) || op.starts_with(FCALL) || op.starts_with(BCALL) {
        return OpcodeInfo {
            class: OpClass::Deterministic,
            cacheable: true,
        };
    }
    OpcodeInfo {
        class: OpClass::NonDeterministic,
        cacheable: false,
    }
}

/// Determinism class of an opcode (see [`opcode_info`]).
pub fn classify_opcode(op: &str) -> OpClass {
    opcode_info(op).class
}

/// The default set of opcodes whose outputs qualify for the lineage cache.
/// Mirrors the paper's "set of reusable instruction opcodes" configuration;
/// derived from [`OPCODE_TABLE`] so cacheability and determinism cannot
/// drift apart.
pub fn default_cacheable() -> Vec<&'static str> {
    OPCODE_TABLE
        .iter()
        .filter(|(_, info)| info.cacheable)
        .map(|(op, _)| *op)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_opcode_builders() {
        assert_eq!(col_agg("sum"), "uacsum");
        assert_eq!(row_agg("max"), "uarmax");
        assert_eq!(full_agg("mean"), "uamean");
    }

    #[test]
    fn classification_table_and_lattice() {
        assert_eq!(classify_opcode(MATMULT), OpClass::Deterministic);
        assert_eq!(classify_opcode(READ), OpClass::Deterministic);
        assert_eq!(classify_opcode(RAND), OpClass::Seeded);
        assert_eq!(classify_opcode(SAMPLE), OpClass::Seeded);
        assert_eq!(classify_opcode("print"), OpClass::SideEffecting);
        assert_eq!(classify_opcode("write"), OpClass::SideEffecting);
        // Prefixed families resolve; unknown opcodes are conservative.
        assert_eq!(classify_opcode("spoof17"), OpClass::Deterministic);
        assert!(opcode_info("spoof17").cacheable);
        assert_eq!(classify_opcode("fcall:lm"), OpClass::Deterministic);
        assert_eq!(classify_opcode("no-such-op"), OpClass::NonDeterministic);
        assert!(!opcode_info("no-such-op").cacheable);
        // Lattice: join is max, reuse eligibility cuts below NonDeterministic.
        assert_eq!(
            OpClass::Deterministic.join(OpClass::Seeded),
            OpClass::Seeded
        );
        assert_eq!(
            OpClass::Seeded.join(OpClass::SideEffecting),
            OpClass::SideEffecting
        );
        assert!(OpClass::Deterministic.reuse_eligible());
        assert!(OpClass::Seeded.reuse_eligible());
        assert!(!OpClass::NonDeterministic.reuse_eligible());
        assert!(!OpClass::SideEffecting.reuse_eligible());
    }

    #[test]
    fn cacheable_set_is_consistent_with_classification() {
        // Anything cacheable by default must also be reuse-eligible —
        // otherwise the tracer would cache values it can never trust.
        for (op, info) in OPCODE_TABLE {
            if info.cacheable {
                assert!(
                    info.class.reuse_eligible(),
                    "{op} cacheable but not eligible"
                );
            }
        }
    }

    #[test]
    fn default_cacheable_contains_compute_ops_not_bookkeeping() {
        let set = default_cacheable();
        assert!(set.contains(&MATMULT));
        assert!(set.contains(&TSMM));
        assert!(!set.contains(&READ));
        assert!(!set.contains(&RAND));
        assert!(!set.contains(&CONCAT));
    }
}
