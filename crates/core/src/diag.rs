//! Source-anchored diagnostics (paper §2.2 front end; DESIGN.md §14).
//!
//! A [`Diagnostic`] carries a stable code (`L0100`), a severity, a primary
//! byte-offset [`Span`] into the original script, optional labeled secondary
//! spans, and optional help text. The front end (`lima-lang`) and the lint
//! passes (`lima-analysis`) emit diagnostics; the binaries render them as
//! caret snippets ([`Diagnostic::render`]) or JSON ([`Diagnostic::to_json`]),
//! and `limad` ships them over the wire so clients receive machine-readable
//! positions instead of flattened strings.
//!
//! JSON encoding is hand-rolled (the workspace is offline and vendors no
//! serde); [`Diagnostic::from_json`] tolerates and skips unknown keys so the
//! schema can grow without breaking old readers.

use std::fmt;

/// A half-open byte range `[start, end)` into the original source text.
///
/// Offsets are byte offsets (not char indices) so spans survive lossless
/// round-trips through the wire protocol and JSON; renderers convert to
/// 1-based line/column on demand via [`line_col`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned region.
    pub start: u32,
    /// Byte offset one past the last byte (>= `start`).
    pub end: u32,
}

impl Span {
    /// A span over `[start, end)`; swapped bounds are normalized.
    pub fn new(start: u32, end: u32) -> Self {
        if start <= end {
            Span { start, end }
        } else {
            Span {
                start: end,
                end: start,
            }
        }
    }

    /// A span from usize offsets, saturating at `u32::MAX` (scripts larger
    /// than 4 GiB are clamped rather than wrapped).
    pub fn of(start: usize, end: usize) -> Self {
        let clamp = |v: usize| u32::try_from(v).unwrap_or(u32::MAX);
        Span::new(clamp(start), clamp(end))
    }

    /// An empty span at a single offset (insertion point / EOF).
    pub fn point(at: usize) -> Self {
        Span::of(at, at)
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// True when both offsets land inside `src` (end may equal `len`).
    pub fn in_bounds(&self, src_len: usize) -> bool {
        (self.start as usize) <= src_len && (self.end as usize) <= src_len
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Diagnostic severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program is rejected.
    Error,
    /// Suspicious but accepted; promoted to an error under `--deny warnings`.
    Warning,
    /// Informational hint; never promoted.
    Note,
}

impl Severity {
    /// Stable lowercase name (used in rendered output and JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }

    /// Parses the stable name back; `None` for anything else.
    pub fn from_name(s: &str) -> Option<Severity> {
        match s {
            "error" => Some(Severity::Error),
            "warning" => Some(Severity::Warning),
            "note" => Some(Severity::Note),
            _ => None,
        }
    }

    /// Stable wire encoding.
    pub fn as_u8(&self) -> u8 {
        match self {
            Severity::Error => 0,
            Severity::Warning => 1,
            Severity::Note => 2,
        }
    }

    /// Decodes the wire byte; `None` for unknown values.
    pub fn from_u8(v: u8) -> Option<Severity> {
        match v {
            0 => Some(Severity::Error),
            1 => Some(Severity::Warning),
            2 => Some(Severity::Note),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A labeled secondary span ("the offending call site is here").
#[derive(Debug, Clone, PartialEq)]
pub struct Label {
    /// Where the label points.
    pub span: Span,
    /// Short message rendered next to the underline.
    pub message: String,
}

/// One source-anchored finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable code like `L0100` (see DESIGN.md §14 for the registry).
    pub code: String,
    /// Primary human-readable message.
    pub message: String,
    /// Span the finding anchors to; `None` for whole-program findings.
    pub primary: Option<Span>,
    /// Labeled secondary spans.
    pub labels: Vec<Label>,
    /// Optional help text rendered as a trailing `= help:` line.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic with the given severity.
    pub fn new(severity: Severity, code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            code: code.to_string(),
            message: message.into(),
            primary: None,
            labels: Vec::new(),
            help: None,
        }
    }

    /// An error diagnostic.
    pub fn error(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, message)
    }

    /// A warning diagnostic.
    pub fn warning(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, message)
    }

    /// A note diagnostic.
    pub fn note(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Note, code, message)
    }

    /// Sets the primary span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.primary = Some(span);
        self
    }

    /// Sets the primary span when one is available.
    pub fn with_span_opt(mut self, span: Option<Span>) -> Self {
        self.primary = span;
        self
    }

    /// Adds a labeled secondary span.
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Sets the help text.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Sort key: source order first, then severity, then code.
    fn sort_key(&self) -> (u32, u8, &str, &str) {
        (
            self.primary.map(|s| s.start).unwrap_or(u32::MAX),
            self.severity.as_u8(),
            &self.code,
            &self.message,
        )
    }

    // ------------------------------------------------------------ rendering

    /// Renders a rustc-style caret snippet against the original source.
    ///
    /// The output is deterministic (golden-file friendly): no colors, no
    /// trailing whitespace, `\n`-terminated.
    pub fn render(&self, src: &str, filename: &str) -> String {
        let starts = line_starts(src);
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {}\n",
            self.severity.as_str(),
            self.code,
            self.message
        ));
        // Gutter width across every snippet of this diagnostic.
        let mut max_line = 1usize;
        let mut snippets: Vec<(Span, char, &str)> = Vec::new();
        if let Some(p) = self.primary {
            snippets.push((p, '^', ""));
        }
        for l in &self.labels {
            snippets.push((l.span, '-', l.message.as_str()));
        }
        for (span, _, _) in &snippets {
            let (line, _) = locate(src, &starts, span.start as usize);
            max_line = max_line.max(line);
        }
        let width = max_line.to_string().len();
        let pad = " ".repeat(width);
        for (idx, (span, marker, label)) in snippets.iter().enumerate() {
            let start = (span.start as usize).min(src.len());
            let (line, col) = locate(src, &starts, start);
            if idx == 0 {
                out.push_str(&format!("{pad}--> {filename}:{line}:{col}\n"));
            } else {
                out.push_str(&format!("{pad}::: {filename}:{line}:{col}\n"));
            }
            out.push_str(&format!("{pad} |\n"));
            let text = line_text(src, &starts, line);
            out.push_str(&format!("{line:>width$} | {text}\n"));
            // Underline: clamp the span to this line; at least one marker.
            let line_start = starts.get(line - 1).copied().unwrap_or(0);
            let line_end = line_start + text.len();
            let end = (span.end as usize).clamp(start, line_end.max(start));
            let lead: usize = text
                .get(..start.saturating_sub(line_start))
                .map(|s| s.chars().count())
                .unwrap_or(0);
            let count = text
                .get(start.saturating_sub(line_start)..end.saturating_sub(line_start))
                .map(|s| s.chars().count())
                .unwrap_or(0)
                .max(1);
            let mut underline = format!(
                "{pad} | {}{}",
                " ".repeat(lead),
                marker.to_string().repeat(count)
            );
            if !label.is_empty() {
                underline.push(' ');
                underline.push_str(label);
            }
            underline.push('\n');
            out.push_str(&underline);
        }
        if let Some(h) = &self.help {
            out.push_str(&format!("{pad} = help: {h}\n"));
        }
        out
    }

    // ----------------------------------------------------------------- JSON

    /// Encodes the diagnostic as a single JSON object (documented schema in
    /// README "Linting"): `severity`, `code`, `message`, optional `span`
    /// (`{"start": .., "end": ..}`), `labels`, optional `help`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"severity\":\"{}\"", self.severity.as_str()));
        out.push_str(&format!(",\"code\":{}", json_str(&self.code)));
        out.push_str(&format!(",\"message\":{}", json_str(&self.message)));
        if let Some(s) = self.primary {
            out.push_str(&format!(
                ",\"span\":{{\"start\":{},\"end\":{}}}",
                s.start, s.end
            ));
        }
        out.push_str(",\"labels\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"start\":{},\"end\":{},\"message\":{}}}",
                l.span.start,
                l.span.end,
                json_str(&l.message)
            ));
        }
        out.push(']');
        if let Some(h) = &self.help {
            out.push_str(&format!(",\"help\":{}", json_str(h)));
        }
        out.push('}');
        out
    }

    /// Decodes a diagnostic from a JSON object produced by [`to_json`]
    /// (unknown keys are skipped). `None` on malformed input.
    ///
    /// [`to_json`]: Diagnostic::to_json
    pub fn from_json(src: &str) -> Option<Diagnostic> {
        let v = Json::parse(src)?;
        Diagnostic::from_value(&v)
    }

    fn from_value(v: &Json) -> Option<Diagnostic> {
        let obj = v.as_obj()?;
        let severity = Severity::from_name(get(obj, "severity")?.as_str()?)?;
        let code = get(obj, "code")?.as_str()?.to_string();
        let message = get(obj, "message")?.as_str()?.to_string();
        let primary = match get(obj, "span") {
            Some(s) => Some(span_from(s)?),
            None => None,
        };
        let mut labels = Vec::new();
        if let Some(ls) = get(obj, "labels") {
            for l in ls.as_arr()? {
                let lo = l.as_obj()?;
                labels.push(Label {
                    span: span_from(l)?,
                    message: get(lo, "message")?.as_str()?.to_string(),
                });
            }
        }
        let help = match get(obj, "help") {
            Some(h) => Some(h.as_str()?.to_string()),
            None => None,
        };
        Some(Diagnostic {
            severity,
            code,
            message,
            primary,
            labels,
            help,
        })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.as_str(),
            self.code,
            self.message
        )
    }
}

/// Sorts diagnostics into stable reporting order: by primary span start
/// (span-less findings last), then severity, code, and message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

/// Encodes a slice of diagnostics as a JSON array.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push(']');
    out
}

/// Decodes a JSON array of diagnostics; `None` on malformed input.
pub fn diagnostics_from_json(src: &str) -> Option<Vec<Diagnostic>> {
    let v = Json::parse(src)?;
    let arr = v.as_arr()?;
    let mut out = Vec::with_capacity(arr.len());
    for d in arr {
        out.push(Diagnostic::from_value(d)?);
    }
    Some(out)
}

// ------------------------------------------------------------ line mapping

/// Byte offsets of every line start (the first is always 0).
fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn locate(src: &str, starts: &[usize], offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let line = starts.partition_point(|s| *s <= offset); // 1-based
    let line_start = starts.get(line - 1).copied().unwrap_or(0);
    let col = src
        .get(line_start..offset)
        .map(|s| s.chars().count())
        .unwrap_or(offset - line_start)
        + 1;
    (line, col)
}

fn line_text<'a>(src: &'a str, starts: &[usize], line: usize) -> &'a str {
    let start = starts.get(line - 1).copied().unwrap_or(0);
    let end = starts.get(line).map(|e| e - 1).unwrap_or(src.len());
    src.get(start..end).unwrap_or("").trim_end_matches('\r')
}

/// 1-based line and character column of a byte offset in `src` (clamped to
/// the source length).
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let starts = line_starts(src);
    locate(src, &starts, offset)
}

// ------------------------------------------------------- minimal JSON layer

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A tiny owned JSON value — just enough to round-trip diagnostics without a
/// serde dependency (the workspace vendors no external crates).
enum Json {
    Null,
    /// Parsed but never extracted: diagnostics carry no boolean fields, yet
    /// the parser must still accept `true`/`false` inside unknown keys.
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(src: &str) -> Option<Json> {
        let mut p = JsonParser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= u32::MAX as f64 && n.fract() == 0.0 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn span_from(v: &Json) -> Option<Span> {
    let o = v.as_obj()?;
    Some(Span::new(
        get(o, "start")?.as_u32()?,
        get(o, "end")?.as_u32()?,
    ))
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, word: &str) -> Option<()> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.lit("true").map(|_| Json::Bool(true)),
            b'f' => self.lit("false").map(|_| Json::Bool(false)),
            b'n' => self.lit("null").map(|_| Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let hex = std::str::from_utf8(hex).ok()?;
                            let cp = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b => {
                    // Copy the whole (possibly multi-byte) char.
                    let start = self.pos;
                    let width = if b < 0x80 {
                        1
                    } else if b >= 0xf0 {
                        4
                    } else if b >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let chunk = self.bytes.get(start..start + width)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.pos += width;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos)?).ok()?;
        text.parse::<f64>().ok().map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_normalizes_and_joins() {
        assert_eq!(Span::new(5, 2), Span::new(2, 5));
        assert_eq!(Span::of(1, 3).to(Span::of(7, 9)), Span::of(1, 9));
        assert!(Span::of(0, 4).in_bounds(4));
        assert!(!Span::of(0, 5).in_bounds(4));
        assert!(Span::point(3).is_empty());
    }

    #[test]
    fn line_col_is_one_based_and_clamped() {
        let src = "ab\ncd\ne";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 4), (2, 2));
        assert_eq!(line_col(src, 6), (3, 1));
        assert_eq!(line_col(src, 999), (3, 2));
        assert_eq!(line_col("", 0), (1, 1));
    }

    #[test]
    fn render_places_carets_under_the_span() {
        let src = "x = 1;\ny = foo(x);\n";
        let d = Diagnostic::error("L0002", "unknown function 'foo'")
            .with_span(Span::of(11, 14))
            .with_help("define it or use a builtin");
        let r = d.render(src, "t.dml");
        let expected = "error[L0002]: unknown function 'foo'\n --> t.dml:2:5\n  |\n2 | y = foo(x);\n  |     ^^^\n  = help: define it or use a builtin\n";
        assert_eq!(r, expected);
    }

    #[test]
    fn render_includes_secondary_labels() {
        let src = "f = function() return (y) {\n  y = rand(rows=2, cols=2);\n}\n";
        let d = Diagnostic::warning("L0201", "function 'f' is reuse-ineligible")
            .with_span(Span::of(0, 1))
            .with_label(Span::of(34, 38), "non-deterministic call here");
        let r = d.render(src, "s.dml");
        assert!(r.contains("warning[L0201]"), "{r}");
        assert!(r.contains("--> s.dml:1:1"), "{r}");
        assert!(r.contains("::: s.dml:2:7"), "{r}");
        assert!(r.contains("---- non-deterministic call here"), "{r}");
    }

    #[test]
    fn render_handles_eof_and_out_of_bounds_spans() {
        let src = "x = ";
        let d = Diagnostic::error("L0002", "unexpected end of input").with_span(Span::point(4));
        let r = d.render(src, "t.dml");
        assert!(r.contains("--> t.dml:1:5"), "{r}");
        assert!(r.contains("^"), "{r}");
        // A span past the end clamps instead of panicking.
        let d2 = Diagnostic::error("L0002", "x").with_span(Span::of(100, 200));
        let _ = d2.render(src, "t.dml");
        let _ = d2.render("", "t.dml");
    }

    #[test]
    fn json_round_trips() {
        let d = Diagnostic::warning("L0204", "variable \"x\" shadows\nloop var")
            .with_span(Span::of(3, 9))
            .with_label(Span::of(0, 2), "first bound here")
            .with_help("rename the inner variable");
        let back = Diagnostic::from_json(&d.to_json());
        assert_eq!(back, Some(d));
    }

    #[test]
    fn json_round_trips_without_span_or_help() {
        let d = Diagnostic::note("L0205", "redundant no_cache");
        assert_eq!(Diagnostic::from_json(&d.to_json()), Some(d));
    }

    #[test]
    fn json_array_round_trips_and_skips_unknown_keys() {
        let diags = vec![
            Diagnostic::error("L0100", "racy parfor").with_span(Span::of(1, 4)),
            Diagnostic::note("L0206", "constant trip"),
        ];
        let json = diagnostics_to_json(&diags);
        assert_eq!(diagnostics_from_json(&json), Some(diags));
        // Extra keys (e.g. line/col enrichment) are tolerated.
        let enriched = r#"{"severity":"error","code":"L0100","message":"m","span":{"start":1,"end":4,"line":1,"col":2},"labels":[],"future":null}"#;
        let d = Diagnostic::from_json(enriched);
        assert_eq!(
            d,
            Some(Diagnostic::error("L0100", "m").with_span(Span::of(1, 4)))
        );
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "[{]",
            "{\"severity\":\"fatal\",\"code\":\"L1\",\"message\":\"m\"}",
            "{\"code\":\"L1\"}",
            "{\"severity\":\"error\",\"code\":\"L1\",\"message\":\"m\"} trailing",
            "{\"severity\":\"error\",\"code\":\"L1\",\"message\":\"\\q\"}",
        ] {
            assert_eq!(Diagnostic::from_json(bad), None, "input: {bad}");
        }
    }

    #[test]
    fn json_escapes_control_and_unicode() {
        let d = Diagnostic::error("L0001", "bad char '\u{1}' in ünïcode");
        let json = d.to_json();
        assert!(json.contains("\\u0001"), "{json}");
        assert_eq!(Diagnostic::from_json(&json), Some(d));
    }

    #[test]
    fn sort_orders_by_span_then_severity() {
        let mut v = vec![
            Diagnostic::note("L0206", "c"),
            Diagnostic::warning("L0204", "b").with_span(Span::of(9, 10)),
            Diagnostic::error("L0100", "a").with_span(Span::of(2, 5)),
            Diagnostic::warning("L0202", "d").with_span(Span::of(2, 5)),
        ];
        sort_diagnostics(&mut v);
        assert_eq!(v[0].code, "L0100");
        assert_eq!(v[1].code, "L0202");
        assert_eq!(v[2].code, "L0204");
        assert_eq!(v[3].code, "L0206");
    }
}
