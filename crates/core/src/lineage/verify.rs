//! Lineage DAG verification: structural invariants every well-formed trace
//! must satisfy (consumed by debug-mode interpreter assertions, persistent
//! cache recovery, and the `lima-lint` CLI in `lima-analysis`).
//!
//! Checked invariants:
//!
//! * **Acyclicity / id identity** — node ids are unique: the same id never
//!   names two structurally distinct nodes (a cycle in a serialized log can
//!   only be smuggled in through id reuse, since in-memory DAGs are
//!   immutable).
//! * **Placeholder well-formedness** — placeholder leaves appear only inside
//!   dedup patch bodies, and their slot index addresses a declared patch
//!   input.
//! * **Dedup consistency** — a dedup item's input arity matches its patch's
//!   `num_inputs`, its output name resolves to a patch root, and no two
//!   patches claim the same `(block_key, path_key)` bitvector with different
//!   bodies.
//! * **Hash/equality coherence** — a dedup item hashes identically to its
//!   expansion (the property that lets deduplicated and plain traces compare
//!   equal, paper §3.2).

use crate::lineage::dedup::DedupPatch;
use crate::lineage::item::{LinRef, LineageKind};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// What invariant a lineage DAG violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyErrorKind {
    /// The same node id names two distinct nodes (or forms a cycle).
    DuplicateId,
    /// A placeholder leaf is reachable outside any dedup patch body.
    PlaceholderOutsidePatch,
    /// A placeholder slot index is `>= num_inputs` of its patch.
    PlaceholderSlotOutOfRange,
    /// A dedup item's input count differs from its patch's `num_inputs`.
    DedupArityMismatch,
    /// A dedup item names an output its patch does not define.
    UnknownPatchOutput,
    /// Two patches claim the same `(block_key, path_key)` with different
    /// bodies — the path bitvector no longer identifies a unique patch.
    PatchConflict,
    /// A dedup item's memoized hash differs from its expansion's hash.
    HashIncoherence,
}

impl std::fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VerifyErrorKind::DuplicateId => "duplicate-id",
            VerifyErrorKind::PlaceholderOutsidePatch => "placeholder-outside-patch",
            VerifyErrorKind::PlaceholderSlotOutOfRange => "placeholder-slot-out-of-range",
            VerifyErrorKind::DedupArityMismatch => "dedup-arity-mismatch",
            VerifyErrorKind::UnknownPatchOutput => "unknown-patch-output",
            VerifyErrorKind::PatchConflict => "patch-conflict",
            VerifyErrorKind::HashIncoherence => "hash-incoherence",
        };
        f.write_str(s)
    }
}

/// A violated lineage invariant, with the offending node when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Id of the offending lineage node, when attributable to one.
    pub node: Option<u64>,
    /// Which invariant was violated.
    pub kind: VerifyErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(id) => write!(f, "[{}] node ({id}): {}", self.kind, self.message),
            None => write!(f, "[{}] {}", self.kind, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn verr(node: Option<u64>, kind: VerifyErrorKind, message: impl Into<String>) -> VerifyError {
    VerifyError {
        node,
        kind,
        message: message.into(),
    }
}

/// Incremental lineage verifier. State persists across calls, so verifying a
/// growing trace after every block re-checks only the newly added nodes (the
/// interpreter's debug-mode hook relies on this being O(new nodes)).
#[derive(Debug, Default)]
pub struct Verifier {
    /// id → structural hash of the node already verified under that id.
    seen: HashMap<u64, u64>,
    /// Patch ids whose bodies have been verified.
    patches_done: HashSet<u64>,
    /// `(block_key, path_key)` → (patch_id, body signature).
    path_index: HashMap<(String, u64), (u64, u64)>,
}

impl Verifier {
    /// Fresh verifier with no memoized state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Verifies every invariant on the DAG rooted at `root`, reusing state
    /// from previous calls. Returns the first violation found.
    pub fn verify(&mut self, root: &LinRef) -> Result<(), VerifyError> {
        self.verify_from(root, None)
    }

    /// Walks the DAG under `root`; `patch_bound` carries the `num_inputs` of
    /// the enclosing patch body (None outside any patch). Recursion depth is
    /// the patch nesting depth, not the DAG height.
    fn verify_from(
        &mut self,
        root: &LinRef,
        patch_bound: Option<usize>,
    ) -> Result<(), VerifyError> {
        let mut stack: Vec<(LinRef, Option<usize>)> = vec![(Arc::clone(root), patch_bound)];
        while let Some((node, patch_bound)) = stack.pop() {
            let h = node.hash_value();
            match self.seen.get(&node.id()) {
                Some(prev) if *prev == h => continue,
                Some(_) => {
                    return Err(verr(
                        Some(node.id()),
                        VerifyErrorKind::DuplicateId,
                        "id names two structurally distinct nodes",
                    ));
                }
                None => {
                    self.seen.insert(node.id(), h);
                }
            }
            match node.kind() {
                LineageKind::Placeholder(slot) => match patch_bound {
                    None => {
                        return Err(verr(
                            Some(node.id()),
                            VerifyErrorKind::PlaceholderOutsidePatch,
                            format!("placeholder slot {slot} reachable outside any patch body"),
                        ));
                    }
                    Some(n) if *slot as usize >= n => {
                        return Err(verr(
                            Some(node.id()),
                            VerifyErrorKind::PlaceholderSlotOutOfRange,
                            format!("slot {slot} out of range for patch with {n} inputs"),
                        ));
                    }
                    Some(_) => {}
                },
                LineageKind::Dedup(patch) => {
                    let patch = Arc::clone(patch);
                    self.check_dedup_node(&node, &patch)?;
                }
                LineageKind::Literal | LineageKind::Op => {}
            }
            for input in node.inputs() {
                stack.push((Arc::clone(input), patch_bound));
            }
        }
        Ok(())
    }

    fn check_dedup_node(
        &mut self,
        node: &LinRef,
        patch: &Arc<DedupPatch>,
    ) -> Result<(), VerifyError> {
        if node.inputs().len() != patch.num_inputs() {
            return Err(verr(
                Some(node.id()),
                VerifyErrorKind::DedupArityMismatch,
                format!(
                    "dedup item has {} inputs, patch '{}' expects {}",
                    node.inputs().len(),
                    patch.block_key(),
                    patch.num_inputs()
                ),
            ));
        }
        let output = node.data().unwrap_or("");
        if patch.root(output).is_none() {
            return Err(verr(
                Some(node.id()),
                VerifyErrorKind::UnknownPatchOutput,
                format!("patch '{}' defines no output '{output}'", patch.block_key()),
            ));
        }
        if self.patches_done.insert(patch.patch_id()) {
            // Verify the patch body once — eagerly, so a malformed body is
            // reported as its own violation rather than surfacing as a
            // downstream hash incoherence.
            for (_, proot) in patch.roots() {
                self.verify_from(proot, Some(patch.num_inputs()))?;
            }
            // The path bitvector must identify this patch uniquely within its
            // block: a second, structurally different patch for the same
            // (block_key, path_key) means the bitvector was corrupted.
            let sig = patch_signature(patch);
            let key = (patch.block_key().to_string(), patch.path_key());
            match self.path_index.get(&key) {
                Some((pid, prev_sig)) if *pid != patch.patch_id() && *prev_sig != sig => {
                    return Err(verr(
                        Some(node.id()),
                        VerifyErrorKind::PatchConflict,
                        format!(
                            "patches {} and {} both claim block '{}' path {:#b} with different bodies",
                            pid,
                            patch.patch_id(),
                            patch.block_key(),
                            patch.path_key()
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    self.path_index.insert(key, (patch.patch_id(), sig));
                }
            }
        }
        // Hash/equality coherence: the dedup item must hash exactly as its
        // expansion does, otherwise cache probes on deduplicated traces stop
        // matching plain traces.
        let expanded = node.resolve();
        if node.hash_value() != expanded.hash_value() {
            return Err(verr(
                Some(node.id()),
                VerifyErrorKind::HashIncoherence,
                format!(
                    "dedup item hash {:#x} != expansion hash {:#x}",
                    node.hash_value(),
                    expanded.hash_value()
                ),
            ));
        }
        Ok(())
    }
}

/// Structural signature of a patch body: output names plus root hashes
/// (placeholders hash by slot, so two bodies match iff they compute the same
/// function of their inputs).
fn patch_signature(patch: &DedupPatch) -> u64 {
    let mut parts: Vec<u64> = patch
        .roots()
        .iter()
        .map(|(name, root)| crate::lineage::item::hash_parts(name, None, &[root.hash_value()]))
        .collect();
    parts.sort_unstable();
    crate::lineage::item::hash_parts("patch-sig", None, &parts)
}

/// One-shot verification of a single DAG (see [`Verifier`] for the
/// incremental form).
pub fn verify_dag(root: &LinRef) -> Result<(), VerifyError> {
    Verifier::new().verify(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::item::LineageItem;

    fn leaf(name: &str) -> LinRef {
        LineageItem::op_with_data("read", name, vec![])
    }

    fn sample_patch() -> Arc<DedupPatch> {
        let p0 = LineageItem::placeholder(0);
        let p1 = LineageItem::placeholder(1);
        let sum = LineageItem::op("+", vec![p0.clone(), p1]);
        let out = LineageItem::op("*", vec![sum, p0]);
        DedupPatch::new("loop:test", 0, 2, vec![("out".into(), out)])
    }

    #[test]
    fn accepts_plain_and_dedup_dags() {
        let x = leaf("X");
        let root = LineageItem::op("+", vec![x.clone(), x]);
        assert!(verify_dag(&root).is_ok());

        let patch = sample_patch();
        let mut p = leaf("p");
        for _ in 0..3 {
            p = LineageItem::dedup(patch.clone(), "out", vec![leaf("G"), p]);
        }
        assert!(verify_dag(&p).is_ok());
    }

    #[test]
    fn rejects_bare_placeholder() {
        let ph = LineageItem::placeholder(0);
        let root = LineageItem::op("+", vec![ph, leaf("X")]);
        let err = verify_dag(&root).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::PlaceholderOutsidePatch);
        assert!(err.node.is_some());
    }

    #[test]
    fn rejects_slot_out_of_range() {
        // Patch declares 1 input but its body references slot 5.
        let ph = LineageItem::placeholder(5);
        let body = LineageItem::op("exp", vec![ph]);
        let patch = DedupPatch::new("loop:bad", 0, 1, vec![("o".into(), body)]);
        let d = LineageItem::dedup(patch, "o", vec![leaf("X")]);
        let err = verify_dag(&d).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::PlaceholderSlotOutOfRange);
    }

    #[test]
    fn rejects_arity_mismatch() {
        let patch = sample_patch(); // expects 2 inputs
        let d = LineageItem::dedup(patch, "out", vec![leaf("X")]);
        let err = verify_dag(&d).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::DedupArityMismatch);
    }

    #[test]
    fn rejects_unknown_output() {
        let patch = sample_patch();
        let d = LineageItem::dedup(patch, "nope", vec![leaf("X"), leaf("Y")]);
        let err = verify_dag(&d).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::UnknownPatchOutput);
    }

    #[test]
    fn rejects_path_key_conflict() {
        // Two structurally different patches claiming the same block+path.
        let b1 = LineageItem::op("exp", vec![LineageItem::placeholder(0)]);
        let b2 = LineageItem::op("log", vec![LineageItem::placeholder(0)]);
        let p1 = DedupPatch::new("loop:k", 1, 1, vec![("o".into(), b1)]);
        let p2 = DedupPatch::new("loop:k", 1, 1, vec![("o".into(), b2)]);
        let d1 = LineageItem::dedup(p1, "o", vec![leaf("X")]);
        let d2 = LineageItem::dedup(p2, "o", vec![leaf("Y")]);
        let root = LineageItem::op("+", vec![d1, d2]);
        let err = verify_dag(&root).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::PatchConflict);
    }

    #[test]
    fn identical_patch_bodies_may_share_a_path_key() {
        // First-writer-wins races can produce two patch instances with equal
        // bodies; that is benign and must not be flagged.
        let mk = || {
            let b = LineageItem::op("exp", vec![LineageItem::placeholder(0)]);
            DedupPatch::new("loop:k", 1, 1, vec![("o".into(), b)])
        };
        let d1 = LineageItem::dedup(mk(), "o", vec![leaf("X")]);
        let d2 = LineageItem::dedup(mk(), "o", vec![leaf("Y")]);
        let root = LineageItem::op("+", vec![d1, d2]);
        assert!(verify_dag(&root).is_ok());
    }

    #[test]
    fn incremental_verifier_reuses_state() {
        let mut v = Verifier::new();
        let x = leaf("X");
        let a = LineageItem::op("exp", vec![x.clone()]);
        assert!(v.verify(&a).is_ok());
        // Growing the trace re-verifies only the new node.
        let b = LineageItem::op("+", vec![a, x]);
        assert!(v.verify(&b).is_ok());
    }
}
