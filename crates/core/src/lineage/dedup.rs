//! Lineage deduplication for loops and functions (paper §3.2).
//!
//! Repeated executions of a loop body create repeated patterns in the lineage
//! DAG. Deduplication extracts each *distinct control path* of the body once,
//! as a **lineage patch** whose leaves are placeholders for the loop inputs
//! (live-in variables, the loop index, and any system-generated seeds), and
//! replaces every iteration's sub-DAG with a single dedup item.
//!
//! Patches are keyed by a *path bitvector*: bit `i` records whether branch
//! `i` (IDs assigned depth-first at setup time) evaluated to true. Once all
//! distinct paths of a body have patches, per-iteration tracing can stop —
//! only the taken path and the seeds are recorded.

use crate::lineage::item::{hash_parts, LinRef, LineageItem, LineageKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_PATCH_ID: AtomicU64 = AtomicU64::new(1);

/// A deduplicated lineage patch: one distinct control path through a loop or
/// function body, with placeholder leaves for the body inputs.
#[derive(Debug)]
pub struct DedupPatch {
    patch_id: u64,
    /// Stable key of the owning loop/function (e.g. `"fn:lm"` or `"loop:17"`).
    block_key: String,
    /// Taken-branch bitvector identifying the control path.
    path_key: u64,
    /// Number of placeholder input slots.
    num_inputs: usize,
    /// Output variable name → patch-body root.
    roots: Vec<(String, LinRef)>,
}

impl DedupPatch {
    /// Creates a patch. Roots must only reference [`LineageKind::Placeholder`]
    /// leaves with slots `< num_inputs`, plus literals.
    pub fn new(
        block_key: impl Into<String>,
        path_key: u64,
        num_inputs: usize,
        roots: Vec<(String, LinRef)>,
    ) -> Arc<Self> {
        Arc::new(DedupPatch {
            patch_id: NEXT_PATCH_ID.fetch_add(1, Ordering::Relaxed),
            block_key: block_key.into(),
            path_key,
            num_inputs,
            roots,
        })
    }

    /// Process-unique patch ID.
    pub fn patch_id(&self) -> u64 {
        self.patch_id
    }

    /// Owning loop/function key.
    pub fn block_key(&self) -> &str {
        &self.block_key
    }

    /// Taken-branch bitvector this patch encodes.
    pub fn path_key(&self) -> u64 {
        self.path_key
    }

    /// Number of placeholder slots.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Output name → root pairs.
    pub fn roots(&self) -> &[(String, LinRef)] {
        &self.roots
    }

    /// Root for a named output.
    pub fn root(&self, output: &str) -> Option<&LinRef> {
        self.roots
            .iter()
            .find(|(name, _)| name == output)
            .map(|(_, r)| r)
    }

    /// Total number of nodes across all patch roots (patch dictionary size).
    pub fn body_size(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<LinRef> = self.roots.iter().map(|(_, r)| r.clone()).collect();
        while let Some(n) = stack.pop() {
            if seen.insert(n.id()) {
                stack.extend(n.inputs().iter().cloned());
            }
        }
        seen.len()
    }

    /// Hash of the `output` root with placeholder slot `i` bound to `env[i]`.
    /// This makes a dedup item hash identically to its expansion, which is
    /// what lets deduplicated and plain traces match (paper §3.2).
    pub fn parametric_hash(&self, output: &str, env: &[u64]) -> u64 {
        let root = match self.root(output) {
            Some(r) => r,
            // Unknown output: fall back to a tagged hash so lookups still
            // terminate deterministically.
            None => return hash_parts("dedup-miss", Some(output), env),
        };
        let mut memo: HashMap<u64, u64> = HashMap::new();
        let mut stack: Vec<LinRef> = vec![root.clone()];
        while let Some(top) = stack.last() {
            if memo.contains_key(&top.id()) {
                stack.pop();
                continue;
            }
            if let LineageKind::Placeholder(slot) = top.kind() {
                let h = env
                    .get(*slot as usize)
                    .copied()
                    .unwrap_or_else(|| hash_parts("ph-unbound", None, &[u64::from(*slot)]));
                memo.insert(top.id(), h);
                stack.pop();
                continue;
            }
            let pending: Vec<LinRef> = top
                .inputs()
                .iter()
                .filter(|i| !memo.contains_key(&i.id()))
                .cloned()
                .collect();
            if pending.is_empty() {
                let ih: Vec<u64> = top
                    .inputs()
                    .iter()
                    .map(|i| memo.get(&i.id()).copied().unwrap_or(0))
                    .collect();
                let h = hash_parts(top.opcode(), top.data(), &ih);
                memo.insert(top.id(), h);
                stack.pop();
            } else {
                stack.extend(pending);
            }
        }
        memo[&root.id()]
    }

    /// Materializes the `output` root with placeholders substituted by the
    /// given input items (used by equality resolution and reconstruction).
    pub fn expand(&self, output: &str, inputs: &[LinRef]) -> LinRef {
        let root = match self.root(output) {
            Some(r) => r.clone(),
            None => return LineageItem::op_with_data("dedup-miss", output, inputs.to_vec()),
        };
        let order = root.topo_order();
        let mut rebuilt: HashMap<u64, LinRef> = HashMap::new();
        for node in order {
            let new = match node.kind() {
                LineageKind::Placeholder(slot) => inputs
                    .get(*slot as usize)
                    .cloned()
                    .unwrap_or_else(|| node.clone()),
                LineageKind::Literal => node.clone(),
                _ => {
                    let ins: Vec<LinRef> = node
                        .inputs()
                        .iter()
                        .map(|i| rebuilt[&i.id()].clone())
                        .collect();
                    match node.data() {
                        Some(d) => LineageItem::op_with_data(node.opcode(), d, ins),
                        None => LineageItem::op(node.opcode(), ins),
                    }
                }
            };
            rebuilt.insert(node.id(), new);
        }
        rebuilt[&root.id()].clone()
    }
}

/// Runtime tracer for the taken control path and captured seeds of one
/// iteration (paper §3.2, "bitvector b" plus seed placeholders).
#[derive(Debug, Default, Clone)]
pub struct PathTracer {
    bits: u64,
    seeds: Vec<i64>,
}

impl PathTracer {
    /// Fresh tracer with no branches taken.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of branch `id` (IDs are assigned depth-first at
    /// dedup setup; at most 64 branches per body are supported — bodies with
    /// more fall back to plain tracing).
    pub fn record_branch(&mut self, id: u32, taken: bool) {
        if taken {
            self.bits |= 1u64 << id;
        }
    }

    /// Records a system-generated seed encountered during the iteration.
    pub fn record_seed(&mut self, seed: i64) {
        self.seeds.push(seed);
    }

    /// The path bitvector.
    pub fn path_key(&self) -> u64 {
        self.bits
    }

    /// Captured seeds in order of occurrence.
    pub fn seeds(&self) -> &[i64] {
        &self.seeds
    }
}

/// Per-loop/function registry of lineage patches, shared across iterations
/// (and across concurrent parfor workers, hence the mutex).
#[derive(Debug)]
pub struct DedupRegistry {
    block_key: String,
    num_distinct_paths: u64,
    inner: Mutex<HashMap<u64, Arc<DedupPatch>>>,
}

impl DedupRegistry {
    /// Creates a registry for a body with `num_branches` conditional branches
    /// (2^branches distinct control paths; paper counts these in a single
    /// pass through the program at setup).
    pub fn new(block_key: impl Into<String>, num_branches: u32) -> Self {
        DedupRegistry {
            block_key: block_key.into(),
            num_distinct_paths: 1u64.checked_shl(num_branches).unwrap_or(u64::MAX),
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Owning block key.
    pub fn block_key(&self) -> &str {
        &self.block_key
    }

    /// Patch for a path, if already traced.
    pub fn get(&self, path_key: u64) -> Option<Arc<DedupPatch>> {
        self.inner.lock().get(&path_key).cloned()
    }

    /// Inserts a patch for a path unless one exists; returns the canonical
    /// patch for that path (first writer wins, so concurrent parfor workers
    /// converge on one patch instance).
    pub fn insert(&self, patch: Arc<DedupPatch>) -> Arc<DedupPatch> {
        let mut map = self.inner.lock();
        map.entry(patch.path_key()).or_insert(patch).clone()
    }

    /// True once every distinct control path has a patch — per-iteration
    /// lineage tracing can then stop (only path bits + seeds are recorded).
    pub fn is_complete(&self) -> bool {
        self.inner.lock().len() as u64 >= self.num_distinct_paths
    }

    /// Number of patches traced so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no patch has been traced yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Snapshot of all patches (for serialization).
    pub fn patches(&self) -> Vec<Arc<DedupPatch>> {
        self.inner.lock().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::item::lineage_eq;

    /// Builds the patch for `out = (in0 + in1) * in0`.
    fn sample_patch() -> Arc<DedupPatch> {
        let p0 = LineageItem::placeholder(0);
        let p1 = LineageItem::placeholder(1);
        let sum = LineageItem::op("+", vec![p0.clone(), p1]);
        let out = LineageItem::op("*", vec![sum, p0]);
        DedupPatch::new("loop:test", 0, 2, vec![("out".into(), out)])
    }

    fn leaf(name: &str) -> LinRef {
        LineageItem::op_with_data("read", name, vec![])
    }

    #[test]
    fn expansion_substitutes_placeholders() {
        let patch = sample_patch();
        let (a, b) = (leaf("A"), leaf("B"));
        let expanded = patch.expand("out", &[a.clone(), b.clone()]);
        // Expected: (A + B) * A
        let expect = LineageItem::op("*", vec![LineageItem::op("+", vec![a.clone(), b]), a]);
        assert!(lineage_eq(&expanded, &expect));
    }

    #[test]
    fn dedup_item_hash_equals_expansion_hash() {
        let patch = sample_patch();
        let (a, b) = (leaf("A"), leaf("B"));
        let dedup = LineageItem::dedup(patch.clone(), "out", vec![a.clone(), b.clone()]);
        let expanded = patch.expand("out", &[a, b]);
        assert_eq!(dedup.hash_value(), expanded.hash_value());
        assert!(lineage_eq(&dedup, &expanded));
    }

    #[test]
    fn dedup_items_with_different_inputs_differ() {
        let patch = sample_patch();
        let d1 = LineageItem::dedup(patch.clone(), "out", vec![leaf("A"), leaf("B")]);
        let d2 = LineageItem::dedup(patch.clone(), "out", vec![leaf("A"), leaf("C")]);
        assert_ne!(d1.hash_value(), d2.hash_value());
        assert!(!lineage_eq(&d1, &d2));
        let d3 = LineageItem::dedup(patch, "out", vec![leaf("A"), leaf("B")]);
        assert!(lineage_eq(&d1, &d3));
    }

    #[test]
    fn chained_dedup_items_model_loop_iterations() {
        // Mimics PageRank (Example 4): p_{k+1} = patch(G, p_k).
        let p0 = LineageItem::placeholder(0);
        let p1 = LineageItem::placeholder(1);
        let body = LineageItem::op("+", vec![LineageItem::op("ba+*", vec![p0, p1.clone()]), p1]);
        let patch = DedupPatch::new("loop:pr", 0, 2, vec![("p".into(), body)]);
        let g = leaf("G");
        let mut p = leaf("p");
        for _ in 0..3 {
            p = LineageItem::dedup(patch.clone(), "p", vec![g.clone(), p]);
        }
        // Expanded equivalent.
        let mut q = leaf("p");
        for _ in 0..3 {
            q = LineageItem::op(
                "+",
                vec![LineageItem::op("ba+*", vec![g.clone(), q.clone()]), q],
            );
        }
        assert_eq!(p.hash_value(), q.hash_value());
        assert!(lineage_eq(&p, &q));
        // Deduplicated DAG is much smaller: 3 dedup items + 2 leaves.
        assert_eq!(p.dag_size(), 5);
        assert_eq!(q.dag_size(), 8);
    }

    #[test]
    fn path_tracer_builds_bitvector() {
        let mut t = PathTracer::new();
        t.record_branch(0, true);
        t.record_branch(1, false);
        t.record_branch(2, true);
        assert_eq!(t.path_key(), 0b101);
        t.record_seed(42);
        assert_eq!(t.seeds(), &[42]);
    }

    #[test]
    fn registry_completes_when_all_paths_traced() {
        let reg = DedupRegistry::new("loop:x", 1); // 2 paths
        assert!(reg.is_empty());
        assert!(!reg.is_complete());
        let p0 = LineageItem::placeholder(0);
        reg.insert(DedupPatch::new(
            "loop:x",
            0,
            1,
            vec![("o".into(), p0.clone())],
        ));
        assert!(!reg.is_complete());
        reg.insert(DedupPatch::new("loop:x", 1, 1, vec![("o".into(), p0)]));
        assert!(reg.is_complete());
        assert_eq!(reg.len(), 2);
        assert!(reg.get(0).is_some());
        assert!(reg.get(2).is_none());
    }

    #[test]
    fn registry_first_writer_wins() {
        let reg = DedupRegistry::new("loop:y", 0);
        let ph = LineageItem::placeholder(0);
        let a = DedupPatch::new("loop:y", 0, 1, vec![("o".into(), ph.clone())]);
        let b = DedupPatch::new("loop:y", 0, 1, vec![("o".into(), ph)]);
        let first = reg.insert(a.clone());
        let second = reg.insert(b);
        assert_eq!(first.patch_id(), a.patch_id());
        assert_eq!(second.patch_id(), a.patch_id());
    }

    #[test]
    fn seeds_as_patch_inputs_keep_iterations_distinct() {
        // Non-determinism handling: seed is an input placeholder, so two
        // iterations with different seeds produce different lineage.
        let data = LineageItem::placeholder(0);
        let seed = LineageItem::placeholder(1);
        let body = LineageItem::op("*", vec![data, seed]);
        let patch = DedupPatch::new("loop:nd", 0, 2, vec![("o".into(), body)]);
        let x = leaf("X");
        let s1 = LineageItem::literal("i:42");
        let s2 = LineageItem::literal("i:43");
        let d1 = LineageItem::dedup(patch.clone(), "o", vec![x.clone(), s1]);
        let d2 = LineageItem::dedup(patch, "o", vec![x, s2]);
        assert!(!lineage_eq(&d1, &d2));
    }

    #[test]
    fn body_size_counts_unique_nodes() {
        let patch = sample_patch();
        assert_eq!(patch.body_size(), 4); // 2 placeholders + "+" + "*"
    }
}
