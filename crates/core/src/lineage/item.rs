//! Lineage items and lineage DAGs (paper §3.1, Definition 1).
//!
//! A lineage item consists of an ID, an opcode, an ordered list of input
//! lineage items, an optional data string, and a memoized hash. Leaf nodes
//! are literals or matrix-creation operations (`read`, `rand`); inner nodes
//! are executed operations. The DAG is immutable, which lets hashes be cached
//! once computed.
//!
//! Two concerns from the paper shape this module:
//!
//! * **Large DAGs** — hashing, equality, and traversal are all implemented
//!   non-recursively (explicit stacks plus memo tables), because loop-heavy
//!   programs produce DAGs whose height far exceeds any sane stack budget.
//! * **Deduplication** — a [`LineageKind::Dedup`] item stands for a whole
//!   *lineage patch* applied to its inputs. Its hash is defined to equal the
//!   hash of the expanded sub-DAG, and equality resolves dedup items on
//!   demand, so deduplicated and plain traces compare as equivalent
//!   (paper §3.2, "Operations on Deduplicated Graphs").

use crate::lineage::dedup::DedupPatch;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Shared reference to an immutable lineage item.
pub type LinRef = Arc<LineageItem>;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// What kind of node a lineage item is.
#[derive(Debug, Clone)]
pub enum LineageKind {
    /// A literal constant; `data` holds the type-tagged encoding.
    Literal,
    /// A regular operation (including creation ops like `read`/`rand`, whose
    /// parameters — notably system-generated seeds — live in `data`).
    Op,
    /// A placeholder leaf inside a dedup or fused-operator patch; the payload
    /// is the input slot index.
    Placeholder(u32),
    /// A deduplicated sub-DAG: applying `patch` to this item's inputs yields
    /// the represented computation. `data` holds the patch output name.
    Dedup(Arc<DedupPatch>),
}

/// A node in a lineage DAG. See module docs.
///
/// ```
/// use lima_core::lineage::item::{lineage_eq, LineageItem};
///
/// // Two independently built but structurally equal traces of (X + X) * 2.
/// let build = || {
///     let x = LineageItem::op_with_data("read", "X.csv", vec![]);
///     let s = LineageItem::op("+", vec![x.clone(), x]);
///     LineageItem::op("*", vec![s, LineageItem::literal("f:2")])
/// };
/// let (a, b) = (build(), build());
/// assert_eq!(a.hash_value(), b.hash_value());
/// assert!(lineage_eq(&a, &b));
/// ```
pub struct LineageItem {
    id: u64,
    opcode: Box<str>,
    data: Option<Box<str>>,
    inputs: Box<[LinRef]>,
    kind: LineageKind,
    hash: OnceLock<u64>,
    /// Memoized DAG height (leaf distance), used by the DAG-Height eviction
    /// policy; cached so registering deep traces stays O(1) amortized.
    height: OnceLock<u32>,
    /// Shape of the (matrix) value this item produced, registered by the
    /// runtime after execution. Rewrites use it to size compensation plans;
    /// it does not participate in hashing or equality.
    shape: OnceLock<(usize, usize)>,
    /// Memoized expansion of a dedup item into a plain sub-DAG (only used on
    /// the rare equality paths that must resolve the patch).
    expanded: OnceLock<LinRef>,
}

impl Drop for LineageItem {
    fn drop(&mut self) {
        // Deep traces (hundreds of thousands of chained items) would blow the
        // stack under the default recursive drop; detach children iteratively.
        let mut stack: Vec<LinRef> = std::mem::take(&mut self.inputs).into_vec();
        while let Some(item) = stack.pop() {
            if let Some(mut inner) = Arc::into_inner(item) {
                stack.extend(std::mem::take(&mut inner.inputs).into_vec());
                if let Some(exp) = inner.expanded.take() {
                    stack.push(exp);
                }
            }
        }
    }
}

impl std::fmt::Debug for LineageItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}) {}", self.id, self.opcode)?;
        if let Some(d) = &self.data {
            write!(f, " [{d}]")?;
        }
        if !self.inputs.is_empty() {
            write!(
                f,
                " <- {:?}",
                self.inputs.iter().map(|i| i.id).collect::<Vec<_>>()
            )?;
        }
        Ok(())
    }
}

impl LineageItem {
    fn alloc(
        opcode: impl Into<Box<str>>,
        data: Option<Box<str>>,
        inputs: Vec<LinRef>,
        kind: LineageKind,
    ) -> LinRef {
        Arc::new(LineageItem {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            opcode: opcode.into(),
            data,
            inputs: inputs.into_boxed_slice(),
            kind,
            hash: OnceLock::new(),
            height: OnceLock::new(),
            shape: OnceLock::new(),
            expanded: OnceLock::new(),
        })
    }

    /// Creates a literal leaf from its type-tagged encoding
    /// (see `ScalarValue::lineage_literal`).
    pub fn literal(encoded: impl Into<Box<str>>) -> LinRef {
        Self::alloc(
            crate::opcodes::LITERAL,
            Some(encoded.into()),
            Vec::new(),
            LineageKind::Literal,
        )
    }

    /// Creates a regular operation node.
    pub fn op(opcode: impl Into<Box<str>>, inputs: Vec<LinRef>) -> LinRef {
        Self::alloc(opcode, None, inputs, LineageKind::Op)
    }

    /// Creates a regular operation node with a data payload (creation
    /// parameters, slicing bounds, captured seeds, ...).
    pub fn op_with_data(
        opcode: impl Into<Box<str>>,
        data: impl Into<Box<str>>,
        inputs: Vec<LinRef>,
    ) -> LinRef {
        Self::alloc(opcode, Some(data.into()), inputs, LineageKind::Op)
    }

    /// Creates a placeholder leaf for patch input slot `slot`.
    pub fn placeholder(slot: u32) -> LinRef {
        Self::alloc(
            crate::opcodes::PLACEHOLDER,
            None,
            Vec::new(),
            LineageKind::Placeholder(slot),
        )
    }

    /// Creates a dedup item standing for `patch` applied to `inputs`;
    /// `output` selects which patch root this item represents.
    pub fn dedup(patch: Arc<DedupPatch>, output: &str, inputs: Vec<LinRef>) -> LinRef {
        Self::alloc(
            crate::opcodes::DEDUP,
            Some(output.into()),
            inputs,
            LineageKind::Dedup(patch),
        )
    }

    /// Unique node ID (process-wide).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opcode string.
    pub fn opcode(&self) -> &str {
        &self.opcode
    }

    /// Optional data payload.
    pub fn data(&self) -> Option<&str> {
        self.data.as_deref()
    }

    /// Ordered input items.
    pub fn inputs(&self) -> &[LinRef] {
        &self.inputs
    }

    /// Node kind.
    pub fn kind(&self) -> &LineageKind {
        &self.kind
    }

    /// True for leaves (literals, placeholders, and zero-input creations).
    pub fn is_leaf(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Registers the shape of the produced matrix value (idempotent).
    pub fn set_shape(&self, rows: usize, cols: usize) {
        let _ = self.shape.set((rows, cols));
    }

    /// Shape registered by the runtime, if any.
    pub fn shape(&self) -> Option<(usize, usize)> {
        self.shape.get().copied()
    }

    /// Memoized structural hash. Dedup items hash as their expansion would,
    /// computed parametrically over the patch (without materializing it).
    ///
    /// Fast path: on the instruction hot path every input is a previously
    /// hashed item or leaf, so the node hashes locally with no traversal
    /// stack and no allocation. The iterative post-order walk only runs for
    /// DAGs with genuinely unhashed interior nodes (deserialized traces,
    /// hand-built probes).
    pub fn hash_value(self: &Arc<Self>) -> u64 {
        if let Some(h) = self.hash.get() {
            return *h;
        }
        if self.inputs_hashed() {
            let h = self.compute_local_hash();
            let _ = self.hash.set(h);
            return h;
        }
        let mut stack: Vec<LinRef> = Vec::new();
        hash_into(self, &mut stack);
        // The walk hashed every reachable node, including `self`.
        self.hash
            .get()
            .copied()
            .unwrap_or_else(|| self.compute_local_hash())
    }

    /// True when every immediate input already carries a memoized hash.
    #[inline]
    fn inputs_hashed(&self) -> bool {
        self.inputs.iter().all(|i| i.hash.get().is_some())
    }

    /// Hash of this node assuming all inputs are hashed. For dedup items,
    /// walks the patch body with placeholder slots bound to input hashes.
    fn compute_local_hash(&self) -> u64 {
        match &self.kind {
            LineageKind::Dedup(patch) => {
                let env: Vec<u64> = self
                    .inputs
                    .iter()
                    .map(|i| i.hash.get().copied().unwrap_or_else(|| i.hash_value()))
                    .collect();
                let output = self.data.as_deref().unwrap_or("");
                patch.parametric_hash(output, &env)
            }
            LineageKind::Placeholder(slot) => {
                // Placeholders only get hashed when a patch body is hashed
                // directly (e.g. when serializing patches); they hash on slot.
                let mut h = FxHasher::default();
                h.write_u64(0x9e3779b97f4a7c15);
                h.write_u64(u64::from(*slot));
                h.finish()
            }
            _ => {
                // Nearly every op has <= 8 inputs; hash through an inline
                // buffer so the per-instruction path allocates nothing.
                const INLINE: usize = 8;
                if self.inputs.len() <= INLINE {
                    let mut buf = [0u64; INLINE];
                    for (slot, i) in buf.iter_mut().zip(self.inputs.iter()) {
                        *slot = i.hash.get().copied().unwrap_or_else(|| i.hash_value());
                    }
                    hash_parts(
                        &self.opcode,
                        self.data.as_deref(),
                        &buf[..self.inputs.len()],
                    )
                } else {
                    let input_hashes: Vec<u64> = self
                        .inputs
                        .iter()
                        .map(|i| i.hash.get().copied().unwrap_or_else(|| i.hash_value()))
                        .collect();
                    hash_parts(&self.opcode, self.data.as_deref(), &input_hashes)
                }
            }
        }
    }

    /// Expands a dedup item into a plain sub-DAG over this item's inputs.
    /// Plain items expand to themselves. The expansion is memoized.
    pub fn resolve(self: &Arc<Self>) -> LinRef {
        match &self.kind {
            LineageKind::Dedup(patch) => Arc::clone(self.expanded.get_or_init(|| {
                let output = self.data.as_deref().unwrap_or("");
                patch.expand(output, &self.inputs)
            })),
            _ => Arc::clone(self),
        }
    }

    /// Number of reachable nodes (dedup items count as single nodes —
    /// this is the *deduplicated* size reported in Fig 6(b)).
    pub fn dag_size(self: &Arc<Self>) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![Arc::clone(self)];
        while let Some(n) = stack.pop() {
            if seen.insert(n.id) {
                stack.extend(n.inputs.iter().cloned());
            }
        }
        seen.len()
    }

    /// Height of the DAG (leaf distance), used by the DAG-Height eviction
    /// policy. Computed iteratively and memoized per node, so repeated calls
    /// on growing traces stay O(1) amortized.
    pub fn height(self: &Arc<Self>) -> u32 {
        if let Some(h) = self.height.get() {
            return *h;
        }
        let mut stack: Vec<LinRef> = vec![Arc::clone(self)];
        while let Some(top) = stack.last() {
            if top.height.get().is_some() {
                stack.pop();
                continue;
            }
            let pending: Vec<LinRef> = top
                .inputs
                .iter()
                .filter(|i| i.height.get().is_none())
                .cloned()
                .collect();
            if pending.is_empty() {
                let h = top
                    .inputs
                    .iter()
                    .map(|i| i.height.get().copied().unwrap_or_else(|| i.height()) + 1)
                    .max()
                    .unwrap_or(0);
                let _ = top.height.set(h);
                stack.pop();
            } else {
                stack.extend(pending);
            }
        }
        // The loop measured every reachable node, including `self`.
        self.height.get().copied().unwrap_or(0)
    }

    /// Approximate in-memory size of the DAG in bytes (Fig 6(b)).
    pub fn dag_bytes(self: &Arc<Self>) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![Arc::clone(self)];
        let mut bytes = 0usize;
        while let Some(n) = stack.pop() {
            if seen.insert(n.id) {
                bytes += std::mem::size_of::<LineageItem>()
                    + n.opcode.len()
                    + n.data.as_deref().map_or(0, str::len)
                    + n.inputs.len() * std::mem::size_of::<LinRef>();
                stack.extend(n.inputs.iter().cloned());
            }
        }
        bytes
    }

    /// Nodes of the DAG in topological order (inputs before consumers),
    /// computed iteratively. Dedup items are *not* expanded.
    pub fn topo_order(self: &Arc<Self>) -> Vec<LinRef> {
        let mut order = Vec::new();
        let mut state: HashMap<u64, bool> = HashMap::new(); // false=open, true=done
        let mut stack: Vec<LinRef> = vec![Arc::clone(self)];
        while let Some(top) = stack.last() {
            if state.get(&top.id) == Some(&true) {
                stack.pop();
                continue;
            }
            if state.get(&top.id) == Some(&false) {
                state.insert(top.id, true);
                order.push(Arc::clone(top));
                stack.pop();
                continue;
            }
            state.insert(top.id, false);
            let pending: Vec<LinRef> = top
                .inputs
                .iter()
                .filter(|i| state.get(&i.id) != Some(&true))
                .cloned()
                .collect();
            stack.extend(pending);
        }
        order
    }
}

/// Hashes every unhashed node reachable from `root`, reusing `stack` as the
/// traversal scratch. Iterative post-order: inputs are hashed before parents.
fn hash_into(root: &LinRef, stack: &mut Vec<LinRef>) {
    if root.hash.get().is_some() {
        return;
    }
    stack.push(Arc::clone(root));
    while let Some(top) = stack.last() {
        if top.hash.get().is_some() {
            stack.pop();
            continue;
        }
        let top = Arc::clone(top);
        let before = stack.len();
        for i in top.inputs.iter() {
            if i.hash.get().is_none() {
                stack.push(Arc::clone(i));
            }
        }
        if stack.len() == before {
            let h = top.compute_local_hash();
            let _ = top.hash.set(h);
            stack.pop();
        }
    }
}

/// Hashes a run of lineage roots in one pass, sharing a single traversal
/// stack across the whole batch. The interpreter collects the items traced in
/// a basic block and flushes them here at the block boundary, so the
/// per-instruction observation path pays one FNV round-trip per *block*
/// instead of one allocation-bearing round-trip per instruction. Roots whose
/// inputs are already memoized (the common case: an instruction's inputs are
/// earlier outputs) hash locally without touching the stack at all.
///
/// Returns the number of roots that were actually hashed by this call (the
/// rest were already memoized); callers feed it into the
/// `hash_batch_items` statistic.
pub fn hash_batch(roots: &[LinRef]) -> usize {
    let mut stack: Vec<LinRef> = Vec::new();
    let mut hashed = 0usize;
    for r in roots {
        if r.hash.get().is_some() {
            continue;
        }
        hashed += 1;
        if r.inputs_hashed() {
            let h = r.compute_local_hash();
            let _ = r.hash.set(h);
        } else {
            hash_into(r, &mut stack);
        }
    }
    hashed
}

/// Structural equality of two lineage DAGs, resolving dedup items on demand.
/// Iterative with a memo set of already-matched node pairs; cheap hash
/// pruning short-circuits the common mismatch case.
pub fn lineage_eq(a: &LinRef, b: &LinRef) -> bool {
    if Arc::ptr_eq(a, b) {
        return true;
    }
    if a.hash_value() != b.hash_value() {
        return false;
    }
    let mut matched: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    let mut stack: Vec<(LinRef, LinRef)> = vec![(Arc::clone(a), Arc::clone(b))];
    while let Some((x, y)) = stack.pop() {
        if Arc::ptr_eq(&x, &y) || !matched.insert((x.id, y.id)) {
            continue;
        }
        // Resolve dedup items so plain and deduplicated traces compare equal.
        let (x, y) = (x.resolve(), y.resolve());
        if Arc::ptr_eq(&x, &y) {
            continue;
        }
        if x.opcode != y.opcode || x.data != y.data || x.inputs.len() != y.inputs.len() {
            return false;
        }
        if let (LineageKind::Placeholder(sx), LineageKind::Placeholder(sy)) = (&x.kind, &y.kind) {
            if sx != sy {
                return false;
            }
        }
        for (ix, iy) in x.inputs.iter().zip(y.inputs.iter()) {
            if ix.hash_value() != iy.hash_value() {
                return false;
            }
            stack.push((Arc::clone(ix), Arc::clone(iy)));
        }
    }
    true
}

/// Hash-map key wrapper giving [`LinRef`] value semantics: hashes by the
/// memoized structural hash and compares with [`lineage_eq`].
#[derive(Clone, Debug)]
pub struct LinKey(pub LinRef);

impl PartialEq for LinKey {
    fn eq(&self, other: &Self) -> bool {
        lineage_eq(&self.0, &other.0)
    }
}
impl Eq for LinKey {}
impl Hash for LinKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash_value());
    }
}

/// FxHash-style fast hasher: lineage hashing is hot (every instruction hashes
/// one node) and does not need DoS resistance.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // One mix round per 8-byte word instead of per byte. The trailing
        // partial word is zero-padded, so the length is mixed in last to keep
        // "ab" and "ab\0" distinct.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.write_u64(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.write_u64(u64::from_le_bytes(w));
        }
        self.write_u64(bytes.len() as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`. Used for the
/// variable/literal interning maps on the per-instruction path, which do not
/// need DoS resistance.
#[derive(Default, Clone, Copy, Debug)]
pub struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Combines opcode, data, and input hashes into a node hash.
/// The paper notes hash collisions from integer overflow on long repetitive
/// traces; the rotate-multiply mix plus a length salt avoids the classic
/// `31*h + x` degeneracies.
pub fn hash_parts(opcode: &str, data: Option<&str>, input_hashes: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    h.write(opcode.as_bytes());
    h.write_u8(0xfe);
    if let Some(d) = data {
        h.write(d.as_bytes());
    }
    h.write_u8(0xfd);
    h.write_usize(input_hashes.len());
    for &ih in input_hashes {
        h.write_u64(ih);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_increasing() {
        let a = LineageItem::literal("i:1");
        let b = LineageItem::literal("i:1");
        assert!(b.id() > a.id());
    }

    #[test]
    fn structurally_equal_dags_hash_and_compare_equal() {
        let build = || {
            let x = LineageItem::op_with_data("read", "X.csv", vec![]);
            let y = LineageItem::op_with_data("read", "y.csv", vec![]);
            let s = LineageItem::op("+", vec![x.clone(), y]);
            LineageItem::op("*", vec![s.clone(), s])
        };
        let a = build();
        let b = build();
        assert_eq!(a.hash_value(), b.hash_value());
        assert!(lineage_eq(&a, &b));
    }

    #[test]
    fn different_opcode_data_or_inputs_compare_unequal() {
        let x = LineageItem::op_with_data("read", "X.csv", vec![]);
        let y = LineageItem::op_with_data("read", "y.csv", vec![]);
        assert!(!lineage_eq(&x, &y));
        let a = LineageItem::op("+", vec![x.clone(), y.clone()]);
        let b = LineageItem::op("-", vec![x.clone(), y.clone()]);
        assert!(!lineage_eq(&a, &b));
        // Input order matters (ordered list of inputs).
        let c = LineageItem::op("+", vec![y, x]);
        assert!(!lineage_eq(&a, &c));
    }

    #[test]
    fn deep_chain_hashing_does_not_overflow_stack() {
        let mut node = LineageItem::literal("f:0");
        for _ in 0..200_000 {
            node = LineageItem::op("+", vec![node]);
        }
        // Must not stack-overflow and must terminate.
        let h = node.hash_value();
        assert_ne!(h, 0);
        assert_eq!(node.dag_size(), 200_001);
        assert_eq!(node.height(), 200_000);
    }

    #[test]
    fn deep_equal_chains_compare_without_recursion() {
        let build = |n: usize| {
            let mut node = LineageItem::literal("f:0");
            for _ in 0..n {
                node = LineageItem::op("+", vec![node]);
            }
            node
        };
        let a = build(50_000);
        let b = build(50_000);
        assert!(lineage_eq(&a, &b));
        let c = build(50_001);
        assert!(!lineage_eq(&a, &c));
    }

    #[test]
    fn shared_subgraphs_counted_once() {
        let x = LineageItem::literal("f:1");
        let a = LineageItem::op("+", vec![x.clone(), x.clone()]);
        let b = LineageItem::op("*", vec![a.clone(), a]);
        assert_eq!(b.dag_size(), 3);
        assert_eq!(b.height(), 2);
    }

    #[test]
    fn topo_order_puts_inputs_first() {
        let x = LineageItem::literal("f:1");
        let y = LineageItem::op("exp", vec![x.clone()]);
        let z = LineageItem::op("+", vec![x.clone(), y.clone()]);
        let order = z.topo_order();
        let pos = |n: &LinRef| order.iter().position(|o| o.id() == n.id()).unwrap();
        assert!(pos(&x) < pos(&y));
        assert!(pos(&y) < pos(&z));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn shape_registration_is_idempotent() {
        let x = LineageItem::literal("f:1");
        assert_eq!(x.shape(), None);
        x.set_shape(3, 4);
        x.set_shape(9, 9); // ignored
        assert_eq!(x.shape(), Some((3, 4)));
    }

    #[test]
    #[allow(clippy::mutable_key_type)] // OnceLock caches never change Hash/Eq
    fn lin_key_value_semantics() {
        let mut map = std::collections::HashMap::new();
        let a = LineageItem::op("+", vec![LineageItem::literal("i:1")]);
        let b = LineageItem::op("+", vec![LineageItem::literal("i:1")]);
        map.insert(LinKey(a), 1);
        assert_eq!(map.get(&LinKey(b)), Some(&1));
    }

    #[test]
    fn chunked_writes_distinguish_zero_padded_tails() {
        // `write` zero-pads the trailing partial word, so the length mix must
        // keep "abc" and "abc\0" (and empty vs "\0") distinct.
        let h = |bytes: &[u8]| {
            let mut f = FxHasher::default();
            f.write(bytes);
            f.finish()
        };
        assert_ne!(h(b"abc"), h(b"abc\0"));
        assert_ne!(h(b""), h(b"\0"));
        assert_ne!(h(b"12345678"), h(b"12345678\0"));
        assert_ne!(h(b"0123456789abcdef"), h(b"0123456789abcdeF"));
    }

    #[test]
    fn hash_batch_matches_individual_hashing() {
        let build = || {
            let x = LineageItem::op_with_data("read", "X.csv", vec![]);
            let s = LineageItem::op("+", vec![x.clone(), x]);
            LineageItem::op("*", vec![s.clone(), LineageItem::literal("f:2")])
        };
        let a = build();
        let b = build();
        // Batch-hash one copy, hash the other individually: same values.
        assert_eq!(hash_batch(std::slice::from_ref(&a)), 1);
        assert_eq!(a.hash_value(), b.hash_value());
        // Second flush over the same roots finds everything memoized.
        assert_eq!(hash_batch(std::slice::from_ref(&a)), 0);
    }

    #[test]
    fn hash_batch_handles_deep_chains_and_shared_prefixes() {
        // A batch shaped like a traced block: each root extends the previous
        // one, so all but the first hash through the local fast path.
        let mut node = LineageItem::literal("f:0");
        let mut roots = Vec::new();
        for _ in 0..100 {
            node = LineageItem::op("+", vec![node.clone()]);
            roots.push(node.clone());
        }
        assert_eq!(hash_batch(&roots), 100);
        // Deep unhashed chain under a single root must not overflow the stack.
        let mut deep = LineageItem::literal("f:1");
        for _ in 0..100_000 {
            deep = LineageItem::op("+", vec![deep]);
        }
        assert_eq!(hash_batch(std::slice::from_ref(&deep)), 1);
        assert_eq!(deep.dag_size(), 100_001);
    }

    #[test]
    fn hash_distinguishes_repetitive_structures() {
        // Regression guard for the paper's footnote on collisions in long
        // repeated traces: slightly different repetition counts must differ.
        let build = |n: usize| {
            let mut node = LineageItem::literal("f:1");
            for _ in 0..n {
                node = LineageItem::op("+", vec![node.clone(), node]);
            }
            node
        };
        let h1 = build(30).hash_value();
        let h2 = build(31).hash_value();
        assert_ne!(h1, h2);
    }
}
