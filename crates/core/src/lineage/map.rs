//! The `LineageMap`: live-variable-name → lineage-item mapping maintained per
//! execution context (paper §3.1). Thread- and function-local by
//! construction: every interpreter context owns one.

use crate::lineage::item::{FxBuildHasher, LinRef, LineageItem};
use std::collections::HashMap;

/// Maps live variable names to the lineage of their current values, and
/// caches literal lineage items (the paper's `LineageMap`). Both maps sit on
/// the per-instruction path (every traced output re-binds a variable), so
/// they use the same Fx hasher as lineage hashing instead of SipHash.
#[derive(Debug, Default)]
pub struct LineageMap {
    vars: HashMap<String, LinRef, FxBuildHasher>,
    literals: HashMap<String, LinRef, FxBuildHasher>,
}

impl LineageMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lineage of a live variable.
    pub fn get(&self, var: &str) -> Option<&LinRef> {
        self.vars.get(var)
    }

    /// Binds a variable to a lineage item (tracing an instruction output).
    pub fn set(&mut self, var: impl Into<String>, item: LinRef) {
        self.vars.insert(var.into(), item);
    }

    /// `rmvar`: drops the mapping of a removed variable.
    pub fn remove(&mut self, var: &str) -> Option<LinRef> {
        self.vars.remove(var)
    }

    /// `mvvar`: renames a variable, moving its lineage.
    pub fn rename(&mut self, from: &str, to: impl Into<String>) {
        if let Some(item) = self.vars.remove(from) {
            self.vars.insert(to.into(), item);
        }
    }

    /// Literal lineage item for a type-tagged encoding, cached so repeated
    /// uses of the same constant share one node.
    pub fn literal(&mut self, encoded: &str) -> LinRef {
        if let Some(item) = self.literals.get(encoded) {
            return item.clone();
        }
        let item = LineageItem::literal(encoded);
        self.literals.insert(encoded.to_string(), item.clone());
        item
    }

    /// All live variable bindings (used when merging parfor worker results).
    pub fn bindings(&self) -> impl Iterator<Item = (&str, &LinRef)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Clears all bindings (literal cache survives — literals are immutable).
    pub fn clear(&mut self) {
        self.vars.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::item::lineage_eq;
    use std::sync::Arc;

    #[test]
    fn set_get_remove() {
        let mut m = LineageMap::new();
        let x = LineageItem::op_with_data("read", "X", vec![]);
        m.set("X", x.clone());
        assert!(lineage_eq(m.get("X").unwrap(), &x));
        assert!(m.get("Y").is_none());
        assert!(m.remove("X").is_some());
        assert!(m.get("X").is_none());
        assert!(m.remove("X").is_none());
    }

    #[test]
    fn rename_moves_lineage() {
        let mut m = LineageMap::new();
        let x = LineageItem::op_with_data("read", "X", vec![]);
        m.set("tmp7", x.clone());
        m.rename("tmp7", "beta");
        assert!(m.get("tmp7").is_none());
        assert!(Arc::ptr_eq(m.get("beta").unwrap(), &x));
        // renaming a missing variable is a no-op
        m.rename("missing", "other");
        assert!(m.get("other").is_none());
    }

    #[test]
    fn literal_items_are_cached() {
        let mut m = LineageMap::new();
        let a = m.literal("f:1.5");
        let b = m.literal("f:1.5");
        assert!(Arc::ptr_eq(&a, &b));
        let c = m.literal("f:2.5");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn clear_keeps_literal_cache() {
        let mut m = LineageMap::new();
        let lit = m.literal("i:7");
        m.set("X", lit.clone());
        m.clear();
        assert!(m.is_empty());
        assert!(Arc::ptr_eq(&m.literal("i:7"), &lit));
    }

    #[test]
    fn bindings_iterates_live_vars() {
        let mut m = LineageMap::new();
        m.set("a", LineageItem::literal("i:1"));
        m.set("b", LineageItem::literal("i:2"));
        let mut names: Vec<&str> = m.bindings().map(|(k, _)| k).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(m.len(), 2);
    }
}
