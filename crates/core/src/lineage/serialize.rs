//! Lineage-log serialization and deserialization (paper §3.1, Fig 3).
//!
//! The serialized form is a plain-text *lineage log*: one line per lineage
//! item, inputs referenced by ID, every item serialized exactly once
//! (memoization over the DAG). Deduplicated graphs serialize their patch
//! dictionary first, preserving the compression for storage and transfer
//! (paper §3.2).
//!
//! Grammar (one entry per line):
//!
//! ```text
//! ::patch <idx> <block-key> <path-key> <num-inputs>   start a patch
//! ::root <output-name> (<id>)                         patch output root
//! ::endpatch                                          end of patch body
//! (<id>) L <data>                                     literal
//! (<id>) P <slot>                                     placeholder (in patches)
//! (<id>) I <opcode> (<id>) (<id>) ... [;<data>]       operation
//! (<id>) D <patch-idx> <output-name> (<id>) ...       dedup item
//! ::out (<id>)                                        root of the trace
//! ```

use crate::lineage::dedup::DedupPatch;
use crate::lineage::item::{LinRef, LineageItem, LineageKind};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Escapes a token so it contains no whitespace or backslashes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

fn write_item_line(out: &mut String, item: &LineageItem, patch_idx: &HashMap<u64, usize>) {
    match item.kind() {
        LineageKind::Literal => {
            let _ = writeln!(
                out,
                "({}) L {}",
                item.id(),
                escape(item.data().unwrap_or(""))
            );
        }
        LineageKind::Placeholder(slot) => {
            let _ = writeln!(out, "({}) P {}", item.id(), slot);
        }
        LineageKind::Dedup(patch) => {
            let idx = patch_idx[&patch.patch_id()];
            let _ = write!(
                out,
                "({}) D {} {}",
                item.id(),
                idx,
                escape(item.data().unwrap_or(""))
            );
            for i in item.inputs() {
                let _ = write!(out, " ({})", i.id());
            }
            let _ = writeln!(out);
        }
        LineageKind::Op => {
            let _ = write!(out, "({}) I {}", item.id(), escape(item.opcode()));
            for i in item.inputs() {
                let _ = write!(out, " ({})", i.id());
            }
            if let Some(d) = item.data() {
                let _ = write!(out, " ;{}", escape(d));
            }
            let _ = writeln!(out);
        }
    }
}

/// Serializes a lineage DAG (with its patch dictionary) into a lineage log.
///
/// ```
/// use lima_core::lineage::item::{lineage_eq, LineageItem};
/// use lima_core::lineage::serialize::{deserialize_lineage, serialize_lineage};
///
/// let x = LineageItem::op_with_data("read", "X.csv", vec![]);
/// let root = LineageItem::op("+", vec![x.clone(), x]);
/// let log = serialize_lineage(&root);
/// let back = deserialize_lineage(&log).unwrap();
/// assert!(lineage_eq(&root, &back));
/// ```
pub fn serialize_lineage(root: &LinRef) -> String {
    let order = root.topo_order();
    // Collect referenced patches (patch bodies contain no dedup items, so one
    // level suffices).
    let mut patches: Vec<Arc<DedupPatch>> = Vec::new();
    let mut patch_idx: HashMap<u64, usize> = HashMap::new();
    for item in &order {
        if let LineageKind::Dedup(p) = item.kind() {
            if let std::collections::hash_map::Entry::Vacant(e) = patch_idx.entry(p.patch_id()) {
                e.insert(patches.len());
                patches.push(p.clone());
            }
        }
    }
    let mut out = String::new();
    let empty = HashMap::new();
    for (idx, patch) in patches.iter().enumerate() {
        let _ = writeln!(
            out,
            "::patch {} {} {} {}",
            idx,
            escape(patch.block_key()),
            patch.path_key(),
            patch.num_inputs()
        );
        // Serialize the union of all root bodies once, memoized across roots.
        let mut emitted: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (_, proot) in patch.roots() {
            for item in proot.topo_order() {
                if emitted.insert(item.id()) {
                    write_item_line(&mut out, &item, &empty);
                }
            }
        }
        for (name, proot) in patch.roots() {
            let _ = writeln!(out, "::root {} ({})", escape(name), proot.id());
        }
        let _ = writeln!(out, "::endpatch");
    }
    for item in &order {
        write_item_line(&mut out, item, &patch_idx);
    }
    let _ = writeln!(out, "::out ({})", root.id());
    out
}

/// Parses an `(id)` token.
fn parse_ref(tok: &str) -> Result<u64, String> {
    tok.strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| format!("expected (id), got '{tok}'"))?
        .parse::<u64>()
        .map_err(|e| format!("bad id '{tok}': {e}"))
}

/// Parse error from [`deserialize_lineage`]: what went wrong and where.
/// Malformed input — including arbitrary bytes — always surfaces as this
/// error, never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageParseError {
    /// 1-based line number of the offending line; 0 when the log as a whole
    /// is malformed (e.g. missing `::out`).
    pub line: usize,
    /// Description of the problem, including an excerpt of the line.
    pub message: String,
}

impl std::fmt::Display for LineageParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for LineageParseError {}

impl LineageParseError {
    fn whole_log(message: impl Into<String>) -> Self {
        LineageParseError {
            line: 0,
            message: message.into(),
        }
    }
}

/// Bounds the line excerpt embedded in error messages so adversarial inputs
/// do not produce adversarially sized errors.
fn excerpt(line: &str) -> String {
    const MAX: usize = 80;
    if line.len() <= MAX {
        return line.to_string();
    }
    let cut = (0..=MAX)
        .rev()
        .find(|i| line.is_char_boundary(*i))
        .unwrap_or(0);
    format!("{}…", &line[..cut])
}

/// Deserializes a lineage log back into a lineage DAG, rebuilding the patch
/// dictionary. Returns the root item.
pub fn deserialize_lineage(log: &str) -> Result<LinRef, LineageParseError> {
    let mut items: HashMap<u64, LinRef> = HashMap::new();
    let mut patches: HashMap<usize, Arc<DedupPatch>> = HashMap::new();
    // In-progress patch state: (idx, block_key, path_key, num_inputs, roots).
    type PatchState = (usize, String, u64, usize, Vec<(String, LinRef)>);
    let mut cur_patch: Option<PatchState> = None;
    let mut out_root: Option<LinRef> = None;

    for (lineno, line) in log.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| LineageParseError {
            line: lineno + 1,
            message: format!("{msg}: '{}'", excerpt(line)),
        };
        let toks: Vec<&str> = line.split(' ').collect();
        match toks[0] {
            "::patch" => {
                if toks.len() != 5 {
                    return Err(err("malformed ::patch"));
                }
                let idx = toks[1].parse().map_err(|_| err("bad patch idx"))?;
                let key = unescape(toks[2]).map_err(|e| err(&e))?;
                let path = toks[3].parse().map_err(|_| err("bad path key"))?;
                let n = toks[4].parse().map_err(|_| err("bad num inputs"))?;
                cur_patch = Some((idx, key, path, n, Vec::new()));
            }
            "::root" => {
                let (_, _, _, _, roots) = cur_patch
                    .as_mut()
                    .ok_or_else(|| err("::root outside patch"))?;
                if toks.len() != 3 {
                    return Err(err("malformed ::root"));
                }
                let name = unescape(toks[1]).map_err(|e| err(&e))?;
                let id = parse_ref(toks[2]).map_err(|e| err(&e))?;
                let item = items.get(&id).ok_or_else(|| err("unknown root id"))?;
                roots.push((name, item.clone()));
            }
            "::endpatch" => {
                let (idx, key, path, n, roots) = cur_patch
                    .take()
                    .ok_or_else(|| err("::endpatch outside patch"))?;
                patches.insert(idx, DedupPatch::new(key, path, n, roots));
            }
            "::out" => {
                if toks.len() != 2 {
                    return Err(err("malformed ::out"));
                }
                let id = parse_ref(toks[1]).map_err(|e| err(&e))?;
                out_root = Some(items.get(&id).ok_or_else(|| err("unknown out id"))?.clone());
            }
            _ => {
                // Item line: (id) KIND ...
                if toks.len() < 2 {
                    return Err(err("malformed item"));
                }
                let id = parse_ref(toks[0]).map_err(|e| err(&e))?;
                let item = match toks[1] {
                    "L" => {
                        let data =
                            unescape(toks.get(2).copied().unwrap_or("")).map_err(|e| err(&e))?;
                        LineageItem::literal(data)
                    }
                    "P" => {
                        let slot: u32 = toks
                            .get(2)
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err("bad placeholder slot"))?;
                        // Inside a patch body, a slot must address one of the
                        // declared patch inputs.
                        if let Some((_, _, _, n, _)) = &cur_patch {
                            if slot as usize >= *n {
                                return Err(err(&format!(
                                    "placeholder slot {slot} out of range for patch with {n} inputs"
                                )));
                            }
                        }
                        LineageItem::placeholder(slot)
                    }
                    "D" => {
                        if toks.len() < 4 {
                            return Err(err("malformed dedup item"));
                        }
                        let pidx: usize = toks[2].parse().map_err(|_| err("bad patch idx"))?;
                        let output = unescape(toks[3]).map_err(|e| err(&e))?;
                        let patch = patches.get(&pidx).ok_or_else(|| err("unknown patch"))?;
                        if patch.root(&output).is_none() {
                            return Err(err(&format!("unknown patch output '{output}'")));
                        }
                        let mut ins = Vec::new();
                        for tok in &toks[4..] {
                            let iid = parse_ref(tok).map_err(|e| err(&e))?;
                            ins.push(items.get(&iid).ok_or_else(|| err("unknown input"))?.clone());
                        }
                        if ins.len() != patch.num_inputs() {
                            return Err(err(&format!(
                                "dedup item has {} inputs, patch expects {}",
                                ins.len(),
                                patch.num_inputs()
                            )));
                        }
                        LineageItem::dedup(patch.clone(), &output, ins)
                    }
                    "I" => {
                        if toks.len() < 3 {
                            return Err(err("malformed op item"));
                        }
                        let opcode = unescape(toks[2]).map_err(|e| err(&e))?;
                        let mut ins = Vec::new();
                        let mut data: Option<String> = None;
                        for tok in &toks[3..] {
                            if let Some(rest) = tok.strip_prefix(';') {
                                data = Some(unescape(rest).map_err(|e| err(&e))?);
                            } else {
                                let iid = parse_ref(tok).map_err(|e| err(&e))?;
                                ins.push(
                                    items.get(&iid).ok_or_else(|| err("unknown input"))?.clone(),
                                );
                            }
                        }
                        match data {
                            Some(d) => LineageItem::op_with_data(opcode, d, ins),
                            None => LineageItem::op(opcode, ins),
                        }
                    }
                    other => return Err(err(&format!("unknown item kind '{other}'"))),
                };
                items.insert(id, item);
            }
        }
    }
    if cur_patch.is_some() {
        return Err(LineageParseError::whole_log(
            "unterminated ::patch (missing ::endpatch)",
        ));
    }
    out_root.ok_or_else(|| LineageParseError::whole_log("lineage log has no ::out line"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::item::lineage_eq;

    fn leaf(name: &str) -> LinRef {
        LineageItem::op_with_data("read", name, vec![])
    }

    #[test]
    fn round_trip_plain_dag() {
        let x = leaf("data/X.csv");
        let y = leaf("data/y.csv");
        let s = LineageItem::op("+", vec![x.clone(), y]);
        let root = LineageItem::op("*", vec![s.clone(), s, x]);
        let log = serialize_lineage(&root);
        let back = deserialize_lineage(&log).unwrap();
        assert!(lineage_eq(&root, &back));
        assert_eq!(root.dag_size(), back.dag_size());
    }

    #[test]
    fn shared_nodes_serialize_once() {
        let x = leaf("X");
        let root = LineageItem::op("+", vec![x.clone(), x.clone()]);
        let log = serialize_lineage(&root);
        let reads = log.lines().filter(|l| l.contains(" I read")).count();
        assert_eq!(reads, 1);
    }

    #[test]
    fn round_trip_with_data_payloads_and_special_chars() {
        let x = leaf("dir with spaces/X file.csv");
        let sl = LineageItem::op_with_data("rightIndex", "0 99 0 14\nextra", vec![x]);
        let log = serialize_lineage(&sl);
        let back = deserialize_lineage(&log).unwrap();
        assert!(lineage_eq(&sl, &back));
        assert_eq!(back.data(), Some("0 99 0 14\nextra"));
        // backslash handling
        let lit = LineageItem::literal("s:a\\b c");
        let log = serialize_lineage(&lit);
        let back = deserialize_lineage(&log).unwrap();
        assert_eq!(back.data(), Some("s:a\\b c"));
    }

    #[test]
    fn round_trip_deduplicated_dag_preserves_compression() {
        // PageRank-style chain of dedup items.
        let p0 = LineageItem::placeholder(0);
        let p1 = LineageItem::placeholder(1);
        let body = LineageItem::op("+", vec![LineageItem::op("ba+*", vec![p0, p1.clone()]), p1]);
        let patch = DedupPatch::new("loop:pr", 3, 2, vec![("p".into(), body)]);
        let g = leaf("G");
        let mut p = leaf("p0");
        for _ in 0..4 {
            p = LineageItem::dedup(patch.clone(), "p", vec![g.clone(), p]);
        }
        let log = serialize_lineage(&p);
        // Patch body serialized once, not per iteration.
        assert_eq!(log.matches("ba+*").count(), 1);
        assert_eq!(log.lines().filter(|l| l.starts_with("::patch")).count(), 1);
        let back = deserialize_lineage(&log).unwrap();
        assert!(lineage_eq(&p, &back));
        assert_eq!(back.dag_size(), p.dag_size());
        // Patch metadata survives.
        if let LineageKind::Dedup(bp) = back.kind() {
            assert_eq!(bp.path_key(), 3);
            assert_eq!(bp.num_inputs(), 2);
            assert_eq!(bp.block_key(), "loop:pr");
        } else {
            panic!("expected dedup root");
        }
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(deserialize_lineage("").is_err());
        assert!(deserialize_lineage("(1) Z whatever\n::out (1)").is_err());
        assert!(deserialize_lineage("(1) I + (9)\n::out (1)").is_err());
        assert!(deserialize_lineage("::root x (1)").is_err());
        assert!(deserialize_lineage("::endpatch").is_err());
        assert!(deserialize_lineage("(1) L x").is_err()); // no ::out
        assert!(deserialize_lineage("(a) L x\n::out (a)").is_err());
    }

    #[test]
    fn round_trip_literals_and_placeholders() {
        let lit = LineageItem::literal("f:2.5");
        let root = LineageItem::op("^", vec![lit.clone(), lit]);
        let back = deserialize_lineage(&serialize_lineage(&root)).unwrap();
        assert!(lineage_eq(&root, &back));
    }
}
