//! Lineage DAGs, tracing maps, deduplication, and (de)serialization
//! (paper §3).

pub mod dedup;
pub mod item;
pub mod map;
pub mod serialize;
pub mod verify;

pub use dedup::{DedupPatch, DedupRegistry, PathTracer};
pub use item::{LinRef, LineageItem, LineageKind};
pub use map::LineageMap;
pub use serialize::{deserialize_lineage, serialize_lineage, LineageParseError};
pub use verify::{verify_dag, Verifier, VerifyError, VerifyErrorKind};
