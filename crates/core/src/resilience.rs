//! Shared resilience primitives: bounded jittered-backoff retries, retry
//! budgets, and half-open circuit breakers.
//!
//! These started life buried in the persistence path (`cache/persist` used a
//! private retry loop, `cache/breaker` guarded spill/persist I/O). The
//! `limad` service and the `lima-client` crate need the exact same machinery
//! for wire I/O, so the pair lives here as the single implementation:
//!
//! * [`RetryPolicy`] — a bounded schedule of exponentially growing,
//!   deterministically jittered delays (full jitter over `[d/2, d]`, derived
//!   from a splitmix64 hash so runs replay identically). Generic over the
//!   error type; only errors the caller marks retryable are retried.
//! * [`RetryBudget`] — a process-wide token bucket capping the *total*
//!   retries in flight across many calls. Without a budget, a hard outage
//!   turns every caller's bounded backoff into a coordinated retry storm;
//!   with one, sustained failure exhausts the bucket and later calls fail
//!   fast until successes refill it.
//! * [`CircuitBreaker`] — consecutive-failure breaker with a half-open
//!   probe-per-cooldown-window third state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on a single backoff delay so bounded attempts stay bounded in time.
const MAX_DELAY_MS: u64 = 250;

/// A bounded jittered-exponential-backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try exactly once).
    pub attempts: u32,
    /// Base delay before the first retry; doubles per retry.
    pub base_delay_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `attempts` retries starting at `base_delay_ms`.
    pub fn new(attempts: u32, base_delay_ms: u64, seed: u64) -> Self {
        RetryPolicy {
            attempts,
            base_delay_ms,
            seed,
        }
    }

    /// The jittered delay before retry number `retry` (0-based): full jitter
    /// over `[d/2, d]` where `d = base · 2^retry`, capped at [`MAX_DELAY_MS`].
    pub fn delay(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.min(16))
            .min(MAX_DELAY_MS);
        if exp == 0 {
            return Duration::ZERO;
        }
        let h = crate::faults::mix(self.seed ^ (u64::from(retry) + 1).wrapping_mul(0x9E37));
        Duration::from_millis(exp / 2 + h % (exp - exp / 2 + 1))
    }

    /// Runs `op`, retrying on errors for which `retryable` holds, sleeping
    /// the backoff delay between attempts. Returns the final result plus the
    /// number of retries performed (for stats accounting).
    pub fn run<T, E>(
        &self,
        retryable: impl FnMut(&E) -> bool,
        op: impl FnMut() -> Result<T, E>,
    ) -> (Result<T, E>, u32) {
        self.run_budgeted(None, retryable, op)
    }

    /// [`Self::run`] drawing each retry from a shared [`RetryBudget`]: once
    /// the budget is exhausted, further errors return immediately even if the
    /// per-call attempt count has headroom. Successes refill the budget.
    pub fn run_budgeted<T, E>(
        &self,
        budget: Option<&RetryBudget>,
        mut retryable: impl FnMut(&E) -> bool,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> (Result<T, E>, u32) {
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => {
                    if let Some(b) = budget {
                        b.record_success();
                    }
                    return (Ok(v), retries);
                }
                Err(e)
                    if retries < self.attempts
                        && retryable(&e)
                        && budget.is_none_or(|b| b.try_spend()) =>
                {
                    let delay = self.delay(retries);
                    retries += 1;
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

/// How many successes refill one retry token (see [`RetryBudget`]).
const REFILL_SUCCESSES: u64 = 10;

/// A shared token bucket bounding total retries across many concurrent
/// calls. Each retry spends one token; every [`REFILL_SUCCESSES`] recorded
/// successes deposit one token back (up to the cap). All-atomic, so clients
/// and server shards can share one budget without locking.
#[derive(Debug)]
pub struct RetryBudget {
    tokens: AtomicU64,
    cap: u64,
    successes: AtomicU64,
}

impl RetryBudget {
    /// A full bucket holding `cap` retry tokens (`cap == 0` disables
    /// retrying entirely for budgeted callers).
    pub fn new(cap: u64) -> Self {
        RetryBudget {
            tokens: AtomicU64::new(cap),
            cap,
            successes: AtomicU64::new(0),
        }
    }

    /// Tokens currently available.
    pub fn remaining(&self) -> u64 {
        self.tokens.load(Ordering::Relaxed)
    }

    /// Withdraws one token; `false` means the budget is exhausted and the
    /// caller must fail fast instead of retrying.
    pub fn try_spend(&self) -> bool {
        self.tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| t.checked_sub(1))
            .is_ok()
    }

    /// Records a successful operation; every [`REFILL_SUCCESSES`]-th success
    /// deposits one token back up to the cap.
    pub fn record_success(&self) {
        let n = self.successes.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(REFILL_SUCCESSES) {
            let _ = self
                .tokens
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                    (t < self.cap).then_some(t + 1)
                });
        }
    }
}

/// Verdict for one attempt gated by a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attempt {
    /// Breaker closed: proceed normally.
    Allowed,
    /// Breaker half-open: this is the single probe for the current cooldown
    /// window — the caller must report the outcome via `record_*`.
    Probe,
    /// Breaker open: skip the operation.
    Rejected,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// Consecutive-failure breaker with half-open probing.
///
/// After `limit` consecutive failures the breaker opens; once a cooldown
/// window elapses, one *probe* attempt is allowed through — success closes
/// the breaker again, failure re-opens it for a fresh window.
///
/// `limit == 0` disables the breaker entirely (every attempt allowed);
/// `cooldown_ms == 0` latches open forever once tripped.
#[derive(Debug)]
pub struct CircuitBreaker {
    limit: u32,
    cooldown: Duration,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker opening after `limit` consecutive failures and
    /// probing once per `cooldown_ms` window.
    pub fn new(limit: u32, cooldown_ms: u64) -> Self {
        CircuitBreaker {
            limit,
            cooldown: Duration::from_millis(cooldown_ms),
            state: Mutex::new(State::Closed { failures: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // The breaker holds no invariants a panicked holder could break:
        // recover the poisoned guard rather than propagate.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Gate one attempt. `Probe` grants exactly one in-flight attempt per
    /// cooldown window; concurrent callers see `Rejected` until the probe
    /// outcome is recorded.
    pub fn allow(&self) -> Attempt {
        if self.limit == 0 {
            return Attempt::Allowed;
        }
        let mut st = self.lock();
        match *st {
            State::Closed { .. } => Attempt::Allowed,
            State::Open { since }
                if !self.cooldown.is_zero() && since.elapsed() >= self.cooldown =>
            {
                *st = State::HalfOpen;
                Attempt::Probe
            }
            State::Open { .. } | State::HalfOpen => Attempt::Rejected,
        }
    }

    /// Reports success: closes the breaker and resets the failure count.
    pub fn record_success(&self) {
        if self.limit == 0 {
            return;
        }
        *self.lock() = State::Closed { failures: 0 };
    }

    /// Reports a failure: increments toward the limit, or re-opens a fresh
    /// cooldown window after a failed probe.
    pub fn record_failure(&self) {
        if self.limit == 0 {
            return;
        }
        let mut st = self.lock();
        *st = match *st {
            State::Closed { failures } if failures + 1 >= self.limit => State::Open {
                since: Instant::now(),
            },
            State::Closed { failures } => State::Closed {
                failures: failures + 1,
            },
            State::Open { .. } | State::HalfOpen => State::Open {
                since: Instant::now(),
            },
        };
    }

    /// True while the breaker is open or probing (i.e. not fully closed).
    pub fn is_open(&self) -> bool {
        if self.limit == 0 {
            return false;
        }
        !matches!(*self.lock(), State::Closed { .. })
    }
}

/// A small streaming quantile estimator over a sliding window of the most
/// recent samples (e.g. per-request latencies in milliseconds).
///
/// Hedged reads need "the observed p99" cheaply and without unbounded
/// memory: a fixed-capacity ring keeps the last `capacity` samples, and
/// [`Self::quantile`] sorts a snapshot on demand (the window is small — a
/// few hundred entries — so the sort is microseconds and only paid by the
/// reader, never the recording hot path). Thread-safe; entirely
/// deterministic given the same sample sequence.
#[derive(Debug)]
pub struct LatencyWindow {
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    buf: Vec<u64>,
    next: usize,
    filled: usize,
}

impl LatencyWindow {
    /// A window retaining the most recent `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LatencyWindow {
            ring: Mutex::new(Ring {
                buf: vec![0; capacity],
                next: 0,
                filled: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records one sample, evicting the oldest once the window is full.
    pub fn record(&self, sample: u64) {
        let mut r = self.lock();
        let cap = r.buf.len();
        let at = r.next;
        r.buf[at] = sample;
        r.next = (at + 1) % cap;
        r.filled = (r.filled + 1).min(cap);
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().filled
    }

    /// True until the first sample is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the current window via
    /// nearest-rank on a sorted snapshot, or `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let r = self.lock();
        if r.filled == 0 {
            return None;
        }
        let mut snap: Vec<u64> = r.buf[..r.filled].to_vec();
        drop(r);
        snap.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = ((snap.len() as f64 - 1.0) * q).round() as usize;
        Some(snap[idx.min(snap.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn policy() -> RetryPolicy {
        RetryPolicy::new(3, 0, 42) // zero base delay: tests don't sleep
    }

    #[test]
    fn succeeds_without_retry() {
        let (res, retries) = policy().run(|_| true, || Ok::<_, io::Error>(7));
        assert_eq!(res.ok(), Some(7));
        assert_eq!(retries, 0);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let mut fails = 2;
        let (res, retries) = policy().run(
            |_| true,
            || {
                if fails > 0 {
                    fails -= 1;
                    Err(io::Error::other("transient"))
                } else {
                    Ok(5)
                }
            },
        );
        assert_eq!(res.ok(), Some(5));
        assert_eq!(retries, 2);
    }

    #[test]
    fn gives_up_after_bounded_attempts() {
        let mut calls = 0u32;
        let (res, retries) = policy().run(
            |_| true,
            || {
                calls += 1;
                Err::<(), _>(io::Error::other("always"))
            },
        );
        assert!(res.is_err());
        assert_eq!(retries, 3);
        assert_eq!(calls, 4); // 1 attempt + 3 retries
    }

    #[test]
    fn non_retryable_errors_stop_immediately() {
        let mut calls = 0u32;
        let (res, retries) = policy().run(
            |_| false,
            || {
                calls += 1;
                Err::<(), _>(io::Error::other("fatal"))
            },
        );
        assert!(res.is_err());
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn works_over_non_io_error_types() {
        let mut fails = 1;
        let (res, retries) = policy().run(
            |e: &String| e.contains("transient"),
            || {
                if fails > 0 {
                    fails -= 1;
                    Err("transient blip".to_string())
                } else {
                    Ok(1u8)
                }
            },
        );
        assert_eq!(res.ok(), Some(1));
        assert_eq!(retries, 1);
    }

    #[test]
    fn delays_are_deterministic_jittered_and_capped() {
        let p = RetryPolicy::new(8, 10, 9);
        let q = RetryPolicy::new(8, 10, 9);
        for r in 0..8 {
            let d = p.delay(r);
            assert_eq!(d, q.delay(r), "same seed → same delay");
            let exp = (10u64 << r.min(16)).min(250);
            assert!(d.as_millis() as u64 >= exp / 2);
            assert!(d.as_millis() as u64 <= exp);
        }
        // Different seeds shift the jitter.
        let other = RetryPolicy::new(8, 10, 10);
        assert!((0..8).any(|r| p.delay(r) != other.delay(r)));
    }

    #[test]
    fn budget_exhaustion_stops_retries_across_calls() {
        let budget = RetryBudget::new(3);
        let mut calls = 0u32;
        // First call burns the whole budget (policy allows 3 retries).
        let (res, retries) = policy().run_budgeted(
            Some(&budget),
            |_| true,
            || {
                calls += 1;
                Err::<(), _>(io::Error::other("down"))
            },
        );
        assert!(res.is_err());
        assert_eq!(retries, 3);
        assert_eq!(budget.remaining(), 0);
        // Later calls fail fast: no tokens left, so zero retries.
        let (res, retries) = policy().run_budgeted(
            Some(&budget),
            |_| true,
            || Err::<(), _>(io::Error::other("still down")),
        );
        assert!(res.is_err());
        assert_eq!(retries, 0);
    }

    #[test]
    fn budget_refills_on_successes() {
        let budget = RetryBudget::new(2);
        while budget.try_spend() {}
        assert_eq!(budget.remaining(), 0);
        for _ in 0..10 {
            budget.record_success();
        }
        assert_eq!(budget.remaining(), 1);
        // Refill never exceeds the cap.
        for _ in 0..100 {
            budget.record_success();
        }
        assert!(budget.remaining() <= 2);
    }

    #[test]
    fn zero_cap_budget_disables_retrying() {
        let budget = RetryBudget::new(0);
        let (res, retries) = policy().run_budgeted(
            Some(&budget),
            |_| true,
            || Err::<(), _>(io::Error::other("x")),
        );
        assert!(res.is_err());
        assert_eq!(retries, 0);
    }

    #[test]
    fn opens_after_consecutive_failures_and_success_resets() {
        let b = CircuitBreaker::new(3, 60_000);
        assert_eq!(b.allow(), Attempt::Allowed);
        b.record_failure();
        b.record_failure();
        b.record_success(); // streak broken
        b.record_failure();
        b.record_failure();
        assert_eq!(b.allow(), Attempt::Allowed);
        b.record_failure(); // third consecutive → open
        assert_eq!(b.allow(), Attempt::Rejected);
        assert!(b.is_open());
    }

    #[test]
    fn half_open_grants_single_probe_per_window() {
        let b = CircuitBreaker::new(1, 10);
        b.record_failure();
        assert_eq!(b.allow(), Attempt::Rejected);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.allow(), Attempt::Probe);
        // Concurrent attempts during the probe are rejected.
        assert_eq!(b.allow(), Attempt::Rejected);
        b.record_success();
        assert_eq!(b.allow(), Attempt::Allowed);
        assert!(!b.is_open());
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_window() {
        let b = CircuitBreaker::new(1, 10);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.allow(), Attempt::Probe);
        b.record_failure();
        assert_eq!(b.allow(), Attempt::Rejected);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.allow(), Attempt::Probe);
    }

    #[test]
    fn zero_limit_disables_breaker() {
        let b = CircuitBreaker::new(0, 10);
        for _ in 0..10 {
            b.record_failure();
        }
        assert_eq!(b.allow(), Attempt::Allowed);
        assert!(!b.is_open());
    }

    #[test]
    fn zero_cooldown_latches_open_forever() {
        let b = CircuitBreaker::new(1, 0);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(b.allow(), Attempt::Rejected);
    }

    #[test]
    fn latency_window_quantiles_track_recent_samples() {
        let w = LatencyWindow::new(100);
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.99), None);
        for v in 1..=100u64 {
            w.record(v);
        }
        assert_eq!(w.len(), 100);
        assert_eq!(w.quantile(0.0), Some(1));
        assert_eq!(w.quantile(0.5), Some(51)); // nearest-rank on 1..=100
        assert_eq!(w.quantile(1.0), Some(100));
        assert_eq!(w.quantile(0.99), Some(99));
    }

    #[test]
    fn latency_window_evicts_oldest_at_capacity() {
        let w = LatencyWindow::new(4);
        for v in [1000, 1, 2, 3, 4] {
            w.record(v);
        }
        // The 1000 fell out of the 4-slot window.
        assert_eq!(w.len(), 4);
        assert_eq!(w.quantile(1.0), Some(4));
        assert_eq!(w.quantile(0.0), Some(1));
    }

    #[test]
    fn latency_window_zero_capacity_clamps_to_one() {
        let w = LatencyWindow::new(0);
        w.record(7);
        w.record(9);
        assert_eq!(w.len(), 1);
        assert_eq!(w.quantile(0.5), Some(9));
    }
}
