//! Cooperative cancellation and deadline primitives.
//!
//! A session carries an [`Interrupt`] — an optional shared [`CancelToken`]
//! plus an optional wall-clock deadline. Interrupts are *cooperative*: the
//! runtime polls [`Interrupt::check`] at instruction boundaries, at parfor
//! iteration boundaries, between row chunks of long kernels, and while
//! blocked on another session's cache placeholder. These primitives live in
//! `lima-core` (rather than the runtime) so [`crate::LineageCache`]'s
//! placeholder wait loop can observe them too.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cancellation flag. Cloning the `Arc` hands the same flag to
/// workers, kernels, and the cache; once cancelled it stays cancelled.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Requests cancellation. Idempotent; observers notice at their next
    /// cooperative checkpoint.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a cooperative checkpoint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptKind {
    /// The session's [`CancelToken`] was cancelled.
    Cancelled,
    /// The session's deadline passed.
    DeadlineExceeded,
}

/// A session's interrupt sources: cancellation wins over the deadline when
/// both have fired (cancellation is an explicit request).
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    /// Cooperative cancellation flag shared with whoever may cancel us.
    pub token: Option<Arc<CancelToken>>,
    /// Absolute deadline; checkpoints fail once `Instant::now()` passes it.
    pub deadline: Option<Instant>,
}

impl Interrupt {
    /// An interrupt that never fires.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when at least one interrupt source is armed.
    pub fn is_armed(&self) -> bool {
        self.token.is_some() || self.deadline.is_some()
    }

    /// Cooperative checkpoint: `Err` once cancelled or past the deadline.
    pub fn check(&self) -> Result<(), InterruptKind> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Err(InterruptKind::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(InterruptKind::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unarmed_interrupt_never_fires() {
        let i = Interrupt::none();
        assert!(!i.is_armed());
        assert_eq!(i.check(), Ok(()));
    }

    #[test]
    fn cancel_token_fires_once_cancelled() {
        let token = CancelToken::new();
        let i = Interrupt {
            token: Some(Arc::clone(&token)),
            deadline: None,
        };
        assert!(i.is_armed());
        assert_eq!(i.check(), Ok(()));
        token.cancel();
        assert_eq!(i.check(), Err(InterruptKind::Cancelled));
        // Idempotent.
        token.cancel();
        assert_eq!(i.check(), Err(InterruptKind::Cancelled));
    }

    #[test]
    fn past_deadline_fires_deadline_exceeded() {
        let i = Interrupt {
            token: None,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
        };
        assert_eq!(i.check(), Err(InterruptKind::DeadlineExceeded));
        let future = Interrupt {
            token: None,
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
        };
        assert_eq!(future.check(), Ok(()));
    }

    #[test]
    fn cancellation_wins_over_expired_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let i = Interrupt {
            token: Some(token),
            deadline: Some(Instant::now() - Duration::from_millis(1)),
        };
        assert_eq!(i.check(), Err(InterruptKind::Cancelled));
    }
}
