//! Runtime statistics collected by LIMA (paper §5.1: cache misses,
//! rewrite/spill times, etc.). All counters are atomic so parfor workers can
//! update them concurrently.
//!
//! The counter list is declared once through `define_stats!`, which derives
//! both the struct and the [`LimaStats::counters`] iteration order — so the
//! Prometheus exporter and monotonicity snapshots can never miss a field
//! added later (the exporter round-trip test enforces this by construction).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_stats {
    ($($(#[doc = $doc:expr])+ $name:ident,)+) => {
        /// Aggregated LIMA statistics. One instance lives next to each cache.
        #[derive(Debug, Default)]
        pub struct LimaStats {
            $(
                $(#[doc = $doc])+
                pub $name: AtomicU64,
            )+
        }

        impl LimaStats {
            /// Every counter as `(name, handle)`, in declaration order. The
            /// single source of truth for exporters: `prometheus()` and
            /// `snapshot()` iterate this list, so a counter added to the
            /// struct is exported automatically.
            pub fn counters(&self) -> Vec<(&'static str, &AtomicU64)> {
                vec![$((stringify!($name), &self.$name),)+]
            }

            /// Per-counter doc strings, aligned with [`Self::counters`];
            /// used for Prometheus `# HELP` lines.
            fn helps() -> &'static [(&'static str, &'static str)] {
                &[$((stringify!($name), concat!($($doc),+)),)+]
            }
        }
    };
}

define_stats! {
    /// Lineage items created by tracing.
    items_traced,
    /// Block-boundary lineage hash flushes (one shared traversal per batch).
    hash_batches,
    /// Lineage items hashed inside batched flushes.
    hash_batch_items,
    /// Dedup items appended instead of full sub-DAGs.
    dedup_items,
    /// Lineage patches materialized.
    dedup_patches,
    /// Cache probes (full reuse).
    probes,
    /// Operation-level full-reuse hits.
    full_hits,
    /// Multi-level (function/block) reuse hits.
    multilevel_hits,
    /// Partial-reuse rewrite hits.
    partial_hits,
    /// Threads that blocked on a placeholder entry being computed elsewhere.
    placeholder_waits,
    /// Values stored into the cache.
    puts,
    /// Values rejected by the cache (non-cacheable, over budget, ...).
    rejected_puts,
    /// Entries evicted by deletion.
    evictions,
    /// Entries evicted by spilling to disk.
    spills,
    /// Spilled entries restored from disk on a hit.
    restores,
    /// Bytes written by spilling.
    spill_bytes,
    /// Nanoseconds of compute time saved by reuse. Each computed nanosecond
    /// is credited at most once: an entry credits on its first hit only, and
    /// a composite (function/block) entry credits its measured cost minus
    /// whatever its constituents already credited.
    saved_compute_ns,
    /// Nanoseconds spent executing partial-reuse compensation plans.
    compensation_ns,
    /// Spill writes that failed (entry fell back to delete-eviction).
    spill_failures,
    /// Spilled entries whose restore failed (missing/corrupt file); the
    /// probe degraded to a miss and the value was recomputed.
    restore_failures,
    /// Placeholder waits that timed out and took over the computation from a
    /// presumed-dead fulfiller.
    placeholder_timeouts,
    /// Parfor workers that panicked (isolated and surfaced as errors).
    worker_panics,
    /// Entries durably written to the persistent cache store.
    persist_writes,
    /// Persistent writes that failed (entry stays memory-only).
    persist_failures,
    /// Bytes of value files written by the persistent store.
    persist_bytes,
    /// Eviction tombstones appended to the persistent manifest.
    persist_tombstones,
    /// Reuse hits served by entries recovered from a prior process.
    persist_hits,
    /// Entries repopulated from disk during startup recovery.
    persist_recovered,
    /// Committed entries dropped during recovery (missing/corrupt value file
    /// or unparseable lineage).
    persist_dropped,
    /// Recoveries that truncated a torn WAL tail (at most 1 per startup).
    persist_torn_truncations,
    /// Orphaned value files garbage-collected during recovery.
    persist_orphans_gcd,
    /// WAL compactions committed (generation switches).
    persist_compactions,
    /// WAL bytes reclaimed by compaction (pre-compaction size minus
    /// post-compaction size, summed over compactions).
    persist_compact_reclaimed,
    /// Corrupt persisted entries rebuilt from their serialized lineage and
    /// re-persisted atomically (scrub-, fetch-, or recovery-time).
    persist_repairs,
    /// Lineage-driven repair attempts that failed; the entry was quarantined
    /// (or dropped at recovery) instead.
    persist_repair_failures,
    /// Persistence degraded to memory-only after `ENOSPC` or an fsync
    /// failure (post-fsync-failure page state is unknown).
    persist_disk_full,
    /// Bytes re-verified by the background integrity scrubber.
    scrub_bytes,
    /// Value files whose checksums the scrubber re-verified.
    scrub_entries,
    /// Corrupt artifacts (value files or WAL frames) detected by the
    /// scrubber.
    scrub_corruptions,
    /// Corrupt entries quarantined (tombstoned and moved to `quarantine/`).
    scrub_quarantined,
    /// Completed full scrub passes over the store.
    scrub_passes,
    /// Scrub chunks skipped because the governor was at pressure level L2 or
    /// higher (the scrubber yields I/O under pressure).
    scrub_pauses,
    /// Instructions the static determinism analysis unmarked for caching
    /// (loop-carried, non-deterministic, or side-effecting; paper §4.3).
    ops_unmarked,
    /// Functions the analysis classified reuse-ineligible (non-deterministic
    /// bodies are excluded from function-level multi-level reuse, §4.1).
    funcs_reuse_ineligible,
    /// Governor ladder transitions toward higher pressure (one per level).
    governor_degrades,
    /// Governor ladder transitions back toward normal (one per level).
    governor_recovers,
    /// Admissions (cache entries or sessions) rejected by the governor.
    governor_admission_rejects,
    /// Allocation attempts rejected (injected `AllocFail` faults).
    alloc_failures,
    /// Transient persist I/O errors absorbed by backoff retries.
    persist_retries,
    /// Half-open probe attempts granted by the spill/persist breakers.
    breaker_probes,
    /// Sessions admitted into a `SessionPool`.
    sessions_started,
    /// Sessions that ran to completion.
    sessions_completed,
    /// Sessions terminated by cooperative cancellation.
    sessions_cancelled,
    /// Sessions terminated by their deadline.
    sessions_deadline_exceeded,
    /// Session admissions rejected by the governor (`ResourceExhausted`).
    sessions_rejected,
    /// Requests received by the `limad` service (all protocol kinds).
    srv_requests,
    /// Malformed, oversized, or checksum-failed frames rejected by `limad`;
    /// each is isolated to its connection, never the shard.
    srv_malformed,
    /// Requests shed with typed `Overloaded` responses (governor L3/L4).
    srv_sheds,
    /// Requests rejected by per-tenant quotas (`ResourceExhausted`).
    srv_quota_rejects,
    /// Connections torn by injected `ConnDrop` faults (chaos testing).
    srv_conn_drops,
    /// Committed records enqueued for asynchronous replication to followers.
    repl_enqueued,
    /// Records dropped instead of enqueued/sent: replication queue full or
    /// governor pressure ≥ L2 (replication never blocks the submit path).
    repl_queue_drops,
    /// Records successfully forwarded to a follower (acked `K_REPL_PUT`).
    repl_sent,
    /// Records dropped at send time: peer unreachable, breaker open, or a
    /// partition in effect (best-effort replication absorbs the loss).
    repl_send_failures,
    /// Replicated records applied into the local cache (write replication or
    /// anti-entropy pulls).
    repl_applied,
    /// Replicated records rejected: unparseable lineage, DAG verification
    /// failure, or unrepairable byte corruption.
    repl_rejected,
    /// Replicated records whose bytes failed their checksum and were
    /// recomputed from lineage before applying.
    repl_repaired,
    /// Completed anti-entropy digest exchanges with a peer.
    ae_rounds,
    /// Entries pulled from a peer by anti-entropy bucket repair.
    ae_pulled,
}

impl LimaStats {
    /// Fresh all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Total reuse hits of any kind.
    pub fn total_hits(&self) -> u64 {
        Self::get(&self.full_hits)
            + Self::get(&self.multilevel_hits)
            + Self::get(&self.partial_hits)
    }

    /// Point-in-time copy of every counter as `(name, value)`, in
    /// declaration order. Handy for monotonicity assertions in tests.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counters()
            .into_iter()
            .map(|(name, c)| (name, Self::get(c)))
            .collect()
    }

    /// Prometheus text-exposition rendering of every counter (plus the
    /// derived `lima_total_hits`), each with `# HELP` and `# TYPE` lines.
    /// Scrape-ready: write it to a file or serve it as
    /// `text/plain; version=0.0.4`.
    pub fn prometheus(&self) -> String {
        let helps = Self::helps();
        let mut out = String::with_capacity(helps.len() * 160);
        for (i, (name, counter)) in self.counters().into_iter().enumerate() {
            let help = helps
                .get(i)
                .map(|(_, h)| *h)
                .unwrap_or("")
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "# HELP lima_{name} {help}\n# TYPE lima_{name} counter\nlima_{name} {}\n",
                Self::get(counter)
            ));
        }
        out.push_str(&format!(
            "# HELP lima_total_hits Total reuse hits of any kind (full + multilevel + partial).\n\
             # TYPE lima_total_hits counter\nlima_total_hits {}\n",
            self.total_hits()
        ));
        out
    }

    /// Human-readable multi-line report.
    pub fn report(&self) -> String {
        format!(
            "lineage: traced={} hash_batches={} hash_batch_items={} dedup_items={} patches={}\n\
             reuse:   probes={} full={} multilevel={} partial={} waits={}\n\
             cache:   puts={} rejected={} evictions={} spills={} restores={} spill_bytes={}\n\
             faults:  spill_failures={} restore_failures={} placeholder_timeouts={} worker_panics={}\n\
             persist: writes={} failures={} bytes={} tombstones={} hits={}\n\
             recover: recovered={} dropped={} torn_truncations={} orphans_gcd={}\n\
             selfheal: compactions={} reclaimed={} repairs={} repair_failures={} disk_full={}\n\
             scrub:   bytes={} entries={} corruptions={} quarantined={} passes={} pauses={}\n\
             analyze: ops_unmarked={} funcs_reuse_ineligible={}\n\
             governor: degrades={} recovers={} admission_rejects={} alloc_failures={} \
             persist_retries={} breaker_probes={}\n\
             session: started={} completed={} cancelled={} deadline_exceeded={} rejected={}\n\
             service: requests={} malformed={} sheds={} quota_rejects={} conn_drops={}\n\
             repl:    enqueued={} queue_drops={} sent={} send_failures={} applied={} \
             rejected={} repaired={} ae_rounds={} ae_pulled={}\n\
             time:    saved_compute={:.3}s compensation={:.3}s",
            Self::get(&self.items_traced),
            Self::get(&self.hash_batches),
            Self::get(&self.hash_batch_items),
            Self::get(&self.dedup_items),
            Self::get(&self.dedup_patches),
            Self::get(&self.probes),
            Self::get(&self.full_hits),
            Self::get(&self.multilevel_hits),
            Self::get(&self.partial_hits),
            Self::get(&self.placeholder_waits),
            Self::get(&self.puts),
            Self::get(&self.rejected_puts),
            Self::get(&self.evictions),
            Self::get(&self.spills),
            Self::get(&self.restores),
            Self::get(&self.spill_bytes),
            Self::get(&self.spill_failures),
            Self::get(&self.restore_failures),
            Self::get(&self.placeholder_timeouts),
            Self::get(&self.worker_panics),
            Self::get(&self.persist_writes),
            Self::get(&self.persist_failures),
            Self::get(&self.persist_bytes),
            Self::get(&self.persist_tombstones),
            Self::get(&self.persist_hits),
            Self::get(&self.persist_recovered),
            Self::get(&self.persist_dropped),
            Self::get(&self.persist_torn_truncations),
            Self::get(&self.persist_orphans_gcd),
            Self::get(&self.persist_compactions),
            Self::get(&self.persist_compact_reclaimed),
            Self::get(&self.persist_repairs),
            Self::get(&self.persist_repair_failures),
            Self::get(&self.persist_disk_full),
            Self::get(&self.scrub_bytes),
            Self::get(&self.scrub_entries),
            Self::get(&self.scrub_corruptions),
            Self::get(&self.scrub_quarantined),
            Self::get(&self.scrub_passes),
            Self::get(&self.scrub_pauses),
            Self::get(&self.ops_unmarked),
            Self::get(&self.funcs_reuse_ineligible),
            Self::get(&self.governor_degrades),
            Self::get(&self.governor_recovers),
            Self::get(&self.governor_admission_rejects),
            Self::get(&self.alloc_failures),
            Self::get(&self.persist_retries),
            Self::get(&self.breaker_probes),
            Self::get(&self.sessions_started),
            Self::get(&self.sessions_completed),
            Self::get(&self.sessions_cancelled),
            Self::get(&self.sessions_deadline_exceeded),
            Self::get(&self.sessions_rejected),
            Self::get(&self.srv_requests),
            Self::get(&self.srv_malformed),
            Self::get(&self.srv_sheds),
            Self::get(&self.srv_quota_rejects),
            Self::get(&self.srv_conn_drops),
            Self::get(&self.repl_enqueued),
            Self::get(&self.repl_queue_drops),
            Self::get(&self.repl_sent),
            Self::get(&self.repl_send_failures),
            Self::get(&self.repl_applied),
            Self::get(&self.repl_rejected),
            Self::get(&self.repl_repaired),
            Self::get(&self.ae_rounds),
            Self::get(&self.ae_pulled),
            Self::get(&self.saved_compute_ns) as f64 / 1e9,
            Self::get(&self.compensation_ns) as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn counters_accumulate() {
        let s = LimaStats::new();
        LimaStats::bump(&s.full_hits);
        LimaStats::bump(&s.full_hits);
        LimaStats::add(&s.partial_hits, 3);
        LimaStats::bump(&s.multilevel_hits);
        assert_eq!(LimaStats::get(&s.full_hits), 2);
        assert_eq!(s.total_hits(), 6);
    }

    #[test]
    fn report_mentions_key_counters() {
        let s = LimaStats::new();
        LimaStats::add(&s.spill_bytes, 1024);
        let r = s.report();
        assert!(r.contains("spill_bytes=1024"));
        assert!(r.contains("probes=0"));
        LimaStats::bump(&s.restore_failures);
        LimaStats::bump(&s.placeholder_timeouts);
        let r = s.report();
        assert!(r.contains("restore_failures=1"));
        assert!(r.contains("placeholder_timeouts=1"));
        assert!(r.contains("worker_panics=0"));
        LimaStats::add(&s.ops_unmarked, 5);
        LimaStats::bump(&s.funcs_reuse_ineligible);
        let r = s.report();
        assert!(r.contains("ops_unmarked=5"));
        assert!(r.contains("funcs_reuse_ineligible=1"));
        LimaStats::bump(&s.governor_degrades);
        LimaStats::bump(&s.sessions_deadline_exceeded);
        let r = s.report();
        assert!(r.contains("degrades=1"));
        assert!(r.contains("deadline_exceeded=1"));
        assert!(r.contains("breaker_probes=0"));
        LimaStats::bump(&s.repl_queue_drops);
        LimaStats::add(&s.ae_pulled, 2);
        let r = s.report();
        assert!(r.contains("queue_drops=1"));
        assert!(r.contains("ae_pulled=2"));
    }

    /// Satellite: `prometheus()` must round-trip *every* counter in
    /// `LimaStats` — names, values, and HELP/TYPE metadata.
    #[test]
    fn prometheus_round_trips_every_counter() {
        let s = LimaStats::new();
        for (i, (_, c)) in s.counters().into_iter().enumerate() {
            c.store(i as u64 * 7 + 1, Ordering::Relaxed);
        }
        let text = s.prometheus();

        // Parse the exposition format back: `name value` sample lines.
        let mut samples: HashMap<&str, u64> = HashMap::new();
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            let value: u64 = parts.next().unwrap().parse().unwrap();
            samples.insert(name, value);
        }

        let counters = s.counters();
        // Every declared counter appears with its exact value...
        for (i, (name, _)) in counters.iter().enumerate() {
            let key = format!("lima_{name}");
            assert_eq!(
                samples.get(key.as_str()),
                Some(&(i as u64 * 7 + 1)),
                "counter {name} missing or wrong in prometheus output"
            );
            assert!(text.contains(&format!("# HELP lima_{name} ")));
            assert!(text.contains(&format!("# TYPE lima_{name} counter")));
        }
        // ...and nothing else except the derived total_hits.
        assert_eq!(samples.len(), counters.len() + 1);
        assert_eq!(samples.get("lima_total_hits"), Some(&s.total_hits()));
    }

    #[test]
    fn snapshot_matches_counters() {
        let s = LimaStats::new();
        LimaStats::add(&s.spills, 4);
        let snap = s.snapshot();
        assert_eq!(snap.len(), s.counters().len());
        assert!(snap.contains(&("spills", 4)));
    }
}
