//! Runtime statistics collected by LIMA (paper §5.1: cache misses,
//! rewrite/spill times, etc.). All counters are atomic so parfor workers can
//! update them concurrently.

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregated LIMA statistics. One instance lives next to each cache.
#[derive(Debug, Default)]
pub struct LimaStats {
    /// Lineage items created by tracing.
    pub items_traced: AtomicU64,
    /// Dedup items appended instead of full sub-DAGs.
    pub dedup_items: AtomicU64,
    /// Lineage patches materialized.
    pub dedup_patches: AtomicU64,
    /// Cache probes (full reuse).
    pub probes: AtomicU64,
    /// Operation-level full-reuse hits.
    pub full_hits: AtomicU64,
    /// Multi-level (function/block) reuse hits.
    pub multilevel_hits: AtomicU64,
    /// Partial-reuse rewrite hits.
    pub partial_hits: AtomicU64,
    /// Threads that blocked on a placeholder entry being computed elsewhere.
    pub placeholder_waits: AtomicU64,
    /// Values stored into the cache.
    pub puts: AtomicU64,
    /// Values rejected by the cache (non-cacheable, over budget, ...).
    pub rejected_puts: AtomicU64,
    /// Entries evicted by deletion.
    pub evictions: AtomicU64,
    /// Entries evicted by spilling to disk.
    pub spills: AtomicU64,
    /// Spilled entries restored from disk on a hit.
    pub restores: AtomicU64,
    /// Bytes written by spilling.
    pub spill_bytes: AtomicU64,
    /// Nanoseconds of compute time saved by reuse (measured cost of the
    /// reused entries at the time they were cached).
    pub saved_compute_ns: AtomicU64,
    /// Nanoseconds spent executing partial-reuse compensation plans.
    pub compensation_ns: AtomicU64,
    /// Spill writes that failed (entry fell back to delete-eviction).
    pub spill_failures: AtomicU64,
    /// Spilled entries whose restore failed (missing/corrupt file); the
    /// probe degraded to a miss and the value was recomputed.
    pub restore_failures: AtomicU64,
    /// Placeholder waits that timed out and took over the computation from a
    /// presumed-dead fulfiller.
    pub placeholder_timeouts: AtomicU64,
    /// Parfor workers that panicked (isolated and surfaced as errors).
    pub worker_panics: AtomicU64,
    /// Entries durably written to the persistent cache store.
    pub persist_writes: AtomicU64,
    /// Persistent writes that failed (entry stays memory-only).
    pub persist_failures: AtomicU64,
    /// Bytes of value files written by the persistent store.
    pub persist_bytes: AtomicU64,
    /// Eviction tombstones appended to the persistent manifest.
    pub persist_tombstones: AtomicU64,
    /// Reuse hits served by entries recovered from a prior process.
    pub persist_hits: AtomicU64,
    /// Entries repopulated from disk during startup recovery.
    pub persist_recovered: AtomicU64,
    /// Committed entries dropped during recovery (missing/corrupt value file
    /// or unparseable lineage).
    pub persist_dropped: AtomicU64,
    /// Recoveries that truncated a torn WAL tail (at most 1 per startup).
    pub persist_torn_truncations: AtomicU64,
    /// Orphaned value files garbage-collected during recovery.
    pub persist_orphans_gcd: AtomicU64,
    /// Instructions the static determinism analysis unmarked for caching
    /// (loop-carried, non-deterministic, or side-effecting; paper §4.3).
    pub ops_unmarked: AtomicU64,
    /// Functions the analysis classified reuse-ineligible (non-deterministic
    /// bodies are excluded from function-level multi-level reuse, §4.1).
    pub funcs_reuse_ineligible: AtomicU64,
    /// Governor ladder transitions toward higher pressure (one per level).
    pub governor_degrades: AtomicU64,
    /// Governor ladder transitions back toward normal (one per level).
    pub governor_recovers: AtomicU64,
    /// Admissions (cache entries or sessions) rejected by the governor.
    pub governor_admission_rejects: AtomicU64,
    /// Allocation attempts rejected (injected `AllocFail` faults).
    pub alloc_failures: AtomicU64,
    /// Transient persist I/O errors absorbed by backoff retries.
    pub persist_retries: AtomicU64,
    /// Half-open probe attempts granted by the spill/persist breakers.
    pub breaker_probes: AtomicU64,
    /// Sessions admitted into a `SessionPool`.
    pub sessions_started: AtomicU64,
    /// Sessions that ran to completion.
    pub sessions_completed: AtomicU64,
    /// Sessions terminated by cooperative cancellation.
    pub sessions_cancelled: AtomicU64,
    /// Sessions terminated by their deadline.
    pub sessions_deadline_exceeded: AtomicU64,
    /// Session admissions rejected by the governor (`ResourceExhausted`).
    pub sessions_rejected: AtomicU64,
}

impl LimaStats {
    /// Fresh all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Total reuse hits of any kind.
    pub fn total_hits(&self) -> u64 {
        Self::get(&self.full_hits)
            + Self::get(&self.multilevel_hits)
            + Self::get(&self.partial_hits)
    }

    /// Human-readable multi-line report.
    pub fn report(&self) -> String {
        format!(
            "lineage: traced={} dedup_items={} patches={}\n\
             reuse:   probes={} full={} multilevel={} partial={} waits={}\n\
             cache:   puts={} rejected={} evictions={} spills={} restores={} spill_bytes={}\n\
             faults:  spill_failures={} restore_failures={} placeholder_timeouts={} worker_panics={}\n\
             persist: writes={} failures={} bytes={} tombstones={} hits={}\n\
             recover: recovered={} dropped={} torn_truncations={} orphans_gcd={}\n\
             analyze: ops_unmarked={} funcs_reuse_ineligible={}\n\
             governor: degrades={} recovers={} admission_rejects={} alloc_failures={} \
             persist_retries={} breaker_probes={}\n\
             session: started={} completed={} cancelled={} deadline_exceeded={} rejected={}\n\
             time:    saved_compute={:.3}s compensation={:.3}s",
            Self::get(&self.items_traced),
            Self::get(&self.dedup_items),
            Self::get(&self.dedup_patches),
            Self::get(&self.probes),
            Self::get(&self.full_hits),
            Self::get(&self.multilevel_hits),
            Self::get(&self.partial_hits),
            Self::get(&self.placeholder_waits),
            Self::get(&self.puts),
            Self::get(&self.rejected_puts),
            Self::get(&self.evictions),
            Self::get(&self.spills),
            Self::get(&self.restores),
            Self::get(&self.spill_bytes),
            Self::get(&self.spill_failures),
            Self::get(&self.restore_failures),
            Self::get(&self.placeholder_timeouts),
            Self::get(&self.worker_panics),
            Self::get(&self.persist_writes),
            Self::get(&self.persist_failures),
            Self::get(&self.persist_bytes),
            Self::get(&self.persist_tombstones),
            Self::get(&self.persist_hits),
            Self::get(&self.persist_recovered),
            Self::get(&self.persist_dropped),
            Self::get(&self.persist_torn_truncations),
            Self::get(&self.persist_orphans_gcd),
            Self::get(&self.ops_unmarked),
            Self::get(&self.funcs_reuse_ineligible),
            Self::get(&self.governor_degrades),
            Self::get(&self.governor_recovers),
            Self::get(&self.governor_admission_rejects),
            Self::get(&self.alloc_failures),
            Self::get(&self.persist_retries),
            Self::get(&self.breaker_probes),
            Self::get(&self.sessions_started),
            Self::get(&self.sessions_completed),
            Self::get(&self.sessions_cancelled),
            Self::get(&self.sessions_deadline_exceeded),
            Self::get(&self.sessions_rejected),
            Self::get(&self.saved_compute_ns) as f64 / 1e9,
            Self::get(&self.compensation_ns) as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = LimaStats::new();
        LimaStats::bump(&s.full_hits);
        LimaStats::bump(&s.full_hits);
        LimaStats::add(&s.partial_hits, 3);
        LimaStats::bump(&s.multilevel_hits);
        assert_eq!(LimaStats::get(&s.full_hits), 2);
        assert_eq!(s.total_hits(), 6);
    }

    #[test]
    fn report_mentions_key_counters() {
        let s = LimaStats::new();
        LimaStats::add(&s.spill_bytes, 1024);
        let r = s.report();
        assert!(r.contains("spill_bytes=1024"));
        assert!(r.contains("probes=0"));
        LimaStats::bump(&s.restore_failures);
        LimaStats::bump(&s.placeholder_timeouts);
        let r = s.report();
        assert!(r.contains("restore_failures=1"));
        assert!(r.contains("placeholder_timeouts=1"));
        assert!(r.contains("worker_panics=0"));
        LimaStats::add(&s.ops_unmarked, 5);
        LimaStats::bump(&s.funcs_reuse_ineligible);
        let r = s.report();
        assert!(r.contains("ops_unmarked=5"));
        assert!(r.contains("funcs_reuse_ineligible=1"));
        LimaStats::bump(&s.governor_degrades);
        LimaStats::bump(&s.sessions_deadline_exceeded);
        let r = s.report();
        assert!(r.contains("degrades=1"));
        assert!(r.contains("deadline_exceeded=1"));
        assert!(r.contains("breaker_probes=0"));
    }
}
