//! Process-wide memory governance: a hysteresis-guarded degradation ladder.
//!
//! The [`ResourceGovernor`] accounts resident bytes across three categories —
//! cache entries, session live variables, and spill buffers — against one
//! process budget and maps the resulting pressure ratio onto five levels:
//!
//! | level | name             | effect                                             |
//! |-------|------------------|----------------------------------------------------|
//! | L0    | `Normal`         | —                                                  |
//! | L1    | `Shrink`         | effective cache budget halved, eviction aggressive |
//! | L2    | `NoRewrites`     | partial-reuse rewrites + multilevel caching off    |
//! | L3    | `NoAdmission`    | no new cache entries; eviction is delete-only      |
//! | L4    | `RejectSessions` | new session admissions fail (`ResourceExhausted`)  |
//!
//! Each level has an *enter* watermark (fraction of the budget) and re-arms
//! only once pressure drops a hysteresis margin below it, so the ladder never
//! flaps around a single threshold. Transitions are counted in
//! [`LimaStats`] (`governor_degrades` / `governor_recovers`) and levels are
//! walked one step at a time so every crossing is observable.
//!
//! Allocation attempts consult the [`FaultSite::AllocFail`] fault site: a
//! fired fault rejects the allocation *and* registers synthetic pressure
//! (decayed again by later successful allocations), giving tests a
//! deterministic way to drive the ladder down and back up without real
//! memory exhaustion. A governor never aborts the process — every effect is
//! a degraded mode or a typed rejection.

use crate::faults::{FaultInjector, FaultSite};
use crate::obs::{EventKind, Obs};
use crate::stats::LimaStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Rung of the degradation ladder; derives `Ord` so gates can compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// L0 — no degradation.
    Normal,
    /// L1 — shrink the effective cache budget and evict aggressively.
    Shrink,
    /// L2 — additionally disable partial-reuse rewrites and multilevel
    /// caching (they create new cache entries speculatively).
    NoRewrites,
    /// L3 — additionally stop admitting new cache entries; eviction
    /// degrades to delete-only (no spill buffers).
    NoAdmission,
    /// L4 — additionally reject new session admissions.
    RejectSessions,
}

impl PressureLevel {
    fn from_u8(v: u8) -> PressureLevel {
        match v {
            0 => PressureLevel::Normal,
            1 => PressureLevel::Shrink,
            2 => PressureLevel::NoRewrites,
            3 => PressureLevel::NoAdmission,
            _ => PressureLevel::RejectSessions,
        }
    }

    /// Short human-readable name (`L0 normal` … `L4 reject-sessions`).
    pub fn as_str(self) -> &'static str {
        match self {
            PressureLevel::Normal => "L0 normal",
            PressureLevel::Shrink => "L1 shrink-cache",
            PressureLevel::NoRewrites => "L2 no-rewrites",
            PressureLevel::NoAdmission => "L3 no-admission",
            PressureLevel::RejectSessions => "L4 reject-sessions",
        }
    }
}

/// Enter watermarks for L1..L4 as fractions of the budget.
const ENTER: [f64; 4] = [0.70, 0.80, 0.90, 0.97];
/// A level re-arms only once pressure drops this far below its enter mark.
const HYSTERESIS: f64 = 0.08;
/// Synthetic pressure added per injected `AllocFail`, as a budget fraction.
const SYNTHETIC_STEP_NUM: usize = 1;
const SYNTHETIC_STEP_DEN: usize = 4;
/// Synthetic pressure decayed per successful allocation (budget fraction).
const SYNTHETIC_DECAY_DEN: usize = 8;

/// Shared memory-pressure governor; see the module docs for the ladder.
#[derive(Debug)]
pub struct ResourceGovernor {
    budget_bytes: usize,
    level: AtomicU8,
    cache_bytes: AtomicU64,
    spill_bytes: AtomicU64,
    session_bytes: AtomicU64,
    /// Pressure registered by injected allocation failures; decays as
    /// allocations succeed again.
    synthetic_bytes: AtomicU64,
    stats: Arc<LimaStats>,
    faults: Option<Arc<FaultInjector>>,
    /// Observability hub; ladder transitions are recorded as
    /// `GovernorShift` events. Locked only on attach and on an actual level
    /// change (transitions are rare by design — hysteresis).
    obs: Mutex<Option<Arc<Obs>>>,
}

impl ResourceGovernor {
    /// A governor over `budget_bytes` (must be > 0 to be meaningful; a zero
    /// budget pins the ladder at L4).
    pub fn new(
        budget_bytes: usize,
        stats: Arc<LimaStats>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Arc<Self> {
        let g = Arc::new(ResourceGovernor {
            budget_bytes,
            level: AtomicU8::new(0),
            cache_bytes: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            session_bytes: AtomicU64::new(0),
            synthetic_bytes: AtomicU64::new(0),
            stats,
            faults,
            obs: Mutex::new(None),
        });
        g.reevaluate();
        g
    }

    /// Attaches an observability hub; subsequent ladder transitions emit
    /// `GovernorShift` events carrying the from/to levels.
    pub fn attach_obs(&self, obs: Arc<Obs>) {
        *self.obs.lock() = Some(obs);
    }

    /// The configured process budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Total accounted bytes across all categories (incl. synthetic).
    pub fn used_bytes(&self) -> usize {
        (self.cache_bytes.load(Ordering::Relaxed)
            + self.spill_bytes.load(Ordering::Relaxed)
            + self.session_bytes.load(Ordering::Relaxed)
            + self.synthetic_bytes.load(Ordering::Relaxed)) as usize
    }

    /// Current rung of the ladder.
    pub fn level(&self) -> PressureLevel {
        PressureLevel::from_u8(self.level.load(Ordering::Acquire))
    }

    fn pressure(&self) -> f64 {
        if self.budget_bytes == 0 {
            return f64::INFINITY;
        }
        self.used_bytes() as f64 / self.budget_bytes as f64
    }

    /// Walks the ladder toward the level implied by current pressure, one
    /// step at a time so every transition is counted.
    fn reevaluate(&self) {
        loop {
            let pressure = self.pressure();
            let cur = self.level.load(Ordering::Acquire);
            let next = if cur < 4 && pressure >= ENTER[cur as usize] {
                cur + 1
            } else if cur > 0 && pressure < ENTER[(cur - 1) as usize] - HYSTERESIS {
                cur - 1
            } else {
                return;
            };
            if self
                .level
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if next > cur {
                    LimaStats::bump(&self.stats.governor_degrades);
                } else {
                    LimaStats::bump(&self.stats.governor_recovers);
                }
                if let Some(o) = self.obs.lock().as_ref().filter(|o| o.enabled()) {
                    o.record_instant(
                        EventKind::GovernorShift,
                        PressureLevel::from_u8(next).as_str(),
                        0,
                        u64::from(cur),
                        u64::from(next),
                    );
                }
            }
        }
    }

    /// Records the cache's resident bytes (called after cache mutations).
    pub fn set_cache_bytes(&self, bytes: usize) {
        self.cache_bytes.store(bytes as u64, Ordering::Relaxed);
        self.reevaluate();
    }

    /// Records the bytes currently held in spill buffers/files.
    pub fn set_spill_bytes(&self, bytes: usize) {
        self.spill_bytes.store(bytes as u64, Ordering::Relaxed);
        self.reevaluate();
    }

    /// Adjusts the live-variable bytes attributed to sessions.
    pub fn adjust_session_bytes(&self, delta: i64) {
        let _ = self
            .session_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add_signed(delta))
            });
        self.reevaluate();
    }

    /// Attempts to account a new allocation of `bytes`. Consults the
    /// `AllocFail` fault site: a fired fault rejects the attempt and adds
    /// synthetic pressure; successes decay synthetic pressure back down.
    /// Returns false when the allocation must be declined (caller degrades
    /// gracefully — e.g. the cache skips admitting an entry).
    pub fn try_alloc(&self, bytes: usize) -> bool {
        if let Some(inj) = &self.faults {
            if inj.should_fail(FaultSite::AllocFail) {
                LimaStats::bump(&self.stats.alloc_failures);
                let step = (self.budget_bytes * SYNTHETIC_STEP_NUM / SYNTHETIC_STEP_DEN).max(bytes);
                self.synthetic_bytes
                    .fetch_add(step as u64, Ordering::Relaxed);
                self.reevaluate();
                return false;
            }
        }
        let decay = (self.budget_bytes / SYNTHETIC_DECAY_DEN) as u64;
        if decay > 0 && self.synthetic_bytes.load(Ordering::Relaxed) > 0 {
            let _ =
                self.synthetic_bytes
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                        Some(cur.saturating_sub(decay))
                    });
        }
        self.reevaluate();
        true
    }

    /// Effective cache budget under the current level: halved at L1+.
    pub fn effective_cache_budget(&self, configured: usize) -> usize {
        if self.level() >= PressureLevel::Shrink {
            configured / 2
        } else {
            configured
        }
    }

    /// False at L2+: partial-reuse rewrites and multilevel caching pause.
    pub fn rewrites_enabled(&self) -> bool {
        self.level() < PressureLevel::NoRewrites
    }

    /// False at L3+: the cache stops admitting new entries and eviction
    /// degrades to delete-only.
    pub fn admissions_enabled(&self) -> bool {
        self.level() < PressureLevel::NoAdmission
    }

    /// False at L4: new session admissions are rejected with a typed error.
    pub fn sessions_enabled(&self) -> bool {
        let ok = self.level() < PressureLevel::RejectSessions;
        if !ok {
            LimaStats::bump(&self.stats.governor_admission_rejects);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(budget: usize) -> Arc<ResourceGovernor> {
        ResourceGovernor::new(budget, Arc::new(LimaStats::default()), None)
    }

    #[test]
    fn ladder_walks_down_and_back_up_with_hysteresis() {
        let g = governor(1000);
        assert_eq!(g.level(), PressureLevel::Normal);

        g.set_cache_bytes(750); // 0.75 ≥ 0.70 → L1
        assert_eq!(g.level(), PressureLevel::Shrink);
        assert_eq!(g.stats.governor_degrades.load(Ordering::Relaxed), 1);

        // Hysteresis: dropping to just below the enter mark does NOT re-arm.
        g.set_cache_bytes(680); // 0.68 ≥ 0.70 − 0.08
        assert_eq!(g.level(), PressureLevel::Shrink);

        g.set_cache_bytes(400); // 0.40 < 0.62 → back to L0
        assert_eq!(g.level(), PressureLevel::Normal);
        assert_eq!(g.stats.governor_recovers.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn extreme_pressure_walks_all_levels_one_at_a_time() {
        let g = governor(1000);
        g.set_cache_bytes(2000); // pressure 2.0 → straight past every mark
        assert_eq!(g.level(), PressureLevel::RejectSessions);
        assert_eq!(g.stats.governor_degrades.load(Ordering::Relaxed), 4);
        g.set_cache_bytes(0);
        assert_eq!(g.level(), PressureLevel::Normal);
        assert_eq!(g.stats.governor_recovers.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn gates_match_levels() {
        let g = governor(1000);
        assert!(g.rewrites_enabled() && g.admissions_enabled() && g.sessions_enabled());
        assert_eq!(g.effective_cache_budget(100), 100);

        g.set_cache_bytes(850); // → L2
        assert_eq!(g.level(), PressureLevel::NoRewrites);
        assert_eq!(g.effective_cache_budget(100), 50);
        assert!(!g.rewrites_enabled());
        assert!(g.admissions_enabled());

        g.set_cache_bytes(950); // → L3
        assert!(!g.admissions_enabled());
        assert!(g.sessions_enabled());

        g.set_cache_bytes(990); // → L4
        assert!(!g.sessions_enabled());
        assert!(g.stats.governor_admission_rejects.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn alloc_fail_injects_synthetic_pressure_that_decays() {
        use crate::faults::FaultInjector;
        let inj = Arc::new(FaultInjector::new(1).fail_at(FaultSite::AllocFail, &[0]));
        let g = ResourceGovernor::new(1000, Arc::new(LimaStats::default()), Some(inj));
        assert!(!g.try_alloc(64)); // occurrence 0 fires → +250 synthetic
        assert!(g.stats.alloc_failures.load(Ordering::Relaxed) == 1);
        assert!(g.used_bytes() >= 250);
        // Successful allocations decay the synthetic pressure away.
        assert!(g.try_alloc(64));
        assert!(g.try_alloc(64));
        assert_eq!(g.used_bytes(), 0);
        assert_eq!(g.level(), PressureLevel::Normal);
    }

    #[test]
    fn session_bytes_adjust_saturates_and_counts() {
        let g = governor(1000);
        g.adjust_session_bytes(300);
        assert_eq!(g.used_bytes(), 300);
        g.adjust_session_bytes(-500); // saturates at zero
        assert_eq!(g.used_bytes(), 0);
    }

    #[test]
    fn zero_budget_pins_ladder_at_reject() {
        let g = governor(0);
        assert_eq!(g.level(), PressureLevel::RejectSessions);
        assert!(!g.sessions_enabled());
    }
}
