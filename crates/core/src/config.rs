//! Configuration of lineage tracing and the reuse cache.

use crate::faults::FaultInjector;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Which reuse machinery is active (paper §5.1 "cache configurations":
/// full, partial, hybrid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseMode {
    /// No reuse; tracing only (configuration `LT` in Fig 6).
    None,
    /// Operation-level full reuse only (`LIMA-FR`).
    Full,
    /// Partial-reuse rewrites only.
    Partial,
    /// Full + partial reuse (the default `LIMA` configuration).
    Hybrid,
}

impl ReuseMode {
    /// True if full (operation-level) reuse is enabled.
    pub fn full(self) -> bool {
        matches!(self, ReuseMode::Full | ReuseMode::Hybrid)
    }

    /// True if partial-reuse rewrites are enabled.
    pub fn partial(self) -> bool {
        matches!(self, ReuseMode::Partial | ReuseMode::Hybrid)
    }

    /// True if any reuse is enabled.
    pub fn any(self) -> bool {
        !matches!(self, ReuseMode::None)
    }
}

/// Cache eviction policy (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used: evict minimal last-access timestamp.
    Lru,
    /// DAG-Height: deep lineage traces are assumed to have less reuse
    /// potential; evict maximal height (score `1/h(o)`).
    DagHeight,
    /// Cost & Size (default): evict minimal `(r_h + r_m) · c(o) / s(o)`.
    CostSize,
    /// Hybrid (weighted recency + cost/size). The paper abandoned this in
    /// favour of the parameter-free Cost&Size policy (§4.3); it is kept here
    /// for the ablation study.
    Hybrid,
}

/// Top-level LIMA configuration handed to the runtime and the cache.
#[derive(Debug, Clone)]
pub struct LimaConfig {
    /// Master switch for lineage tracing.
    pub tracing: bool,
    /// Deduplicate lineage for last-level loops and functions.
    pub dedup: bool,
    /// Reuse machinery (requires `tracing`).
    pub reuse: ReuseMode,
    /// Multi-level (function/block) reuse on top of operation reuse.
    pub multilevel: bool,
    /// Eviction policy.
    pub policy: EvictionPolicy,
    /// Cache budget in bytes (the paper defaults to 5% of the heap; here an
    /// absolute budget).
    pub budget_bytes: usize,
    /// Spill evicted entries to disk when recompute cost exceeds I/O cost.
    pub spill: bool,
    /// Compiler assistance: unmarking and reuse-aware rewrites (paper §4.4).
    pub compiler_assist: bool,
    /// Opcodes whose outputs qualify for caching; `None` uses the default set.
    pub cacheable_opcodes: Option<HashSet<String>>,
    /// Objects larger than the whole budget are never cached; additionally,
    /// objects smaller than this many bytes are not worth caching as
    /// individual entries (placeholder pressure); 0 disables the floor.
    pub min_entry_bytes: usize,
    /// Batch-eviction hysteresis: eviction stops once the resident size
    /// drops below `budget × watermark`. Values near 1.0 evict exactly to
    /// the budget (strict Table-1 semantics, O(n) scan per overflow); lower
    /// values amortize scans for pollution-heavy workloads.
    pub eviction_watermark: f64,
    /// Upper bound (milliseconds) a probe blocks on another thread's
    /// placeholder before assuming the fulfiller died and taking over the
    /// computation itself. 0 waits forever (the pre-hardening behaviour).
    pub placeholder_timeout_ms: u64,
    /// Circuit breaker: after this many *consecutive* spill-write failures
    /// the cache stops attempting to spill (evictions degrade to deletes).
    /// The persistent cache store reuses the same limit for its own writes.
    /// 0 disables the breaker.
    pub spill_failure_limit: u32,
    /// Half-open cooldown for the spill/persist circuit breakers: once open,
    /// a single probe attempt is allowed through per window of this many
    /// milliseconds (success closes the breaker again). 0 restores the old
    /// latch-open-forever behaviour.
    pub breaker_cooldown_ms: u64,
    /// Bounded retries (with jittered exponential backoff) for transient
    /// persist I/O errors before they count against the breaker. 0 disables
    /// retrying.
    pub persist_retry_attempts: u32,
    /// Base backoff delay (milliseconds) before the first persist retry;
    /// doubles per retry.
    pub persist_retry_base_ms: u64,
    /// Process-wide memory budget governed by the
    /// [`crate::governor::ResourceGovernor`] degradation ladder (resident
    /// cache bytes + session live variables + spill buffers). 0 disables
    /// governance entirely (no governor is constructed).
    pub governor_budget_bytes: usize,
    /// Durably persist reuse-cache entries across process restarts. Requires
    /// `persist_dir`; without one the flag is ignored.
    pub persist_enabled: bool,
    /// Directory holding the persistent manifest WAL and value files. The
    /// same directory can be reopened by a later process to warm-start the
    /// cache. An unusable directory degrades to an empty cache, never an
    /// error.
    pub persist_dir: Option<PathBuf>,
    /// Disk budget for persisted value files; the oldest entries are
    /// tombstoned once the total exceeds it. 0 means unbounded.
    pub persist_budget_bytes: u64,
    /// Manifest WAL size below which auto-compaction never triggers.
    pub persist_compact_min_bytes: u64,
    /// Auto-compact the manifest WAL into a fresh generation when it exceeds
    /// the live-record footprint by this factor; 0 disables auto-compaction.
    pub persist_compact_factor: u64,
    /// Quarantined (corrupt) persist files older than this many seconds are
    /// garbage-collected at startup recovery; 0 keeps them forever.
    pub persist_quarantine_max_age_secs: u64,
    /// Global token budget bounding how many lineage-driven repairs a flaky
    /// disk can trigger (see [`crate::resilience::RetryBudget`]).
    pub persist_repair_budget: u64,
    /// Recomputes corrupt persisted values from their serialized lineage
    /// (scrub- and recovery-time repair). The runtime installs its
    /// reconstruction-based hook automatically when persistence is enabled;
    /// `None` here with no runtime in the loop means corrupt entries are
    /// quarantined instead of repaired.
    pub repair: Option<crate::cache::persist::RepairHook>,
    /// Deterministic fault-injection harness; `None` (the default) injects
    /// nothing and is the production configuration.
    pub faults: Option<Arc<FaultInjector>>,
    /// Observability hub (lima-obs): lineage-aware trace events from the
    /// cache, governor, and runtime flow into its per-thread rings. `None`
    /// (the default) removes even the per-event gate check from most paths.
    pub obs: Option<Arc<crate::obs::Obs>>,
    /// Kernel backend for dense matrix compute. `None` (the default) keeps
    /// whatever the process already resolved (the `LIMA_BACKEND` env var, or
    /// the Optimized engine); `Some(kind)` pins it when the runtime builds an
    /// execution context from this config. Process-global, like the engine
    /// registry itself.
    pub backend: Option<lima_matrix::BackendKind>,
}

impl Default for LimaConfig {
    fn default() -> Self {
        LimaConfig {
            tracing: true,
            dedup: false,
            reuse: ReuseMode::Hybrid,
            multilevel: true,
            policy: EvictionPolicy::CostSize,
            budget_bytes: 256 * 1024 * 1024,
            spill: true,
            compiler_assist: true,
            cacheable_opcodes: None,
            min_entry_bytes: 0,
            eviction_watermark: 0.8,
            placeholder_timeout_ms: 60_000,
            spill_failure_limit: 3,
            breaker_cooldown_ms: 5_000,
            persist_retry_attempts: 2,
            persist_retry_base_ms: 1,
            governor_budget_bytes: 0,
            persist_enabled: false,
            persist_dir: None,
            persist_budget_bytes: 1 << 30,
            persist_compact_min_bytes: 64 * 1024,
            persist_compact_factor: 4,
            persist_quarantine_max_age_secs: 86_400,
            persist_repair_budget: 64,
            repair: None,
            faults: None,
            obs: None,
            backend: None,
        }
    }
}

impl LimaConfig {
    /// Baseline configuration: no tracing, no reuse (paper's `Base`).
    pub fn base() -> Self {
        LimaConfig {
            tracing: false,
            dedup: false,
            reuse: ReuseMode::None,
            multilevel: false,
            compiler_assist: false,
            ..Self::default()
        }
    }

    /// Tracing only (`LT`).
    pub fn tracing_only() -> Self {
        LimaConfig {
            tracing: true,
            reuse: ReuseMode::None,
            multilevel: false,
            compiler_assist: false,
            ..Self::default()
        }
    }

    /// Tracing + dedup, no reuse (`LTD`).
    pub fn tracing_dedup() -> Self {
        LimaConfig {
            dedup: true,
            ..Self::tracing_only()
        }
    }

    /// The full LIMA configuration (hybrid reuse, multi-level, C&S eviction).
    pub fn lima() -> Self {
        Self::default()
    }

    /// Attaches a fault-injection harness (robustness tests).
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches an observability hub; runtime and cache events are recorded
    /// into it whenever its gate is open (see [`crate::obs::Obs`]).
    pub fn with_obs(mut self, obs: Arc<crate::obs::Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Enables the memory-pressure degradation ladder over `budget` bytes
    /// (see [`crate::governor::ResourceGovernor`]).
    pub fn with_governor(mut self, budget_bytes: usize) -> Self {
        self.governor_budget_bytes = budget_bytes;
        self
    }

    /// Enables the crash-safe persistent cache store rooted at `dir`. A later
    /// process pointing at the same directory recovers the surviving entries
    /// on startup.
    pub fn with_persistence(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_enabled = true;
        self.persist_dir = Some(dir.into());
        self
    }

    /// Installs a lineage-driven repair hook for the persistent store; see
    /// [`crate::cache::persist::RepairHook`].
    pub fn with_repair(mut self, hook: crate::cache::persist::RepairHook) -> Self {
        self.repair = Some(hook);
        self
    }

    /// Pins the dense kernel backend (Reference for diff/debug runs,
    /// Optimized for speed). Applied process-globally when a runtime context
    /// is built from this config.
    pub fn with_backend(mut self, kind: lima_matrix::BackendKind) -> Self {
        self.backend = Some(kind);
        self
    }

    /// Applies the backend selection, if any, to the process-global engine
    /// registry. The runtime calls this when constructing execution contexts.
    pub fn apply_backend(&self) {
        if let Some(kind) = self.backend {
            lima_matrix::backend::set_backend(kind);
        }
    }

    /// True when `op` qualifies for caching under this configuration.
    pub fn is_cacheable(&self, op: &str) -> bool {
        match &self.cacheable_opcodes {
            Some(set) => set.contains(op),
            None => {
                crate::opcodes::default_cacheable().contains(&op)
                    || op.starts_with(crate::opcodes::FUSED_PREFIX)
                    || op.starts_with(crate::opcodes::FCALL)
                    || op.starts_with(crate::opcodes::BCALL)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_mode_flags() {
        assert!(!ReuseMode::None.any());
        assert!(ReuseMode::Full.full() && !ReuseMode::Full.partial());
        assert!(!ReuseMode::Partial.full() && ReuseMode::Partial.partial());
        assert!(ReuseMode::Hybrid.full() && ReuseMode::Hybrid.partial());
    }

    #[test]
    fn preset_configs() {
        assert!(!LimaConfig::base().tracing);
        assert!(LimaConfig::tracing_only().tracing);
        assert!(!LimaConfig::tracing_only().reuse.any());
        assert!(LimaConfig::tracing_dedup().dedup);
        assert!(LimaConfig::lima().reuse.any());
        assert_eq!(LimaConfig::lima().policy, EvictionPolicy::CostSize);
    }

    #[test]
    fn faults_default_off_and_attach_via_builder() {
        use crate::faults::{FaultInjector, FaultSite};
        assert!(LimaConfig::lima().faults.is_none());
        assert!(LimaConfig::base().faults.is_none());
        let inj = Arc::new(FaultInjector::new(1).fail_at(FaultSite::SpillRead, &[0]));
        let cfg = LimaConfig::lima().with_faults(Arc::clone(&inj));
        assert!(cfg
            .faults
            .as_ref()
            .unwrap()
            .should_fail(FaultSite::SpillRead));
        // The config clones share the injector's counters.
        let cfg2 = cfg.clone();
        assert_eq!(cfg2.faults.unwrap().occurrences(FaultSite::SpillRead), 1);
    }

    #[test]
    fn cacheable_respects_override() {
        let mut cfg = LimaConfig::default();
        assert!(cfg.is_cacheable("ba+*"));
        assert!(!cfg.is_cacheable("print"));
        assert!(cfg.is_cacheable("spoof17"));
        cfg.cacheable_opcodes = Some(["ba+*".to_string()].into_iter().collect());
        assert!(cfg.is_cacheable("ba+*"));
        assert!(!cfg.is_cacheable("tsmm"));
    }
}
