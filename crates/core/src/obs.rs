//! lima-obs: lineage-aware, low-overhead runtime tracing (§5.1 tooling).
//!
//! A lock-free, per-thread ring-buffer event log with structured spans for
//! instruction execution, cache probe outcomes (hit/miss) and fulfills,
//! partial-rewrite application, spill/persist IO, governor ladder
//! transitions, parfor workers, and session lifecycle. Every [`Event`]
//! carries the lineage item id of the DAG node it concerns, so cost
//! attributes back to the lineage graph rather than to anonymous wall-clock.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be free.** The runtime holds an
//!    `Option<Arc<Obs>>`; the common path is a single `Option` branch, and
//!    an *attached but disabled* `Obs` costs one relaxed atomic load
//!    ([`Obs::enabled`]). The CI `obs` job guards that an attached-disabled
//!    `Obs` stays within 1% of no-`Obs` on a kernel-heavy workload.
//! 2. **Enabled must not serialize threads.** Each thread writes to its own
//!    fixed-capacity ring with a seqlock per slot (odd sequence = write in
//!    progress). Writers never take a lock and never allocate after their
//!    ring exists; the global registry mutex is touched once per
//!    thread×`Obs` pair and at export.
//! 3. **Bounded memory.** Rings overwrite their oldest events; the exporter
//!    reports how many were dropped instead of stalling the workload.
//!
//! Exporters: [`Obs::chrome_trace`] emits Chrome `trace_event` JSON (load
//! in Perfetto / `chrome://tracing`); [`validate_chrome_trace`] +
//! [`check_span_nesting`] parse it back with a dependency-free JSON reader
//! so tests and the `trace_check` tool can verify traces without serde.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default per-thread ring capacity (events). Power of two keeps the
/// modulo cheap; 64Ki events ≈ 4.5 MiB per active thread.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Inline event-name capacity; longer names are truncated at a UTF-8
/// boundary. 23 bytes covers every opcode plus `fcall:`-prefixed names.
pub const MAX_NAME_BYTES: usize = 23;

/// What an [`Event`] describes. Kinds map onto Chrome trace categories via
/// [`EventKind::cat`]; high-frequency kinds are subject to sampling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum EventKind {
    /// One interpreted instruction (span; resolve→probe→execute→bind).
    Instr,
    /// Kernel execution proper, nested inside its instruction span.
    Kernel,
    /// Function-level multi-level reuse unit (span over probe or body).
    FCall,
    /// Block-level multi-level reuse unit (`a`: 1 = served from cache).
    BlockReuse,
    /// Cache probe that found a reusable value (instant).
    CacheHit,
    /// Cache probe that reserved a placeholder (instant).
    CacheMiss,
    /// A reservation fulfilled with a computed value (instant; `a` =
    /// compute nanoseconds, `b` = 1 when admitted).
    CacheFulfill,
    /// Partial-reuse rewrite applied instead of a full computation (span).
    PartialRewrite,
    /// Cache entry spilled to disk (span; `a` = bytes).
    SpillWrite,
    /// Spilled entry restored from disk (span; `a` = bytes).
    SpillRestore,
    /// Entry persisted to the crash-safe store (span; `a` = bytes).
    PersistWrite,
    /// Governor ladder transition (instant; `a` = from level, `b` = to).
    GovernorShift,
    /// Session admitted and started (instant; `a` = session id).
    SessionStart,
    /// Session finished (span over its whole life; `a` = session id,
    /// name = outcome).
    SessionEnd,
    /// One parfor worker's slice of iterations (span; `a` = worker index,
    /// `b` = iterations executed).
    ParforWorker,
}

impl EventKind {
    /// Chrome trace category string.
    pub fn cat(self) -> &'static str {
        match self {
            EventKind::Instr => "instr",
            EventKind::Kernel => "kernel",
            EventKind::FCall | EventKind::BlockReuse => "multilevel",
            EventKind::CacheHit | EventKind::CacheMiss | EventKind::CacheFulfill => "cache",
            EventKind::PartialRewrite => "rewrite",
            EventKind::SpillWrite | EventKind::SpillRestore | EventKind::PersistWrite => "io",
            EventKind::GovernorShift => "governor",
            EventKind::SessionStart | EventKind::SessionEnd => "session",
            EventKind::ParforWorker => "parfor",
        }
    }

    /// Kinds emitted once (or more) per instruction; these honour
    /// [`Obs::set_sample_every`] so long runs can trade resolution for
    /// ring lifetime. Rare structural events are always recorded.
    pub fn high_freq(self) -> bool {
        matches!(
            self,
            EventKind::Instr
                | EventKind::Kernel
                | EventKind::CacheHit
                | EventKind::CacheMiss
                | EventKind::CacheFulfill
        )
    }
}

/// Fixed-capacity inline string so [`Event`] stays `Copy` and ring writes
/// never allocate. Construction truncates at a character boundary.
#[derive(Clone, Copy)]
pub struct SmallName {
    len: u8,
    buf: [u8; MAX_NAME_BYTES],
}

impl SmallName {
    /// Inline copy of `s`, truncated to [`MAX_NAME_BYTES`] at a UTF-8
    /// boundary.
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(MAX_NAME_BYTES);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; MAX_NAME_BYTES];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        SmallName {
            len: end as u8,
            buf,
        }
    }

    /// The stored prefix.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl fmt::Debug for SmallName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for SmallName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One trace event. `Copy` + fixed-size by construction so seqlock slots
/// can be written without allocation or drop glue.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Display name (opcode, outcome, ...).
    pub name: SmallName,
    /// Start time, nanoseconds since the owning [`Obs`] epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; 0 marks an instant event.
    pub dur_ns: u64,
    /// Lineage item id this event attributes to (0 = none).
    pub lineage_id: u64,
    /// Kind-specific payload (bytes, level, worker index, ...).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

impl Default for Event {
    fn default() -> Self {
        Event {
            kind: EventKind::Instr,
            name: SmallName::new(""),
            ts_ns: 0,
            dur_ns: 0,
            lineage_id: 0,
            a: 0,
            b: 0,
        }
    }
}

struct Slot {
    /// Seqlock: `2*n + 1` while slot `n` (mod capacity) is being written,
    /// `2*n + 2` once it holds a complete event for logical index `n`.
    seq: AtomicU64,
    ev: UnsafeCell<Event>,
}

/// A single-producer ring of [`Event`]s owned by one thread. Readers
/// (exporters on any thread) take lock-free snapshots and skip slots that
/// are mid-write or already overwritten — a torn read is detected by the
/// per-slot sequence, never returned.
pub struct ThreadRing {
    tid: u64,
    cap: usize,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: the only mutation is `push`, called exclusively by the owning
// thread (rings are handed out through a thread-local, one per
// thread×`Obs`). Concurrent `snapshot` readers validate the slot sequence
// before and after copying and discard torn values; the copy itself uses a
// volatile read so a racing write cannot be miscompiled around.
unsafe impl Send for ThreadRing {}
unsafe impl Sync for ThreadRing {}

impl ThreadRing {
    fn new(tid: u64, cap: usize) -> Self {
        let cap = cap.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ev: UnsafeCell::new(Event::default()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ThreadRing {
            tid,
            cap,
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Stable per-`Obs` thread id used as the trace `tid`.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Appends one event, overwriting the oldest when full. Must only be
    /// called by the owning thread (enforced by the thread-local handout).
    fn push(&self, ev: Event) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (self.cap - 1)];
        slot.seq.store(2 * h + 1, Ordering::Release);
        // SAFETY: single writer (owning thread); readers detect this write
        // via the odd sequence and discard their copy.
        unsafe { std::ptr::write_volatile(slot.ev.get(), ev) };
        slot.seq.store(2 * h + 2, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Events ever pushed (monotone; exceeds capacity once wrapped).
    fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Lock-free snapshot of the currently retained events, oldest first.
    /// Slots being overwritten during the scan are skipped.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let retained = head.min(self.cap as u64);
        let mut out = Vec::with_capacity(retained as usize);
        for i in (head - retained)..head {
            let slot = &self.slots[(i as usize) & (self.cap - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * i + 2 {
                continue; // mid-write or already lapped
            }
            // SAFETY: volatile copy; validated by re-reading the sequence.
            let ev = unsafe { std::ptr::read_volatile(slot.ev.get()) };
            let s2 = slot.seq.load(Ordering::Acquire);
            if s2 == s1 {
                out.push(ev);
            }
        }
        out
    }
}

struct TlsEntry {
    obs_id: u64,
    ring: Arc<ThreadRing>,
    sample_ctr: u64,
}

thread_local! {
    /// Rings this thread writes to, one per live `Obs` it has recorded
    /// into. Tiny (almost always length 1), so linear scan beats hashing.
    static TLS_RINGS: RefCell<Vec<TlsEntry>> = const { RefCell::new(Vec::new()) };
}

static NEXT_OBS_ID: AtomicU64 = AtomicU64::new(1);

/// The observability hub: owns the clock epoch, the enable gate, the
/// sampling knob, and the registry of per-thread rings. Cheap to share
/// (`Arc<Obs>` rides inside `LimaConfig`); all hot-path cost is behind
/// [`Obs::enabled`].
pub struct Obs {
    id: u64,
    epoch: Instant,
    enabled: AtomicBool,
    sample_every: AtomicU64,
    ring_capacity: usize,
    next_tid: AtomicU64,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("id", &self.id)
            .field("enabled", &self.enabled())
            .field("sample_every", &self.sample_every.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// An enabled collector with the default ring capacity.
    pub fn new() -> Self {
        Obs::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled collector whose per-thread rings retain `ring_capacity`
    /// events (rounded up to a power of two).
    pub fn with_capacity(ring_capacity: usize) -> Self {
        Obs {
            id: NEXT_OBS_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            sample_every: AtomicU64::new(1),
            ring_capacity,
            next_tid: AtomicU64::new(1),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// An attached-but-disabled collector: the shape the overhead guard
    /// measures (tracing compiled in and wired, gate closed).
    pub fn disabled() -> Self {
        let o = Obs::new();
        o.set_enabled(false);
        o
    }

    /// The one-branch hot-path gate. Instrumentation sites check this (or
    /// the enclosing `Option`) before doing any formatting or clock work.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens or closes the gate at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Keep only every `n`-th high-frequency event per thread (1 = keep
    /// all). Structural events (sessions, governor shifts, IO) are always
    /// kept.
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    /// Nanoseconds since this collector's epoch (monotonic, shared by all
    /// threads so cross-thread spans line up in one timeline).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn ring_for_current_thread(&self) -> Arc<ThreadRing> {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(ThreadRing::new(tid, self.ring_capacity));
        self.rings.lock().push(Arc::clone(&ring));
        ring
    }

    /// Records one event into the calling thread's ring. No-op while the
    /// gate is closed; may drop high-frequency events under sampling.
    pub fn record(&self, ev: Event) {
        if !self.enabled() {
            return;
        }
        let every = self.sample_every.load(Ordering::Relaxed);
        TLS_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            let idx = match rings.iter().position(|e| e.obs_id == self.id) {
                Some(i) => i,
                None => {
                    rings.push(TlsEntry {
                        obs_id: self.id,
                        ring: self.ring_for_current_thread(),
                        sample_ctr: 0,
                    });
                    rings.len() - 1
                }
            };
            let entry = &mut rings[idx];
            if every > 1 && ev.kind.high_freq() {
                entry.sample_ctr += 1;
                if entry.sample_ctr % every != 0 {
                    return;
                }
            }
            entry.ring.push(ev);
        });
    }

    /// Records a span from `start_ns` (a prior [`Obs::now_ns`]) to now.
    /// Durations are clamped to ≥1ns so spans stay distinguishable from
    /// instants in the export.
    pub fn record_span(
        &self,
        kind: EventKind,
        name: &str,
        lineage_id: u64,
        start_ns: u64,
        a: u64,
        b: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let now = self.now_ns();
        self.record(Event {
            kind,
            name: SmallName::new(name),
            ts_ns: start_ns,
            dur_ns: now.saturating_sub(start_ns).max(1),
            lineage_id,
            a,
            b,
        });
    }

    /// Records a zero-duration instant event stamped now.
    pub fn record_instant(&self, kind: EventKind, name: &str, lineage_id: u64, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        self.record(Event {
            kind,
            name: SmallName::new(name),
            ts_ns: self.now_ns(),
            dur_ns: 0,
            lineage_id,
            a,
            b,
        });
    }

    /// Total events overwritten before export (ring wrap), across threads.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .iter()
            .map(|r| r.pushed().saturating_sub(r.cap as u64))
            .sum()
    }

    /// Snapshot of all retained events as `(tid, event)`, globally sorted
    /// by start time.
    pub fn events(&self) -> Vec<(u64, Event)> {
        let rings: Vec<Arc<ThreadRing>> = self.rings.lock().clone();
        let mut out = Vec::new();
        for ring in rings {
            for ev in ring.snapshot() {
                out.push((ring.tid(), ev));
            }
        }
        out.sort_by_key(|(_, e)| e.ts_ns);
        out
    }

    /// Chrome `trace_event` JSON for the retained events. Load the file in
    /// Perfetto or `chrome://tracing`; spans carry `args.lineage_id` so
    /// slices attribute back to the lineage DAG.
    pub fn chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 140 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, (tid, ev)) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_into(ev.name.as_str(), &mut out);
            out.push_str("\",\"cat\":\"");
            out.push_str(ev.kind.cat());
            out.push_str("\",\"ph\":\"");
            if ev.dur_ns > 0 {
                out.push('X');
            } else {
                out.push('i');
            }
            out.push_str("\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(&format!(",\"ts\":{:.3}", ev.ts_ns as f64 / 1000.0));
            if ev.dur_ns > 0 {
                out.push_str(&format!(",\"dur\":{:.3}", ev.dur_ns as f64 / 1000.0));
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(
                ",\"args\":{{\"lineage_id\":{},\"a\":{},\"b\":{}}}}}",
                ev.lineage_id, ev.a, ev.b
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// Trace validation: a dependency-free JSON reader + Chrome-trace checker,
// shared by the exporter tests and the `trace_check` CI tool.
// ---------------------------------------------------------------------------

/// Minimal JSON value for trace validation (numbers as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    match rest.chars().next() {
                        Some(c) => {
                            s.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses a JSON document (objects, arrays, strings, f64 numbers).
pub fn parse_json(input: &str) -> Result<Json, String> {
    let mut p = JsonParser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// One complete (`ph == "X"`) span from a validated trace.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Event name.
    pub name: String,
    /// Chrome category.
    pub cat: String,
    /// Thread lane.
    pub tid: u64,
    /// Start, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// `args.lineage_id` (0 when absent).
    pub lineage_id: u64,
}

/// Structural summary returned by [`validate_chrome_trace`].
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// All events (spans + instants).
    pub total_events: usize,
    /// Instant (`ph == "i"`) events.
    pub instants: usize,
    /// Events carrying a non-zero `args.lineage_id`.
    pub with_lineage: usize,
    /// Distinct thread lanes.
    pub tids: usize,
    /// The complete spans, in file order.
    pub spans: Vec<TraceSpan>,
}

/// Parses `text` as Chrome `trace_event` JSON and checks every event has
/// the fields Perfetto requires (`name`/`cat`/`ph`/`pid`/`tid`/`ts`, plus
/// `dur` for `"X"` events). Returns a structural summary for further
/// checks.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let root = parse_json(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = TraceSummary {
        total_events: events.len(),
        ..TraceSummary::default()
    };
    let mut tids = std::collections::HashSet::new();
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| ev.get(k).ok_or_else(|| format!("event {i}: missing '{k}'"));
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: 'name' not a string"))?
            .to_string();
        let cat = field("cat")?
            .as_str()
            .ok_or_else(|| format!("event {i}: 'cat' not a string"))?
            .to_string();
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: 'ph' not a string"))?;
        field("pid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: 'pid' not a number"))?;
        let tid = field("tid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: 'tid' not a number"))? as u64;
        let ts = field("ts")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: 'ts' not a number"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts"));
        }
        tids.insert(tid);
        let lineage_id = ev
            .get("args")
            .and_then(|a| a.get("lineage_id"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        if lineage_id != 0 {
            summary.with_lineage += 1;
        }
        match ph {
            "X" => {
                let dur = field("dur")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: 'dur' not a number"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                summary.spans.push(TraceSpan {
                    name,
                    cat,
                    tid,
                    ts_us: ts,
                    dur_us: dur,
                    lineage_id,
                });
            }
            "i" => summary.instants += 1,
            other => return Err(format!("event {i}: unexpected ph '{other}'")),
        }
    }
    summary.tids = tids.len();
    Ok(summary)
}

/// Checks that spans within each thread lane are properly nested: any two
/// spans on one `tid` must be disjoint or contained (±1.5ns tolerance for
/// the exporter's microsecond rounding). This is what makes the trace
/// render as sensible flame stacks.
pub fn check_span_nesting(summary: &TraceSummary) -> Result<(), String> {
    const EPS: f64 = 0.0015; // µs; export rounds to 0.001 µs
    let mut by_tid: std::collections::HashMap<u64, Vec<&TraceSpan>> =
        std::collections::HashMap::new();
    for s in &summary.spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    for (tid, mut spans) in by_tid {
        spans.sort_by(|x, y| {
            (x.ts_us, y.dur_us)
                .partial_cmp(&(y.ts_us, x.dur_us))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut stack: Vec<f64> = Vec::new(); // open span end times
        for s in spans {
            while let Some(&end) = stack.last() {
                if s.ts_us >= end - EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&end) = stack.last() {
                let s_end = s.ts_us + s.dur_us;
                if s_end > end + EPS {
                    return Err(format!(
                        "tid {tid}: span '{}' [{:.3}..{:.3}] overlaps enclosing span ending {:.3}",
                        s.name, s.ts_us, s_end, end
                    ));
                }
            }
            stack.push(s.ts_us + s.dur_us);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, name: &str, ts: u64, dur: u64, lid: u64) -> Event {
        Event {
            kind,
            name: SmallName::new(name),
            ts_ns: ts,
            dur_ns: dur,
            lineage_id: lid,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn small_name_truncates_at_char_boundary() {
        let s = "é".repeat(20); // 40 bytes
        let n = SmallName::new(&s);
        assert!(n.as_str().len() <= MAX_NAME_BYTES);
        assert!(n.as_str().chars().all(|c| c == 'é'));
        assert_eq!(SmallName::new("tsmm").as_str(), "tsmm");
    }

    #[test]
    fn ring_retains_newest_on_wrap() {
        let ring = ThreadRing::new(1, 8);
        for i in 0..20u64 {
            ring.push(ev(EventKind::Instr, "op", i, 1, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap[0].ts_ns, 12);
        assert_eq!(snap[7].ts_ns, 19);
        assert_eq!(ring.pushed(), 20);
    }

    #[test]
    fn record_respects_gate_and_sampling() {
        let obs = Obs::with_capacity(1 << 10);
        obs.set_enabled(false);
        obs.record(ev(EventKind::Instr, "op", 1, 1, 1));
        assert!(obs.events().is_empty());
        obs.set_enabled(true);
        obs.set_sample_every(4);
        for i in 0..16 {
            obs.record(ev(EventKind::Instr, "op", i, 1, 1));
        }
        // Sampled 1-in-4.
        assert_eq!(obs.events().len(), 4);
        // Structural events bypass sampling.
        obs.record(ev(EventKind::GovernorShift, "L1", 99, 0, 0));
        assert_eq!(obs.events().len(), 5);
    }

    #[test]
    fn chrome_trace_round_trips_through_validator() {
        let obs = Obs::with_capacity(256);
        obs.record(ev(EventKind::Instr, "ba+*", 1000, 5000, 42));
        obs.record(ev(EventKind::Kernel, "ba+*", 2000, 2000, 42));
        obs.record(ev(EventKind::CacheMiss, "quote\"name", 1500, 0, 42));
        let json = obs.chrome_trace();
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.total_events, 3);
        assert_eq!(summary.spans.len(), 2);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.with_lineage, 3);
        check_span_nesting(&summary).unwrap();
    }

    #[test]
    fn nesting_check_rejects_overlap() {
        let summary = TraceSummary {
            total_events: 2,
            spans: vec![
                TraceSpan {
                    name: "a".into(),
                    cat: "instr".into(),
                    tid: 1,
                    ts_us: 0.0,
                    dur_us: 10.0,
                    lineage_id: 0,
                },
                TraceSpan {
                    name: "b".into(),
                    cat: "instr".into(),
                    tid: 1,
                    ts_us: 5.0,
                    dur_us: 10.0,
                    lineage_id: 0,
                },
            ],
            ..TraceSummary::default()
        };
        assert!(check_span_nesting(&summary).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = parse_json(r#"{"a": [1, -2.5e3, "x\nyA"], "b": null, "c": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str().unwrap(),
            "x\nyA"
        );
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} extra").is_err());
    }

    #[test]
    fn concurrent_writers_and_reader_do_not_tear() {
        let obs = Arc::new(Obs::with_capacity(1 << 10));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let o = Arc::clone(&obs);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    o.record(ev(EventKind::Instr, "op", i, 1, t + 1));
                }
            }));
        }
        for _ in 0..50 {
            for (_, e) in obs.events() {
                assert!(e.lineage_id >= 1 && e.lineage_id <= 4);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let evs = obs.events();
        assert_eq!(evs.len(), 4 * 1024);
        assert_eq!(obs.dropped(), 4 * (5_000 - 1024));
    }
}
