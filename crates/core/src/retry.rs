//! Bounded, jittered exponential-backoff retry for transient I/O.
//!
//! Persistence I/O (WAL appends, value-file writes) can fail transiently —
//! e.g. a momentarily full page cache or a slow disk — and a single such
//! blip should not count against the persist circuit breaker. The
//! [`RetryPolicy`] retries a fallible operation a bounded number of times
//! with exponentially growing, deterministically jittered delays (full
//! jitter over `[d/2, d]`, derived from a splitmix64 hash so runs replay
//! identically); only the post-retry outcome reaches the breaker.

use std::time::Duration;

/// Cap on a single backoff delay so bounded attempts stay bounded in time.
const MAX_DELAY_MS: u64 = 250;

/// A bounded jittered-exponential-backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try exactly once).
    pub attempts: u32,
    /// Base delay before the first retry; doubles per retry.
    pub base_delay_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `attempts` retries starting at `base_delay_ms`.
    pub fn new(attempts: u32, base_delay_ms: u64, seed: u64) -> Self {
        RetryPolicy {
            attempts,
            base_delay_ms,
            seed,
        }
    }

    /// The jittered delay before retry number `retry` (0-based): full jitter
    /// over `[d/2, d]` where `d = base · 2^retry`, capped at [`MAX_DELAY_MS`].
    pub fn delay(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.min(16))
            .min(MAX_DELAY_MS);
        if exp == 0 {
            return Duration::ZERO;
        }
        let h = crate::faults::mix(self.seed ^ (u64::from(retry) + 1).wrapping_mul(0x9E37));
        Duration::from_millis(exp / 2 + h % (exp - exp / 2 + 1))
    }

    /// Runs `op`, retrying on errors for which `retryable` holds, sleeping
    /// the backoff delay between attempts. Returns the final result plus the
    /// number of retries performed (for stats accounting).
    pub fn run<T>(
        &self,
        mut retryable: impl FnMut(&std::io::Error) -> bool,
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> (std::io::Result<T>, u32) {
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) if retries < self.attempts && retryable(&e) => {
                    let delay = self.delay(retries);
                    retries += 1;
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn policy() -> RetryPolicy {
        RetryPolicy::new(3, 0, 42) // zero base delay: tests don't sleep
    }

    #[test]
    fn succeeds_without_retry() {
        let (res, retries) = policy().run(|_| true, || Ok::<_, io::Error>(7));
        assert_eq!(res.ok(), Some(7));
        assert_eq!(retries, 0);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let mut fails = 2;
        let (res, retries) = policy().run(
            |_| true,
            || {
                if fails > 0 {
                    fails -= 1;
                    Err(io::Error::other("transient"))
                } else {
                    Ok(5)
                }
            },
        );
        assert_eq!(res.ok(), Some(5));
        assert_eq!(retries, 2);
    }

    #[test]
    fn gives_up_after_bounded_attempts() {
        let mut calls = 0u32;
        let (res, retries) = policy().run(
            |_| true,
            || {
                calls += 1;
                Err::<(), _>(io::Error::other("always"))
            },
        );
        assert!(res.is_err());
        assert_eq!(retries, 3);
        assert_eq!(calls, 4); // 1 attempt + 3 retries
    }

    #[test]
    fn non_retryable_errors_stop_immediately() {
        let mut calls = 0u32;
        let (res, retries) = policy().run(
            |_| false,
            || {
                calls += 1;
                Err::<(), _>(io::Error::other("fatal"))
            },
        );
        assert!(res.is_err());
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn delays_are_deterministic_jittered_and_capped() {
        let p = RetryPolicy::new(8, 10, 9);
        let q = RetryPolicy::new(8, 10, 9);
        for r in 0..8 {
            let d = p.delay(r);
            assert_eq!(d, q.delay(r), "same seed → same delay");
            let exp = (10u64 << r.min(16)).min(250);
            assert!(d.as_millis() as u64 >= exp / 2);
            assert!(d.as_millis() as u64 <= exp);
        }
        // Different seeds shift the jitter.
        let other = RetryPolicy::new(8, 10, 10);
        assert!((0..8).any(|r| p.delay(r) != other.delay(r)));
    }
}
