//! Property tests for the lineage-log (de)serializer.
//!
//! Two families:
//! 1. **Round-trip**: randomly generated DAGs — plain ops, shared nodes,
//!    literals, and deduplicated chains with placeholder patches — survive
//!    `serialize_lineage` → `deserialize_lineage` structurally intact.
//! 2. **Robustness**: arbitrary byte soup and mutated valid logs never panic
//!    the parser; they either parse or produce a typed
//!    [`lima_core::lineage::serialize::LineageParseError`] with a usable
//!    line number.

use lima_core::lineage::dedup::DedupPatch;
use lima_core::lineage::item::{lineage_eq, LinRef, LineageItem};
use lima_core::lineage::serialize::{deserialize_lineage, serialize_lineage};
use proptest::collection::vec;
use proptest::prelude::*;

const OPCODES: &[&str] = &["+", "*", "ba+*", "tsmm", "rightIndex", "read", "r'"];

/// Blueprint for one DAG node; inputs reference earlier nodes by index
/// (reduced modulo the running node count), so every generated graph is
/// acyclic by construction.
#[derive(Debug, Clone)]
enum NodeSpec {
    Literal(String),
    Op {
        opcode: usize,
        data: Option<String>,
        inputs: Vec<usize>,
    },
}

fn arb_node() -> BoxedStrategy<NodeSpec> {
    let literal = "[a-z0-9:. \\\\\t]{0,12}".prop_map(NodeSpec::Literal);
    let op = || {
        let data = prop_oneof![Just(None), "[ -~]{0,10}".prop_map(Some)];
        (0usize..1_000_000, data, vec(0usize..1_000_000, 0..3)).prop_map(
            |(opcode, data, inputs)| NodeSpec::Op {
                opcode,
                data,
                inputs,
            },
        )
    };
    // Two op arms against one literal arm: DAGs lean towards operations.
    prop_oneof![literal, op(), op()].boxed()
}

/// Materializes specs into a DAG; `seeds` provides the leaves available to
/// the first op nodes (placeholders inside a patch body, nothing otherwise).
fn build_nodes(specs: &[NodeSpec], seeds: Vec<LinRef>) -> Vec<LinRef> {
    let mut nodes: Vec<LinRef> = seeds;
    for spec in specs {
        let node = match spec {
            NodeSpec::Literal(d) => LineageItem::literal(d.clone()),
            NodeSpec::Op {
                opcode,
                data,
                inputs,
            } => {
                let ins: Vec<LinRef> = if nodes.is_empty() {
                    Vec::new()
                } else {
                    inputs
                        .iter()
                        .map(|ix| nodes[ix % nodes.len()].clone())
                        .collect()
                };
                let op = OPCODES[opcode % OPCODES.len()];
                match data {
                    Some(d) => LineageItem::op_with_data(op, d.clone(), ins),
                    None => LineageItem::op(op, ins),
                }
            }
        };
        nodes.push(node);
    }
    nodes
}

/// A random plain DAG: the last node built, wired over whatever subgraph the
/// sampled input indices reach (shared nodes arise naturally).
fn arb_plain_dag() -> impl Strategy<Value = LinRef> {
    vec(arb_node(), 1..20)
        .prop_map(|specs| build_nodes(&specs, Vec::new()).pop().expect("non-empty"))
}

/// A random deduplicated DAG: a patch whose body hangs off placeholder
/// leaves, applied as a chain of dedup items (PageRank-style).
fn arb_dedup_dag() -> impl Strategy<Value = LinRef> {
    (
        1usize..4,              // placeholder slots
        vec(arb_node(), 1..10), // patch body
        0u64..1_000_000,        // path key
        1usize..5,              // dedup chain length
    )
        .prop_map(|(num_inputs, body, path_key, chain)| {
            let seeds: Vec<LinRef> = (0..num_inputs as u32)
                .map(LineageItem::placeholder)
                .collect();
            let nodes = build_nodes(&body, seeds);
            let broot = nodes.last().expect("seeded").clone();
            let patch = DedupPatch::new(
                "loop:prop",
                path_key,
                num_inputs,
                vec![("o".to_string(), broot)],
            );
            let mut cur: LinRef = LineageItem::op_with_data("read", "X", vec![]);
            for _ in 0..chain {
                let ins: Vec<LinRef> = (0..num_inputs).map(|_| cur.clone()).collect();
                cur = LineageItem::dedup(patch.clone(), "o", ins);
            }
            cur
        })
}

proptest! {
    /// Round-trip over plain DAGs: structure, opcodes, data payloads, and
    /// sharing all survive.
    #[test]
    fn round_trip_random_plain_dags(root in arb_plain_dag()) {
        let log = serialize_lineage(&root);
        let back = deserialize_lineage(&log).expect("own output parses");
        prop_assert!(lineage_eq(&root, &back));
        prop_assert_eq!(root.dag_size(), back.dag_size());
        prop_assert_eq!(root.hash_value(), back.hash_value());
        // Serialization is deterministic up to item IDs: a second round trip
        // of the reconstructed DAG is still structurally equal.
        let back2 = deserialize_lineage(&serialize_lineage(&back)).expect("reparses");
        prop_assert!(lineage_eq(&back, &back2));
    }

    /// Round-trip over deduplicated DAGs with placeholder patches: the patch
    /// dictionary, slot bindings, and dedup chain survive.
    #[test]
    fn round_trip_random_dedup_dags(root in arb_dedup_dag()) {
        let log = serialize_lineage(&root);
        let back = deserialize_lineage(&log).expect("own output parses");
        prop_assert!(lineage_eq(&root, &back));
        prop_assert_eq!(root.dag_size(), back.dag_size());
        prop_assert_eq!(root.hash_value(), back.hash_value());
    }

    /// Arbitrary bytes never panic the parser.
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = deserialize_lineage(&text);
    }

    /// Structured garbage (random lines of printable text) never panics.
    #[test]
    fn random_lines_never_panic(lines in vec("[ -~]{0,40}", 0..20)) {
        let _ = deserialize_lineage(&lines.join("\n"));
    }

    /// Mutated valid logs — one byte flipped, inserted, or removed, or the
    /// tail truncated — never panic; when they still parse, the result is a
    /// well-formed DAG.
    #[test]
    fn mutated_valid_logs_never_panic(
        root in arb_plain_dag(),
        mutation in 0usize..4,
        pos in 0usize..1_000_000,
        byte in any::<u8>(),
    ) {
        let log = serialize_lineage(&root);
        let mut bytes = log.into_bytes();
        if !bytes.is_empty() {
            let i = pos % bytes.len();
            match mutation {
                0 => bytes[i] = byte,
                1 => bytes.insert(i, byte),
                2 => { bytes.remove(i); }
                _ => bytes.truncate(i),
            }
            let text = String::from_utf8_lossy(&bytes);
            if let Ok(back) = deserialize_lineage(&text) {
                // A surviving parse must still support the item API.
                let _ = back.dag_size();
                let _ = back.hash_value();
                let _ = serialize_lineage(&back);
            }
        }
    }

    /// Mutated dedup logs (patch dictionary included) never panic.
    #[test]
    fn mutated_dedup_logs_never_panic(
        root in arb_dedup_dag(),
        pos in 0usize..1_000_000,
        byte in any::<u8>(),
    ) {
        let log = serialize_lineage(&root);
        let mut bytes = log.into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(back) = deserialize_lineage(&text) {
            let _ = back.hash_value();
        }
    }
}

#[test]
fn parse_errors_carry_line_numbers() {
    // Error on the third line (unknown input id).
    let log = "(1) L f:1.0\n(2) I + (1) (1)\n(3) I * (9)\n::out (3)";
    let e = deserialize_lineage(log).unwrap_err();
    assert_eq!(e.line, 3);
    assert!(e.to_string().starts_with("line 3:"), "{e}");

    // Whole-log errors report line 0 and no prefix.
    let e = deserialize_lineage("(1) L x").unwrap_err();
    assert_eq!(e.line, 0);
    assert!(e.to_string().contains("::out"), "{e}");
}

#[test]
fn parse_error_excerpts_are_bounded() {
    let long = format!("(1) Z {}\n::out (1)", "a".repeat(10_000));
    let e = deserialize_lineage(&long).unwrap_err();
    assert!(
        e.message.len() < 200,
        "excerpt not bounded: {}",
        e.message.len()
    );
}

#[test]
fn semantic_validation_rejects_inconsistent_dedup_logs() {
    // Placeholder slot out of range for the declared patch inputs.
    let log = "::patch 0 blk 0 1\n(1) P 5\n::root o (1)\n::endpatch\n\
               (2) L x\n(3) D 0 o (2)\n::out (3)";
    let e = deserialize_lineage(log).unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.message.contains("out of range"), "{e}");

    // Dedup item input count disagrees with the patch.
    let log = "::patch 0 blk 0 2\n(1) P 0\n::root o (1)\n::endpatch\n\
               (2) L x\n(3) D 0 o (2)\n::out (3)";
    let e = deserialize_lineage(log).unwrap_err();
    assert!(e.message.contains("expects 2"), "{e}");

    // Unknown output name.
    let log = "::patch 0 blk 0 1\n(1) P 0\n::root o (1)\n::endpatch\n\
               (2) L x\n(3) D 0 nope (2)\n::out (3)";
    let e = deserialize_lineage(log).unwrap_err();
    assert!(e.message.contains("unknown patch output"), "{e}");

    // Unterminated patch.
    let e = deserialize_lineage("::patch 0 blk 0 1\n(1) P 0").unwrap_err();
    assert!(e.message.contains("unterminated"), "{e}");
}
