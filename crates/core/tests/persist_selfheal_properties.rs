//! Property tests for the self-healing persistence layer.
//!
//! Two families:
//! 1. **Compaction equivalence**: for a random WAL history (puts, tombstones,
//!    optionally a torn tail), compacting and then recovering yields exactly
//!    the same live set as replaying the original uncompacted WAL.
//! 2. **Scrub precision**: over a store whose value files are randomly
//!    bit-flipped, a full scrub pass (with repair disabled) quarantines
//!    exactly the flipped entries — no false positives, no survivors.

use lima_core::cache::persist::{PersistOptions, PersistentCacheStore};
use lima_core::lineage::item::{lineage_eq, LinRef, LineageItem};
use lima_matrix::Value;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per proptest case (cases run concurrently).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lima-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A unique, replay-independent lineage root per (index, value) pair.
fn root_for(index: usize, v: f64) -> LinRef {
    let a = LineageItem::literal(format!("f:{v}"));
    let b = LineageItem::literal(format!("f:{index}"));
    LineageItem::op("+", vec![a, b])
}

/// Recovered live set keyed by `compute_ns` — unique per entry in these
/// tests (the put index), so it identifies entries across restarts even
/// though lineage intern IDs differ per deserialization.
fn open_plain(dir: &Path) -> (PersistentCacheStore, BTreeMap<u64, (LinRef, f64)>) {
    let (store, entries, _report) = PersistentCacheStore::open_with(
        dir,
        PersistOptions {
            compact_factor: 0, // only explicit compact() in these tests
            ..PersistOptions::default()
        },
    )
    .expect("store must open");
    let live: BTreeMap<u64, (LinRef, f64)> = entries
        .iter()
        .map(|e| {
            (
                e.compute_ns,
                (e.root.clone(), e.value.as_f64().expect("scalar entry")),
            )
        })
        .collect();
    (store, live)
}

/// Structural equality of two recovered live sets: same keys, equal values,
/// and lineage that matches node-for-node (intern IDs are ignored —
/// [`lineage_eq`] compares structure).
fn assert_same_live(a: &BTreeMap<u64, (LinRef, f64)>, b: &BTreeMap<u64, (LinRef, f64)>) {
    let keys_a: Vec<&u64> = a.keys().collect();
    let keys_b: Vec<&u64> = b.keys().collect();
    prop_assert_eq!(keys_a, keys_b);
    for (key, (root_a, value_a)) in a {
        let (root_b, value_b) = &b[key];
        prop_assert_eq!(value_a, value_b, "value diverged for entry {}", key);
        prop_assert!(
            lineage_eq(root_a, root_b),
            "lineage diverged for entry {}",
            key
        );
    }
}

/// Recursive copy of a persist directory (manifest generations + values +
/// quarantine).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir");
    for entry in std::fs::read_dir(src).expect("read_dir").flatten() {
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir(&from, &to);
        } else {
            std::fs::copy(&from, &to).expect("copy");
        }
    }
}

/// Path of the active (highest-generation) manifest under `dir`.
fn active_manifest(dir: &Path) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).expect("read_dir").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(g) = name
            .strip_prefix("manifest.")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(bg, _)| g > *bg) {
                best = Some((g, entry.path()));
            }
        }
    }
    best.map(|(_, p)| p)
        .unwrap_or_else(|| dir.join("manifest.wal"))
}

/// One step of a random WAL history: persist a fresh entry, or tombstone a
/// previously persisted one (picked by index modulo the puts so far).
#[derive(Debug, Clone, Copy)]
enum HistoryOp {
    Put(u32),
    Tomb(usize),
}

fn arb_history() -> impl Strategy<Value = Vec<HistoryOp>> {
    let put = || (0u32..1000).prop_map(HistoryOp::Put);
    let tomb = (0usize..64).prop_map(HistoryOp::Tomb);
    // Two put arms against one tombstone arm: histories lean towards puts.
    vec(prop_oneof![put(), put(), tomb], 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compacting a random WAL history is observationally identical to
    /// replaying the original: recovery over the compacted directory yields
    /// exactly the live set recovery finds in the uncompacted one.
    #[test]
    fn compaction_is_equivalent_to_replaying_the_original_wal(
        history in arb_history(),
        torn in any::<bool>(),
    ) {
        let dir = scratch("compact");
        {
            let (store, _) = open_plain(&dir);
            let mut ids: Vec<u64> = Vec::new();
            for (i, op) in history.iter().enumerate() {
                match op {
                    HistoryOp::Put(raw) => {
                        let v = f64::from(*raw) / 8.0;
                        let out = store
                            .persist(&root_for(i, v), &Value::f64(v), i as u64)
                            .expect("persist")
                            .expect("scalars are persistable");
                        ids.push(out.id);
                    }
                    HistoryOp::Tomb(pick) if !ids.is_empty() => {
                        store.tombstone(ids[pick % ids.len()]).expect("tombstone");
                    }
                    HistoryOp::Tomb(_) => {}
                }
            }
        }
        if torn {
            // A torn tail must not change the equivalence: both sides
            // truncate it at recovery.
            use std::io::Write as _;
            let mut wal = std::fs::OpenOptions::new()
                .append(true)
                .open(active_manifest(&dir))
                .expect("open wal");
            wal.write_all(b"torn-frame-prefix").expect("append");
        }

        let compacted = scratch("compact-b");
        copy_dir(&dir, &compacted);

        let (_store, original) = open_plain(&dir);
        {
            let (store, _) = open_plain(&compacted);
            store.compact().expect("compact");
        }
        let (_store, after) = open_plain(&compacted);

        assert_same_live(&original, &after);

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&compacted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With repair disabled, a full scrub pass over randomly bit-flipped
    /// value files quarantines exactly the flipped entries: every corrupted
    /// file is caught and tombstoned, every intact entry survives recovery.
    #[test]
    fn scrub_quarantines_exactly_the_flipped_entries(
        values in vec(0u32..1000, 2..12),
        flips in vec(any::<bool>(), 12),
        byte_pick in any::<usize>(),
        bit in 0u8..8,
    ) {
        let dir = scratch("scrub");
        let mut by_id: BTreeMap<u64, (u64, LinRef)> = BTreeMap::new();
        let (store, _) = open_plain(&dir);
        for (i, raw) in values.iter().enumerate() {
            let v = f64::from(*raw) / 8.0;
            let root = root_for(i, v);
            let out = store
                .persist(&root, &Value::f64(v), i as u64)
                .expect("persist")
                .expect("scalars are persistable");
            by_id.insert(out.id, (i as u64, root));
        }

        let mut flipped: BTreeSet<u64> = BTreeSet::new();
        for (i, (&id, _)) in by_id.iter().enumerate() {
            if !flips[i % flips.len()] {
                continue;
            }
            let path = dir.join("values").join(format!("v{id}.val"));
            let mut raw = std::fs::read(&path).expect("read value file");
            prop_assert!(!raw.is_empty());
            let at = byte_pick % raw.len();
            raw[at] ^= 1 << bit;
            std::fs::write(&path, &raw).expect("rewrite value file");
            flipped.insert(id);
        }

        // One full pass: unbounded chunks until the cursor wraps.
        let mut total = lima_core::ScrubOutcome::default();
        loop {
            let out = store.scrub_chunk(0).expect("scrub");
            total.entries += out.entries;
            total.corrupt += out.corrupt;
            total.repaired += out.repaired;
            total.quarantined += out.quarantined;
            total.quarantined_ids.extend(out.quarantined_ids.iter().copied());
            if out.wrapped {
                break;
            }
        }

        let quarantined: BTreeSet<u64> = total.quarantined_ids.iter().copied().collect();
        prop_assert_eq!(&quarantined, &flipped);
        prop_assert_eq!(total.corrupt, flipped.len() as u64);
        prop_assert_eq!(total.quarantined, flipped.len() as u64);
        prop_assert_eq!(total.repaired, 0);
        for id in &flipped {
            prop_assert!(dir.join("quarantine").join(format!("v{id}.val")).exists());
        }

        // Recovery over the scrubbed directory serves exactly the intact set.
        drop(store);
        let (_store, live) = open_plain(&dir);
        let expected: BTreeMap<u64, &LinRef> = by_id
            .iter()
            .filter(|(id, _)| !flipped.contains(id))
            .map(|(_, (i, root))| (*i, root))
            .collect();
        let got: Vec<&u64> = live.keys().collect();
        prop_assert_eq!(got, expected.keys().collect::<Vec<_>>());
        for (i, (recovered_root, _)) in &live {
            prop_assert!(lineage_eq(recovered_root, expected[i]));
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
