//! Golden tests of the lineage-log text format (paper §3.1): lineage logs
//! are exchanged between people and machines (Example 3), so the on-disk
//! format must stay stable. These tests pin the exact grammar.

use lima_core::lineage::dedup::DedupPatch;
use lima_core::lineage::item::{LinRef, LineageItem};
use lima_core::lineage::serialize::{deserialize_lineage, serialize_lineage};

/// Rewrites session-specific IDs into position-stable ones so golden strings
/// do not depend on the global item counter.
fn canonicalize(log: &str) -> String {
    let mut mapping = std::collections::HashMap::new();
    let mut out = String::new();
    for line in log.lines() {
        let mut toks = Vec::new();
        for tok in line.split(' ') {
            if tok.starts_with('(') && tok.ends_with(')') {
                if let Ok(id) = tok[1..tok.len() - 1].parse::<u64>() {
                    let next = mapping.len() + 1;
                    let canon = *mapping.entry(id).or_insert(next);
                    toks.push(format!("({canon})"));
                    continue;
                }
            }
            toks.push(tok.to_string());
        }
        out.push_str(&toks.join(" "));
        out.push('\n');
    }
    out
}

fn leaf(name: &str) -> LinRef {
    LineageItem::op_with_data("read", name, vec![])
}

#[test]
fn golden_plain_trace() {
    let x = leaf("data/X.csv");
    let lit = LineageItem::literal("f:0.5");
    let ts = LineageItem::op_with_data("tsmm", "LEFT", vec![x.clone()]);
    let root = LineageItem::op("*", vec![ts, lit]);
    // Topological emission is depth-first with the *last* input expanded
    // first (deterministic), hence the literal precedes the read chain.
    let log = canonicalize(&serialize_lineage(&root));
    assert_eq!(
        log,
        "(1) L f:0.5\n\
         (2) I read ;data/X.csv\n\
         (3) I tsmm (2) ;LEFT\n\
         (4) I * (3) (1)\n\
         ::out (4)\n"
    );
}

#[test]
fn golden_escaped_payloads() {
    let x = LineageItem::op_with_data("read", "dir with spaces/f.csv", vec![]);
    let log = canonicalize(&serialize_lineage(&x));
    assert_eq!(log, "(1) I read ;dir\\swith\\sspaces/f.csv\n::out (1)\n");
    let lit = LineageItem::literal("s:a\\b\nc");
    let log = canonicalize(&serialize_lineage(&lit));
    assert_eq!(log, "(1) L s:a\\\\b\\nc\n::out (1)\n");
}

#[test]
fn golden_dedup_trace() {
    let p0 = LineageItem::placeholder(0);
    let p1 = LineageItem::placeholder(1);
    let body = LineageItem::op("ba+*", vec![p0, p1]);
    let patch = DedupPatch::new("loop:7", 2, 2, vec![("p".into(), body)]);
    let g = leaf("G");
    let start = leaf("p0");
    let d = LineageItem::dedup(patch, "p", vec![g, start]);
    let log = canonicalize(&serialize_lineage(&d));
    assert_eq!(
        log,
        "::patch 0 loop:7 2 2\n\
         (1) P 1\n\
         (2) P 0\n\
         (3) I ba+* (2) (1)\n\
         ::root p (3)\n\
         ::endpatch\n\
         (4) I read ;p0\n\
         (5) I read ;G\n\
         (6) D 0 p (5) (4)\n\
         ::out (6)\n"
    );
}

#[test]
fn golden_logs_parse_back() {
    // A hand-written log in the documented grammar must load. Data payloads
    // are single tokens: spaces inside them are escaped as `\s`.
    let log = "\
        (10) I read ;X.csv\n\
        (11) L i:42\n\
        (12) I rand (11) ;100\\s10\\suniform\\s0\\s1\\s1\n\
        (13) I ba+* (10) (12)\n\
        ::out (13)\n";
    let root = deserialize_lineage(log).expect("documented grammar parses");
    assert_eq!(root.opcode(), "ba+*");
    assert_eq!(root.inputs().len(), 2);
    assert_eq!(root.inputs()[1].data(), Some("100 10 uniform 0 1 1"));
}

#[test]
fn format_is_line_oriented_and_reorderable_ids() {
    // IDs need not be dense or ordered — only defined-before-use.
    let log = "\
        (1000) L f:1\n\
        (5) I + (1000) (1000)\n\
        ::out (5)\n";
    let root = deserialize_lineage(log).expect("sparse ids parse");
    assert_eq!(root.dag_size(), 2);
}
