//! Concurrency stress tests for the lineage cache: the placeholder protocol
//! (paper §4.1, task-parallel loops) must serialize redundant computation
//! without deadlocks, lost wakeups, or duplicate work, even under heavy
//! contention and eviction pressure.

use lima_core::cache::Probe;
use lima_core::lineage::item::{LinRef, LineageItem};
use lima_core::{LimaConfig, LimaStats, LineageCache};
use lima_matrix::{DenseMatrix, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn item(tag: &str) -> LinRef {
    LineageItem::op("ba+*", vec![LineageItem::op_with_data("read", tag, vec![])])
}

#[test]
fn contended_key_computes_exactly_once() {
    let cache = LineageCache::new(LimaConfig::lima());
    let computed = Arc::new(AtomicUsize::new(0));
    let threads = 8;
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            s.spawn(move |_| {
                for round in 0..50 {
                    let key = item(&format!("k{}", round % 5));
                    match cache.acquire(&key).expect("cacheable") {
                        Probe::Hit(v) => {
                            assert_eq!(v.as_matrix().unwrap().shape(), (8, 8));
                        }
                        Probe::Reserved(r) => {
                            computed.fetch_add(1, Ordering::SeqCst);
                            // Simulate compute time to widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            r.fulfill(&Value::matrix(DenseMatrix::filled(8, 8, 1.0)), 1_000);
                        }
                    }
                }
            });
        }
    })
    .expect("no worker panicked");
    // 5 distinct keys → exactly 5 computations across 400 probes.
    assert_eq!(computed.load(Ordering::SeqCst), 5);
    assert_eq!(LimaStats::get(&cache.stats().puts), 5);
    assert_eq!(LimaStats::get(&cache.stats().probes), (threads * 50) as u64);
}

#[test]
fn aborts_under_contention_do_not_deadlock() {
    let cache = LineageCache::new(LimaConfig::lima());
    let successes = Arc::new(AtomicUsize::new(0));
    crossbeam::thread::scope(|s| {
        for t in 0..8 {
            let cache = Arc::clone(&cache);
            let successes = Arc::clone(&successes);
            s.spawn(move |_| {
                for round in 0..40 {
                    let key = item(&format!("a{}", round % 3));
                    match cache.acquire(&key).expect("cacheable") {
                        Probe::Hit(_) => {
                            successes.fetch_add(1, Ordering::SeqCst);
                        }
                        Probe::Reserved(r) => {
                            // Odd threads fail their computation; even threads
                            // succeed. Waiters must always make progress.
                            if t % 2 == 1 {
                                r.abort();
                            } else {
                                r.fulfill(&Value::matrix(DenseMatrix::zeros(4, 4)), 10);
                                successes.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("no deadlock");
    assert!(successes.load(Ordering::SeqCst) > 0);
}

#[test]
fn eviction_pressure_with_concurrent_probes_is_safe() {
    let cache = LineageCache::new(LimaConfig {
        budget_bytes: 200_000, // a handful of 50x50 matrices
        spill: false,
        eviction_watermark: 0.9,
        ..LimaConfig::lima()
    });
    crossbeam::thread::scope(|s| {
        for t in 0..6 {
            let cache = Arc::clone(&cache);
            s.spawn(move |_| {
                for round in 0..100 {
                    let key = item(&format!("e{}-{}", t, round % 20));
                    match cache.acquire(&key).expect("cacheable") {
                        Probe::Hit(v) => {
                            assert_eq!(v.as_matrix().unwrap().get(0, 0), 2.0);
                        }
                        Probe::Reserved(r) => {
                            r.fulfill(&Value::matrix(DenseMatrix::filled(50, 50, 2.0)), 5_000)
                        }
                    }
                }
            });
        }
    })
    .expect("no worker panicked");
    assert!(cache.resident_bytes() <= 200_000);
    assert!(LimaStats::get(&cache.stats().evictions) > 0);
}

#[test]
fn peeks_race_with_puts_without_poisoning() {
    let cache = LineageCache::new(LimaConfig::lima());
    let stop = Arc::new(AtomicUsize::new(0));
    crossbeam::thread::scope(|s| {
        // Writer thread fills keys; reader threads peek continuously.
        {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            s.spawn(move |_| {
                for i in 0..200 {
                    let key = item(&format!("p{i}"));
                    if let Some(Probe::Reserved(r)) = cache.acquire(&key) {
                        r.fulfill(&Value::matrix(DenseMatrix::zeros(3, 3)), 100);
                    }
                }
                stop.store(1, Ordering::SeqCst);
            });
        }
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut i = 0usize;
                while stop.load(Ordering::SeqCst) == 0 {
                    let key = item(&format!("p{}", (i * 7 + t) % 200));
                    let _ = cache.peek(&key);
                    i += 1;
                }
            });
        }
    })
    .expect("no worker panicked");
    assert_eq!(cache.live_entries(), 200);
}
