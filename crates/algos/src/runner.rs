//! Helpers for compiling and running scripts against datasets and
//! configurations — the entry point used by examples, tests, and the
//! benchmark harness.

use lima_core::{LimaConfig, LineageCache};
use lima_lang::{compile_script, CompileError};
use lima_matrix::Value;
use lima_runtime::{execute_program, ExecutionContext, RuntimeError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a script run.
pub struct RunResult {
    /// Final execution context (symbol table, lineage, stats, stdout).
    pub ctx: ExecutionContext,
    /// Wall-clock execution time (excluding compilation).
    pub elapsed: Duration,
}

impl RunResult {
    /// Convenience accessor for a result variable.
    pub fn value(&self, var: &str) -> &Value {
        &self.ctx.symtab[var]
    }
}

/// Errors from [`run_script`].
#[derive(Debug)]
pub enum RunError {
    Compile(CompileError),
    Runtime(RuntimeError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile error: {e}"),
            RunError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Compiles and executes a script with the given configuration and input
/// datasets (registered under their `read` paths / variable names).
pub fn run_script(
    src: &str,
    config: &LimaConfig,
    inputs: &[(&str, Value)],
) -> Result<RunResult, RunError> {
    run_script_with_cache(src, config, inputs, None)
}

/// Like [`run_script`], but reusing an existing cache across runs — the
/// paper's process-wide cache sharing across script invocations (§4.4).
pub fn run_script_with_cache(
    src: &str,
    config: &LimaConfig,
    inputs: &[(&str, Value)],
    cache: Option<Arc<LineageCache>>,
) -> Result<RunResult, RunError> {
    let program = compile_script(src, config).map_err(RunError::Compile)?;
    let mut ctx = match cache {
        Some(c) => ExecutionContext::with_cache(config.clone(), Some(c)),
        None => ExecutionContext::new(config.clone()),
    };
    for (name, value) in inputs {
        // Register as both a dataset (for `read`) and a live variable.
        ctx.data.register(*name, value.clone());
        ctx.set(*name, value.clone());
    }
    let t0 = Instant::now();
    execute_program(&program, &mut ctx).map_err(RunError::Runtime)?;
    let elapsed = t0.elapsed();
    Ok(RunResult { ctx, elapsed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_matrix::DenseMatrix;

    #[test]
    fn run_script_executes_and_times() {
        let r = run_script(
            "Y = X + 1; s = sum(Y);",
            &LimaConfig::lima(),
            &[("X", Value::matrix(DenseMatrix::filled(2, 2, 1.0)))],
        )
        .unwrap();
        assert_eq!(r.value("s").as_f64().unwrap(), 8.0);
        assert!(r.elapsed.as_nanos() > 0);
    }

    #[test]
    fn shared_cache_reuses_across_invocations() {
        let cache = LineageCache::new(LimaConfig::lima());
        let x = Value::matrix(DenseMatrix::from_fn(30, 10, |i, j| (i * j) as f64 * 0.01));
        let src = "G = t(X) %*% X; s = sum(G);";
        let r1 = run_script_with_cache(
            src,
            &LimaConfig::lima(),
            &[("X", x.clone())],
            Some(cache.clone()),
        )
        .unwrap();
        let r2 = run_script_with_cache(src, &LimaConfig::lima(), &[("X", x)], Some(cache.clone()))
            .unwrap();
        assert_eq!(
            r1.value("s").as_f64().unwrap(),
            r2.value("s").as_f64().unwrap()
        );
        assert!(lima_core::LimaStats::get(&cache.stats().full_hits) >= 1);
    }

    #[test]
    fn compile_and_runtime_errors_are_distinguished() {
        assert!(matches!(
            run_script("x = nonsense(", &LimaConfig::base(), &[]),
            Err(RunError::Compile(_))
        ));
        assert!(matches!(
            run_script("y = read('missing');", &LimaConfig::base(), &[]),
            Err(RunError::Runtime(_))
        ));
    }
}
