//! DML-subset builtin function scripts, mirroring SystemDS' script-based
//! builtins from the paper (Example 1 and §5). Compose them into a program
//! with [`with_builtins`].

/// `scaleAndShift`: column-wise standardization (μ=0, σ=1), paper Example 1.
pub const SCALE_AND_SHIFT: &str = "
scaleAndShift = function(X) return (Y) {
  mu = colMeans(X);
  sigma = sqrt(colVars(X));
  sigma = sigma + (sigma == 0);
  Y = (X - mu) / sigma;
}
";

/// `lmDS`: closed-form linear regression (normal equations), O(m·n² + n³).
pub const LM_DS: &str = "
lmDS = function(X, y, icpt = 0, reg = 1e-7) return (B) {
  if (icpt > 0) {
    X = cbind(X, matrix(1, nrow(X), 1));
  }
  A = t(X) %*% X + diag(matrix(reg, ncol(X), 1));
  b = t(X) %*% y;
  B = solve(A, b);
}
";

/// `lmCG`: conjugate-gradient linear regression, O(m·n) per iteration.
pub const LM_CG: &str = "
lmCG = function(X, y, icpt = 0, reg = 1e-7, tol = 1e-7, maxi = 20) return (B) {
  if (icpt > 0) {
    X = cbind(X, matrix(1, nrow(X), 1));
  }
  r = 0 - (t(X) %*% y);
  B = matrix(0, ncol(X), 1);
  norm_r2 = sum(r * r);
  norm_r2_tgt = norm_r2 * tol * tol;
  p = 0 - r;
  i = 0;
  while (i < maxi & norm_r2 > norm_r2_tgt) {
    q = t(X) %*% (X %*% p) + reg * p;
    alpha = norm_r2 / sum(p * q);
    B = B + alpha * p;
    r = r + alpha * q;
    old_norm_r2 = norm_r2;
    norm_r2 = sum(r * r);
    p = (norm_r2 / old_norm_r2) * p - r;
    i = i + 1;
  }
}
";

/// `lm`: dispatches to `lmDS` (few features) or `lmCG` (many features),
/// paper Example 1.
pub const LM: &str = "
lm = function(X, y, icpt = 0, reg = 1e-7, tol = 1e-7, maxi = 20) return (B) {
  if (ncol(X) <= 1024) {
    B = lmDS(X, y, icpt, reg);
  } else {
    B = lmCG(X, y, icpt, reg, tol, maxi);
  }
}
";

/// `lmPredict`: predictions honouring the intercept encoding.
pub const LM_PREDICT: &str = "
lmPredict = function(X, B, icpt = 0) return (yhat) {
  if (icpt > 0) {
    X = cbind(X, matrix(1, nrow(X), 1));
  }
  yhat = X %*% B;
}
";

/// `l2norm`: squared-error loss used by the paper's grid search.
pub const L2NORM: &str = "
l2norm = function(X, y, B, icpt = 0) return (loss) {
  yhat = lmPredict(X, B, icpt);
  loss = sum((yhat - y)^2);
}
";

/// `l2svm`: L2-regularized binary SVM (labels −1/+1), Newton line search as
/// in SystemDS.
pub const L2SVM: &str = "
l2svm = function(X, Y, icpt = 0, reg = 1.0, tol = 0.001, maxiter = 20) return (w) {
  if (icpt == 1) {
    X = cbind(X, matrix(1, nrow(X), 1));
  }
  w = matrix(0, ncol(X), 1);
  g_old = t(X) %*% Y;
  s = g_old;
  Xw = matrix(0, nrow(X), 1);
  iter = 0;
  continue = 1;
  while (continue == 1 & iter < maxiter) {
    step_sz = 0;
    Xd = X %*% s;
    wd = reg * sum(w * s);
    dd = reg * sum(s * s);
    continue1 = 1;
    inner = 0;
    while (continue1 == 1 & inner < 32) {
      tmp_Xw = Xw + step_sz * Xd;
      out = 1 - Y * tmp_Xw;
      sv = out > 0;
      out = out * sv;
      g = wd + step_sz * dd - sum(out * Y * Xd);
      h = dd + sum(Xd * sv * Xd);
      step_sz = step_sz - g / h;
      if (g * g / h < 0.0000000001) {
        continue1 = 0;
      }
      inner = inner + 1;
    }
    w = w + step_sz * s;
    Xw = Xw + step_sz * Xd;
    out = 1 - Y * Xw;
    sv = out > 0;
    out = sv * out;
    obj = 0.5 * sum(out * out) + reg / 2 * sum(w * w);
    g_new = t(X) %*% (out * Y) - reg * w;
    tmp = sum(s * g_old);
    if (step_sz * tmp < tol * obj) {
      continue = 0;
    }
    be = sum(g_new * g_new) / sum(g_old * g_old);
    s = be * s + g_new;
    g_old = g_new;
    iter = iter + 1;
  }
}
";

/// `msvm`: one-vs-all multi-class SVM over `l2svm` with task parallelism
/// (paper §5.3, ENS).
pub const MSVM: &str = "
msvm = function(X, Y, num_classes, icpt = 0, reg = 1.0, tol = 0.001, maxiter = 20) return (W) {
  W = matrix(0, ncol(X) + icpt, num_classes);
  parfor (class in 1:num_classes) {
    Y_local = 2 * (Y == class) - 1;
    w = l2svm(X, Y_local, icpt, reg, tol, maxiter);
    W[, class] = w;
  }
}
";

/// `multiLogReg`: softmax regression by gradient descent (simplified from
/// SystemDS' trust-region solver; iterative with limited internal reuse,
/// matching its role in the evaluation).
pub const MULTILOGREG: &str = "
multiLogReg = function(X, Y, num_classes, icpt = 0, reg = 0.001, maxi = 20) return (B) {
  if (icpt == 1) {
    X = cbind(X, matrix(1, nrow(X), 1));
  }
  N = nrow(X);
  D = ncol(X);
  B = matrix(0, D, num_classes);
  Y_onehot = table(seq(1, N), Y);
  step = 1.0;
  i = 0;
  while (i < maxi) {
    scores = X %*% B;
    m = rowMaxs(scores);
    escores = exp(scores - m);
    P = escores / rowSums(escores);
    G = t(X) %*% (P - Y_onehot) / N + reg * B;
    B = B - step * G;
    i = i + 1;
  }
}
";

/// `msvmPredict` / class scores for ensembles.
pub const MSVM_PREDICT: &str = "
msvmPredict = function(X, W, icpt = 0) return (scores) {
  if (icpt == 1) {
    X = cbind(X, matrix(1, nrow(X), 1));
  }
  scores = X %*% W;
}
";

/// `pca`: principal component analysis (paper Fig 5): standardize,
/// covariance, eigen decomposition, descending reorder, project K columns.
pub const PCA: &str = "
pca = function(A, K) return (R, evalsTop, evects) {
  N = nrow(A);
  D = ncol(A);
  A = scaleAndShift(A);
  mu = colSums(A) / N;
  C = (t(A) %*% A) / (N - 1) - (N / (N - 1)) * (t(mu) %*% mu);
  [evals, evects0] = eigen(C);
  dscIdx = order(evals, TRUE);
  evalsSorted = evals[dscIdx, ];
  evects = evects0[, dscIdx];
  R = A %*% evects[, 1:K];
  evalsTop = evalsSorted[1:K, ];
}
";

/// `naiveBayes`: multinomial naive Bayes with Laplace smoothing (paper §5.5,
/// PCANB). Expects non-negative features and labels 1..C.
pub const NAIVE_BAYES: &str = "
naiveBayes = function(X, Y, num_classes, laplace = 1.0) return (prior, condProb) {
  N = nrow(X);
  D = ncol(X);
  Y_onehot = table(seq(1, N), Y);
  classSums = t(Y_onehot) %*% X;
  condProb = (classSums + laplace) / (rowSums(classSums) + D * laplace);
  prior = (t(Y_onehot) %*% matrix(1, N, 1)) / N;
}
";

/// `nbPredict`: log-likelihood class scores for naive Bayes.
pub const NB_PREDICT: &str = "
nbPredict = function(X, prior, condProb) return (Y) {
  scores = X %*% t(log(condProb)) + t(log(prior));
  Y = rowIndexMax(scores);
}
";

/// `pageRank`: the paper's deduplication example (Example 4).
pub const PAGERANK: &str = "
pageRank = function(G, p, e, u, alpha, maxi) return (p) {
  for (i in 1:maxi) {
    t1 = G %*% p;
    t2 = e %*% (u %*% p);
    p = alpha * t1 + (1 - alpha) * t2;
  }
}
";

/// All builtin scripts, in dependency order.
pub const ALL_BUILTINS: &[&str] = &[
    SCALE_AND_SHIFT,
    LM_DS,
    LM_CG,
    LM,
    LM_PREDICT,
    L2NORM,
    L2SVM,
    MSVM,
    MSVM_PREDICT,
    MULTILOGREG,
    PCA,
    NAIVE_BAYES,
    NB_PREDICT,
    PAGERANK,
];

/// Prepends every builtin function definition to a script body.
pub fn with_builtins(body: &str) -> String {
    let mut out = String::new();
    for b in ALL_BUILTINS {
        out.push_str(b);
        out.push('\n');
    }
    out.push_str(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_core::LimaConfig;
    use lima_lang::compile_script;

    #[test]
    fn all_builtins_compile() {
        let program = compile_script(&with_builtins("x = 1;"), &LimaConfig::lima())
            .expect("builtins compile");
        for f in [
            "scaleAndShift",
            "lmDS",
            "lmCG",
            "lm",
            "lmPredict",
            "l2norm",
            "l2svm",
            "msvm",
            "msvmPredict",
            "multiLogReg",
            "pca",
            "naiveBayes",
            "nbPredict",
            "pageRank",
        ] {
            assert!(program.functions.contains_key(f), "missing {f}");
        }
    }

    #[test]
    fn determinism_flags_are_plausible() {
        let program = compile_script(&with_builtins("x = 1;"), &LimaConfig::lima()).unwrap();
        // All of these builtins are deterministic (no system-seeded rand,
        // no prints), so they qualify for multi-level reuse.
        assert!(program.functions["lmDS"].deterministic);
        assert!(program.functions["pca"].deterministic);
        assert!(program.functions["scaleAndShift"].deterministic);
        // scaleAndShift has no loops/calls: a function-dedup candidate.
        assert!(program.functions["scaleAndShift"].dedup_ok);
        assert!(!program.functions["lm"].dedup_ok); // contains calls
    }
}
