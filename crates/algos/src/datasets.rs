//! Synthetic dataset generators.
//!
//! The paper evaluates on synthetic matrices plus two UCI datasets (Table 3:
//! APS — Scania trucks failure classification, 60K×170 → 70K×170 after mean
//! imputation and minority oversampling; KDD98 — donation regression,
//! 95,412×469 → ×7,909 after recode/bin/one-hot). Those datasets are not
//! redistributable here, so `aps_like`/`kdd98_like` generate synthetic data
//! with the same shapes and the same pre-processing *code paths* (missing
//! values, class skew, categorical and numeric columns). The paper itself
//! observes that lineage reuse is "largely invariant to data skew" (§5.4),
//! so these stand-ins preserve the relative speedups Fig 9(f) reports.

use lima_matrix::frame::{bin_column, impute_mean, one_hot, oversample_minority, recode_column};
use lima_matrix::ops::{cbind, matmult, slice};
use lima_matrix::rand_gen::{rand_matrix, RandDist};
use lima_matrix::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense regression data: `X ~ U[0,1)`, `y = X·w + ε`.
pub fn synthetic_regression(n: usize, d: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
    let x = rand_matrix(n, d, RandDist::Uniform { min: 0.0, max: 1.0 }, 1.0, seed)
        .expect("valid params");
    let w = rand_matrix(
        d,
        1,
        RandDist::Normal {
            mean: 0.0,
            std: 1.0,
        },
        1.0,
        seed ^ 0xabc,
    )
    .expect("valid params");
    let noise = rand_matrix(
        n,
        1,
        RandDist::Normal {
            mean: 0.0,
            std: 0.1,
        },
        1.0,
        seed ^ 0xdef,
    )
    .expect("valid params");
    let mut y = matmult(&x, &w).expect("shapes agree");
    for (yi, ni) in y.data_mut().iter_mut().zip(noise.data()) {
        *yi += ni;
    }
    (x, y)
}

/// Dense classification data with labels `1..=classes` (cluster means per
/// class so the problem is learnable).
pub fn synthetic_classification(
    n: usize,
    d: usize,
    classes: usize,
    seed: u64,
) -> (DenseMatrix, DenseMatrix) {
    assert!(classes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let means = rand_matrix(
        classes,
        d,
        RandDist::Uniform {
            min: -1.0,
            max: 1.0,
        },
        1.0,
        seed ^ 0x77,
    )
    .expect("valid params");
    let mut x = DenseMatrix::zeros(n, d);
    let mut y = DenseMatrix::zeros(n, 1);
    for i in 0..n {
        let c = rng.gen_range(0..classes);
        y.set(i, 0, (c + 1) as f64);
        for j in 0..d {
            let noise: f64 = rng.gen::<f64>() - 0.5;
            x.set(i, j, means.get(c, j) + 0.5 * noise);
        }
    }
    (x, y)
}

/// Non-negative classification data (counts-like), for naive Bayes.
pub fn synthetic_counts(
    n: usize,
    d: usize,
    classes: usize,
    seed: u64,
) -> (DenseMatrix, DenseMatrix) {
    let (x, y) = synthetic_classification(n, d, classes, seed);
    let xn = DenseMatrix::from_fn(n, d, |i, j| (x.get(i, j) + 2.0).max(0.0));
    (xn, y)
}

/// Binary labels in −1/+1 for L2SVM.
pub fn to_svm_labels(y: &DenseMatrix, positive_class: f64) -> DenseMatrix {
    DenseMatrix::from_fn(y.rows(), 1, |i, _| {
        if y.get(i, 0) == positive_class {
            1.0
        } else {
            -1.0
        }
    })
}

/// A sparse row-stochastic-ish link matrix for PageRank.
pub fn synthetic_graph(n: usize, out_degree: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DenseMatrix::zeros(n, n);
    for j in 0..n {
        for _ in 0..out_degree {
            let i = rng.gen_range(0..n);
            g.set(i, j, 1.0 / out_degree as f64);
        }
    }
    g
}

/// APS-like raw data (paper Table 3): `n × d` numeric sensor matrix with a
/// `missing` fraction of NaN cells and a minority failure class of
/// `minority` fraction. Returns `(X_raw, y∈{1,2})` with 2 the minority.
pub fn aps_like_raw(
    n: usize,
    d: usize,
    missing: f64,
    minority: f64,
    seed: u64,
) -> (DenseMatrix, DenseMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = rand_matrix(
        n,
        d,
        RandDist::Normal {
            mean: 0.0,
            std: 1.0,
        },
        1.0,
        seed ^ 0x5,
    )
    .expect("valid params");
    let mut y = DenseMatrix::zeros(n, 1);
    for i in 0..n {
        let is_minority = rng.gen::<f64>() < minority;
        y.set(i, 0, if is_minority { 2.0 } else { 1.0 });
        if is_minority {
            // Shift minority rows so the classes are separable-ish.
            for j in 0..d.min(10) {
                x.set(i, j, x.get(i, j) + 2.0);
            }
        }
    }
    for v in x.data_mut() {
        if rng.gen::<f64>() < missing {
            *v = f64::NAN;
        }
    }
    (x, y)
}

/// APS-like pre-processing (paper §5.4): mean imputation + oversampling the
/// minority class. `70_000/60_000 - 1 ≈ 0.1667` extra rows in the paper;
/// the target fraction reproduces that growth.
pub fn aps_like_preprocess(
    x: &DenseMatrix,
    y: &DenseMatrix,
    target_minority_fraction: f64,
) -> (DenseMatrix, DenseMatrix) {
    let xi = impute_mean(x);
    oversample_minority(&xi, y, 2.0, target_minority_fraction).expect("valid oversample")
}

/// KDD98-like raw data: `n` rows with `num_cat` categorical columns
/// (cardinalities cycling over `cards`) followed by `num_num` numeric
/// columns, plus a regression target.
pub fn kdd98_like_raw(
    n: usize,
    num_cat: usize,
    num_num: usize,
    cards: &[usize],
    seed: u64,
) -> (DenseMatrix, DenseMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = num_cat + num_num;
    let mut x = DenseMatrix::zeros(n, d);
    for i in 0..n {
        for j in 0..num_cat {
            let card = cards[j % cards.len()];
            x.set(i, j, (rng.gen_range(0..card) + 1) as f64);
        }
        for j in 0..num_num {
            x.set(i, num_cat + j, rng.gen::<f64>() * 100.0);
        }
    }
    let y = DenseMatrix::from_fn(n, 1, |i, _| {
        let mut s = 0.0;
        for j in 0..d.min(8) {
            s += x.get(i, j);
        }
        s * 0.1 + (i % 7) as f64 * 0.01
    });
    (x, y)
}

/// KDD98-like pre-processing (paper §5.4): recode categoricals, bin
/// continuous columns into `bins` equi-width bins, one-hot encode both.
/// The output width is the sum of the cardinalities plus `num_num * bins`
/// (KDD98: 469 → 7,909 columns).
pub fn kdd98_like_preprocess(x: &DenseMatrix, num_cat: usize, bins: usize) -> DenseMatrix {
    let n = x.rows();
    let mut out: Option<DenseMatrix> = None;
    for j in 0..x.cols() {
        let col = slice(x, 0, n - 1, j, j).expect("in bounds");
        let enc = if j < num_cat {
            let (codes, card) = recode_column(&col).expect("column vector");
            one_hot(&codes, card).expect("valid codes")
        } else {
            let binned = bin_column(&col, bins).expect("valid bins");
            one_hot(&binned, bins).expect("valid codes")
        };
        out = Some(match out {
            None => enc,
            Some(acc) => cbind(&acc, &enc).expect("same rows"),
        });
    }
    out.expect("at least one column")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_data_is_learnable() {
        let (x, y) = synthetic_regression(200, 5, 42);
        assert_eq!(x.shape(), (200, 5));
        assert_eq!(y.shape(), (200, 1));
        // Solve normal equations; residual must be small (noise 0.1).
        let xtx = lima_matrix::ops::tsmm(&x, lima_matrix::ops::TsmmSide::Left).unwrap();
        let xty = matmult(&lima_matrix::ops::transpose(&x), &y).unwrap();
        let b = lima_matrix::ops::solve(&xtx, &xty).unwrap();
        let yhat = matmult(&x, &b).unwrap();
        let sse: f64 = yhat
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(sse / 200.0 < 0.05, "mse {}", sse / 200.0);
    }

    #[test]
    fn classification_labels_are_in_range() {
        let (x, y) = synthetic_classification(100, 4, 3, 7);
        assert_eq!(x.shape(), (100, 4));
        assert!(y.data().iter().all(|&v| (1.0..=3.0).contains(&v)));
        // All classes present (100 draws over 3 classes).
        for c in 1..=3 {
            assert!(y.data().contains(&(c as f64)));
        }
    }

    #[test]
    fn counts_are_non_negative() {
        let (x, _) = synthetic_counts(50, 6, 2, 3);
        assert!(x.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn svm_labels_are_plus_minus_one() {
        let y = DenseMatrix::new(4, 1, vec![1.0, 2.0, 1.0, 2.0]).unwrap();
        let s = to_svm_labels(&y, 2.0);
        assert_eq!(s.data(), &[-1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn graph_columns_sum_to_at_most_one() {
        let g = synthetic_graph(20, 3, 5);
        for j in 0..20 {
            let s: f64 = (0..20).map(|i| g.get(i, j)).sum();
            assert!(s <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn aps_like_preprocessing_fills_and_oversamples() {
        let (x, y) = aps_like_raw(600, 17, 0.1, 0.05, 9);
        assert!(x.data().iter().any(|v| v.is_nan()));
        let (x2, y2) = aps_like_preprocess(&x, &y, 0.3);
        assert!(x2.data().iter().all(|v| !v.is_nan()));
        assert!(x2.rows() > x.rows());
        let minority = y2.data().iter().filter(|v| **v == 2.0).count() as f64;
        assert!(minority / y2.rows() as f64 >= 0.3 - 1e-9);
    }

    #[test]
    fn kdd98_like_preprocessing_widens_columns() {
        let (x, y) = kdd98_like_raw(300, 4, 3, &[5, 3], 11);
        assert_eq!(x.shape(), (300, 7));
        assert_eq!(y.rows(), 300);
        let enc = kdd98_like_preprocess(&x, 4, 10);
        // 4 cats (5+3+5+3) + 3 numerics * 10 bins = 46 columns.
        assert_eq!(enc.shape(), (300, 46));
        // One-hot rows sum to the number of original columns.
        for i in 0..enc.rows() {
            let s: f64 = enc.row(i).iter().sum();
            assert_eq!(s, 7.0);
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let (a, _) = synthetic_regression(20, 3, 1);
        let (b, _) = synthetic_regression(20, 3, 1);
        let (c, _) = synthetic_regression(20, 3, 2);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }
}
