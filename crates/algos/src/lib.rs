//! # lima-algos
//!
//! Script-level ML builtins (paper §2.1: `lm`, `lmDS`, `lmCG`, `gridSearch`,
//! `l2svm`, `pca`, ...) written in the DML subset and executed by the LIMA
//! runtime, plus synthetic dataset generators matching the paper's evaluation
//! datasets (Table 3) and ready-made end-to-end pipelines (Table 2).

pub mod datasets;
pub mod generators;
pub mod pipelines;
pub mod runner;
pub mod scripts;

pub use runner::{run_script, RunResult};
