//! Generic script generators for the paper's composite primitives.
//!
//! SystemDS' `gridSearch` and cross-validation builtins dispatch to arbitrary
//! train/score functions via `eval` (paper Example 1). Our DML subset has no
//! `eval`, so these generators specialize the driver script at compile time —
//! the composition is identical, and so is the fine-grained redundancy LIMA
//! removes from it.

/// Generates a grid-search driver (paper `gridSearch`):
///
/// * `train_expr` — an expression over `X`, `y`, and `p1..pN` producing the
///   model, e.g. `"lm(X, y, p2, p1, p3, 20)"`;
/// * `score_expr` — an expression over `X`, `y`, `model`, and `p1..pN`
///   producing a scalar loss, e.g. `"l2norm(X, y, model, p2)"`;
/// * `n_params` — the number of hyper-parameter columns in the `HP` matrix;
/// * `parallel` — `parfor` over the grid (the paper's task-parallel variant).
///
/// The generated script expects `X`, `y`, and `HP` as inputs and produces
/// `L` (per-configuration losses), `best` (minimal loss), and `bestIdx`.
pub fn grid_search_script(
    train_expr: &str,
    score_expr: &str,
    n_params: usize,
    parallel: bool,
) -> String {
    let loop_kw = if parallel { "parfor" } else { "for" };
    let mut bind = String::new();
    for p in 1..=n_params {
        bind.push_str(&format!("    p{p} = as.scalar(HP[gi, {p}]);\n"));
    }
    format!(
        "nHP = nrow(HP);\n\
         L = matrix(0, nHP, 1);\n\
         {loop_kw} (gi in 1:nHP) {{\n\
         {bind}\
         \x20   model = {train_expr};\n\
         \x20   L[gi, 1] = as.matrix({score_expr});\n\
         }}\n\
         best = min(L);\n\
         bestIdx = as.scalar(order(L, FALSE)[1, ]);\n"
    )
}

/// Generates a k-fold leave-one-out cross-validation driver (paper's `HCV`
/// composition): contiguous folds, train on the complement, score on the
/// held-out fold, average.
///
/// * `train_expr` — expression over `Xtr`, `ytr` (and `reg`) producing `model`;
/// * `score_expr` — expression over `Xts`, `yts`, `model` producing a loss;
/// * `folds` — number of folds (rows must divide evenly);
/// * `parallel` — `parfor` over folds.
///
/// Expects `X` and `y`; binds `cvloss` (the average held-out loss).
pub fn cross_validate_script(
    train_expr: &str,
    score_expr: &str,
    folds: usize,
    parallel: bool,
) -> String {
    let loop_kw = if parallel { "parfor" } else { "for" };
    format!(
        "n = nrow(X);\n\
         fsz = n / {folds};\n\
         F = matrix(0, {folds}, 1);\n\
         {loop_kw} (f in 1:{folds}) {{\n\
         \x20   if (f == 1) {{\n\
         \x20       Xtr = X[fsz + 1:n, ];\n\
         \x20       ytr = y[fsz + 1:n, ];\n\
         \x20   }} else {{\n\
         \x20       if (f == {folds}) {{\n\
         \x20           Xtr = X[1:n - fsz, ];\n\
         \x20           ytr = y[1:n - fsz, ];\n\
         \x20       }} else {{\n\
         \x20           Xtr = rbind(X[1:(f - 1) * fsz, ], X[f * fsz + 1:n, ]);\n\
         \x20           ytr = rbind(y[1:(f - 1) * fsz, ], y[f * fsz + 1:n, ]);\n\
         \x20       }}\n\
         \x20   }}\n\
         \x20   model = {train_expr};\n\
         \x20   Xts = X[(f - 1) * fsz + 1:f * fsz, ];\n\
         \x20   yts = y[(f - 1) * fsz + 1:f * fsz, ];\n\
         \x20   F[f, 1] = as.matrix({score_expr});\n\
         }}\n\
         cvloss = sum(F) / {folds};\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::runner::run_script;
    use crate::scripts::with_builtins;
    use lima_core::{LimaConfig, LimaStats};
    use lima_matrix::{DenseMatrix, Value};

    fn hp(rows: &[[f64; 2]]) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(rows.len(), 2);
        for (i, r) in rows.iter().enumerate() {
            m.set(i, 0, r[0]);
            m.set(i, 1, r[1]);
        }
        m
    }

    #[test]
    fn grid_search_over_lm_runs_and_reuses() {
        let script = with_builtins(&grid_search_script(
            "lm(X, y, p2, p1, 0.0000001, 20)",
            "l2norm(X, y, model, p2)",
            2,
            false,
        ));
        let (x, y) = datasets::synthetic_regression(200, 8, 5);
        let grid = hp(&[[1e-4, 0.0], [1e-2, 0.0], [1e-4, 1.0], [1e-2, 1.0]]);
        let inputs = [
            ("X", Value::matrix(x)),
            ("y", Value::matrix(y)),
            ("HP", Value::matrix(grid)),
        ];
        let base = run_script(&script, &LimaConfig::base(), &inputs).unwrap();
        let lima = run_script(&script, &LimaConfig::lima(), &inputs).unwrap();
        assert!(base.value("best").approx_eq(lima.value("best"), 1e-9));
        let idx = lima.value("bestIdx").as_f64().unwrap();
        assert!((1.0..=4.0).contains(&idx));
        // XᵀX / Xᵀy are λ-invariant: reuse must fire.
        assert!(LimaStats::get(&lima.ctx.stats.full_hits) > 0);
    }

    #[test]
    fn grid_search_parallel_matches_serial() {
        let serial = with_builtins(&grid_search_script(
            "lmDS(X, y, 0, p1)",
            "l2norm(X, y, model, 0)",
            1,
            false,
        ));
        let parallel = with_builtins(&grid_search_script(
            "lmDS(X, y, 0, p1)",
            "l2norm(X, y, model, 0)",
            1,
            true,
        ));
        let (x, y) = datasets::synthetic_regression(120, 6, 9);
        let grid = DenseMatrix::from_fn(6, 1, |i, _| 10f64.powi(-(i as i32) - 1));
        let inputs = [
            ("X", Value::matrix(x)),
            ("y", Value::matrix(y)),
            ("HP", Value::matrix(grid)),
        ];
        let a = run_script(&serial, &LimaConfig::lima(), &inputs).unwrap();
        let b = run_script(&parallel, &LimaConfig::lima(), &inputs).unwrap();
        assert!(a.value("L").approx_eq(b.value("L"), 1e-9));
        assert!(a.value("best").approx_eq(b.value("best"), 1e-9));
    }

    #[test]
    fn cross_validation_generator_runs() {
        let script = with_builtins(&cross_validate_script(
            "lmDS(Xtr, ytr, 0, 0.001)",
            "sum((lmPredict(Xts, model, 0) - yts)^2)",
            4,
            false,
        ));
        let (x, y) = datasets::synthetic_regression(160, 5, 13);
        let inputs = [("X", Value::matrix(x)), ("y", Value::matrix(y))];
        let base = run_script(&script, &LimaConfig::base(), &inputs).unwrap();
        let lima = run_script(&script, &LimaConfig::lima(), &inputs).unwrap();
        assert!(base.value("cvloss").approx_eq(lima.value("cvloss"), 1e-9));
        // Held-out loss should be finite and positive.
        assert!(base.value("cvloss").as_f64().unwrap() > 0.0);
    }

    #[test]
    fn generated_scripts_compose_with_each_other() {
        // Grid search over the CV loss: the paper's nested composition
        // (gridSearch of a cross-validated trainer).
        let cv_fn = format!(
            "cvlm = function(X, y, reg) return (cvloss) {{\n{}\n}}",
            cross_validate_script(
                "lmDS(Xtr, ytr, 0, reg)",
                "sum((lmPredict(Xts, model, 0) - yts)^2)",
                4,
                false,
            )
        );
        let driver = grid_search_script("cvlm(X, y, p1)", "model", 1, false);
        let script = with_builtins(&format!("{cv_fn}\n{driver}"));
        let (x, y) = datasets::synthetic_regression(80, 4, 17);
        let grid = DenseMatrix::from_fn(3, 1, |i, _| 10f64.powi(-(i as i32) - 2));
        let inputs = [
            ("X", Value::matrix(x)),
            ("y", Value::matrix(y)),
            ("HP", Value::matrix(grid)),
        ];
        let base = run_script(&script, &LimaConfig::base(), &inputs).unwrap();
        let lima = run_script(&script, &LimaConfig::lima(), &inputs).unwrap();
        assert!(base.value("best").approx_eq(lima.value("best"), 1e-9));
    }
}
