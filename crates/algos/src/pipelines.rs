//! End-to-end ML pipeline builders reproducing the paper's evaluation
//! workloads (Table 2 and §5.2/§5.3/§5.5). Each builder returns a script plus
//! its input datasets; the benchmark harness runs it under different LIMA
//! configurations and compares runtimes.

use crate::datasets;
use crate::scripts::with_builtins;
use lima_matrix::{DenseMatrix, Value};

/// A runnable pipeline: script source plus named inputs.
pub struct Pipeline {
    pub name: &'static str,
    pub script: String,
    pub inputs: Vec<(String, Value)>,
}

impl Pipeline {
    fn new(name: &'static str, body: String, inputs: Vec<(String, Value)>) -> Self {
        Pipeline {
            name,
            script: with_builtins(&body),
            inputs,
        }
    }

    /// Input list in the borrowed form `run_script` expects.
    pub fn input_refs(&self) -> Vec<(&str, Value)> {
        self.inputs
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect()
    }
}

/// Hyper-parameter grid as a matrix: `reg` (log-spaced), `icpt` ∈ {0, 1},
/// `tol` (log-spaced) — Example 2's 6×3×5 grid scaled by the counts given.
pub fn hyperparameter_grid(n_reg: usize, n_icpt: usize, n_tol: usize) -> DenseMatrix {
    let mut rows = Vec::new();
    for r in 0..n_reg {
        let reg = 10f64.powf(-5.0 + 5.0 * r as f64 / n_reg.max(1) as f64);
        for i in 0..n_icpt {
            for t in 0..n_tol {
                let tol = 10f64.powf(-12.0 + 4.0 * t as f64 / n_tol.max(1) as f64);
                rows.push([reg, i as f64, tol]);
            }
        }
    }
    let mut m = DenseMatrix::zeros(rows.len(), 3);
    for (i, row) in rows.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            m.set(i, j, *v);
        }
    }
    m
}

/// Log-spaced λ values in `[1e-5, 1e0]` (paper Table 2).
pub fn lambda_values(n: usize) -> DenseMatrix {
    DenseMatrix::from_fn(n, 1, |i, _| {
        10f64.powf(-5.0 + 5.0 * i as f64 / n.max(1) as f64)
    })
}

/// HL2SVM (Fig 9a): grid-search hyper-parameter tuning of L2SVM over
/// `n_lambda` λ values × intercepts {0,1}.
pub fn hl2svm(n: usize, d: usize, n_lambda: usize, seed: u64) -> Pipeline {
    let (x, y) = datasets::synthetic_classification(n, d, 2, seed);
    hl2svm_with(x, y, n_lambda)
}

/// [`hl2svm`] over provided data (labels in {1,2}; 2 is the positive class).
pub fn hl2svm_with(x: DenseMatrix, y: DenseMatrix, n_lambda: usize) -> Pipeline {
    let ysvm = datasets::to_svm_labels(&y, 2.0);
    let body = "
        nL = nrow(lambdas);
        losses = matrix(0, nL * 2, 1);
        k = 0;
        for (li in 1:nL) {
          reg = as.scalar(lambdas[li, 1]);
          for (ic in 0:1) {
            w = l2svm(X, Y, ic, reg, 0.001, 10);
            scores = msvmPredict(X, w, ic);
            out = 1 - Y * scores;
            sv = out > 0;
            l = sum(out * sv * out);
            k = k + 1;
            losses[k, 1] = as.matrix(l);
          }
        }
        best = min(losses);
    "
    .to_string();
    Pipeline::new(
        "HL2SVM",
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("Y".into(), Value::matrix(ysvm)),
            ("lambdas".into(), Value::matrix(lambda_values(n_lambda))),
        ],
    )
}

/// HLM (Fig 9b) — the paper's running example (Example 1): random feature
/// subsets, each grid-searched over `lm`. `parallel` switches the inner grid
/// loop to `parfor` (HLM-P).
pub fn hlm(
    n: usize,
    d: usize,
    feature_sets: usize,
    subset: usize,
    grid: &DenseMatrix,
    parallel: bool,
    seed: u64,
) -> Pipeline {
    let (x, y) = datasets::synthetic_regression(n, d, seed);
    hlm_with(x, y, feature_sets, subset, grid, parallel)
}

/// [`hlm`] over provided data.
pub fn hlm_with(
    x: DenseMatrix,
    y: DenseMatrix,
    feature_sets: usize,
    subset: usize,
    grid: &DenseMatrix,
    parallel: bool,
) -> Pipeline {
    let d = x.cols();
    let loop_kw = if parallel { "parfor" } else { "for" };
    let body = format!(
        "
        nHP = nrow(HP);
        L = matrix(0, {feature_sets} * nHP, 1);
        for (fi in 1:{feature_sets}) {{
          s = sample({d}, {subset}, fi);
          Xs = X[, s];
          {loop_kw} (i in 1:nHP) {{
            reg = as.scalar(HP[i, 1]);
            icpt = as.scalar(HP[i, 2]);
            tol = as.scalar(HP[i, 3]);
            beta = lm(Xs, y, icpt, reg, tol, 20);
            l = l2norm(Xs, y, beta, icpt);
            L[(fi - 1) * nHP + i, 1] = as.matrix(l);
          }}
        }}
        best = min(L);
    "
    );
    Pipeline::new(
        if parallel { "HLM-P" } else { "HLM" },
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("y".into(), Value::matrix(y)),
            ("HP".into(), Value::matrix(grid.clone())),
        ],
    )
}

/// HCV (Fig 9c): `k`-fold leave-one-out cross-validated `lmDS` over a λ
/// sweep. `n` must be divisible by `folds`.
pub fn hcv(
    n: usize,
    d: usize,
    folds: usize,
    n_lambda: usize,
    parallel: bool,
    seed: u64,
) -> Pipeline {
    let (x, y) = datasets::synthetic_regression(n, d, seed);
    hcv_with(x, y, folds, n_lambda, parallel)
}

/// [`hcv`] over provided data (rows are truncated to a fold multiple).
pub fn hcv_with(
    x: DenseMatrix,
    y: DenseMatrix,
    folds: usize,
    n_lambda: usize,
    parallel: bool,
) -> Pipeline {
    let n = x.rows() - x.rows() % folds;
    let x = lima_matrix::ops::slice(&x, 0, n - 1, 0, x.cols() - 1).expect("in bounds");
    let y = lima_matrix::ops::slice(&y, 0, n - 1, 0, 0).expect("in bounds");
    let loop_kw = if parallel { "parfor" } else { "for" };
    let body = format!(
        "
        nL = nrow(lambdas);
        n = nrow(X);
        fsz = n / {folds};
        L = matrix(0, nL, 1);
        for (li in 1:nL) {{
          reg = as.scalar(lambdas[li, 1]);
          F = matrix(0, {folds}, 1);
          {loop_kw} (f in 1:{folds}) {{
            if (f == 1) {{
              Xtr = X[fsz + 1:n, ];
              ytr = y[fsz + 1:n, ];
            }} else {{
              if (f == {folds}) {{
                Xtr = X[1:n - fsz, ];
                ytr = y[1:n - fsz, ];
              }} else {{
                Xtr = rbind(X[1:(f - 1) * fsz, ], X[f * fsz + 1:n, ]);
                ytr = rbind(y[1:(f - 1) * fsz, ], y[f * fsz + 1:n, ]);
              }}
            }}
            beta = lmDS(Xtr, ytr, 0, reg);
            Xts = X[(f - 1) * fsz + 1:f * fsz, ];
            yts = y[(f - 1) * fsz + 1:f * fsz, ];
            F[f, 1] = as.matrix(sum((lmPredict(Xts, beta, 0) - yts)^2));
          }}
          L[li, 1] = as.matrix(sum(F) / {folds});
        }}
        best = min(L);
    "
    );
    Pipeline::new(
        if parallel { "HCV-P" } else { "HCV" },
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("y".into(), Value::matrix(y)),
            ("lambdas".into(), Value::matrix(lambda_values(n_lambda))),
        ],
    )
}

/// ENS (Fig 9d): weighted ensemble of 3 MSVM + 3 MLogReg models with random
/// search over `n_weights` weight configurations. The per-configuration
/// scoring function recomputes the class-score matmuls — the fine-grained
/// redundancy LIMA eliminates.
pub fn ens(
    n_train: usize,
    n_test: usize,
    d: usize,
    classes: usize,
    n_weights: usize,
    seed: u64,
) -> Pipeline {
    let (xtr, ytr) = datasets::synthetic_classification(n_train, d, classes, seed);
    let (xts, yts) = datasets::synthetic_classification(n_test, d, classes, seed ^ 0x99);
    ens_with(xtr, ytr, xts, yts, classes, n_weights, seed)
}

/// [`ens`] over provided train/test data.
pub fn ens_with(
    xtr: DenseMatrix,
    ytr: DenseMatrix,
    xts: DenseMatrix,
    yts: DenseMatrix,
    classes: usize,
    n_weights: usize,
    seed: u64,
) -> Pipeline {
    let wt = lima_matrix::rand_gen::rand_matrix(
        n_weights,
        6,
        lima_matrix::rand_gen::RandDist::Uniform { min: 0.0, max: 1.0 },
        1.0,
        seed ^ 0x1234,
    )
    .expect("valid params");
    let body = format!(
        "
        ensScore = function(X, W1, W2, W3, B1, B2, B3, wts) return (S) {{
          S = as.scalar(wts[1, 1]) * msvmPredict(X, W1, 0)
            + as.scalar(wts[1, 2]) * msvmPredict(X, W2, 0)
            + as.scalar(wts[1, 3]) * msvmPredict(X, W3, 0)
            + as.scalar(wts[1, 4]) * (X %*% B1)
            + as.scalar(wts[1, 5]) * (X %*% B2)
            + as.scalar(wts[1, 6]) * (X %*% B3);
        }}
        W1 = msvm(Xtr, ytr, {classes}, 0, 1.0, 0.001, 6);
        W2 = msvm(Xtr, ytr, {classes}, 0, 0.1, 0.001, 6);
        W3 = msvm(Xtr, ytr, {classes}, 0, 0.01, 0.001, 6);
        B1 = multiLogReg(Xtr, ytr, {classes}, 0, 0.001, 8);
        B2 = multiLogReg(Xtr, ytr, {classes}, 0, 0.01, 8);
        B3 = multiLogReg(Xtr, ytr, {classes}, 0, 0.1, 8);
        nW = nrow(WT);
        ACC = matrix(0, nW, 1);
        for (wi in 1:nW) {{
          S = ensScore(Xts, W1, W2, W3, B1, B2, B3, WT[wi, ]);
          pred = rowIndexMax(S);
          ACC[wi, 1] = as.matrix(mean(pred == yts));
        }}
        best = max(ACC);
    "
    );
    Pipeline::new(
        "ENS",
        body,
        vec![
            ("Xtr".into(), Value::matrix(xtr)),
            ("ytr".into(), Value::matrix(ytr)),
            ("Xts".into(), Value::matrix(xts)),
            ("yts".into(), Value::matrix(yts)),
            ("WT".into(), Value::matrix(wt)),
        ],
    )
}

/// PCALM (Fig 9e): PCA with a K sweep feeding `lm` plus adjusted-R²
/// evaluation. The full projection `A %*% evects` is computed once per call
/// (the reuse-aware form of §4.4) so overlapping projections reuse fully.
pub fn pcalm(n: usize, d: usize, ks: &[usize], seed: u64) -> Pipeline {
    let (x, y) = datasets::synthetic_regression(n, d, seed);
    pcalm_with(x, y, ks)
}

/// [`pcalm`] over provided data.
pub fn pcalm_with(x: DenseMatrix, y: DenseMatrix, ks: &[usize]) -> Pipeline {
    let k_vec = DenseMatrix::from_fn(ks.len(), 1, |i, _| ks[i] as f64);
    let body = "
        nK = nrow(Ks);
        R2 = matrix(0, nK, 1);
        n = nrow(X);
        for (ki in 1:nK) {
          K = as.scalar(Ks[ki, 1]);
          [R, ev, evec] = pca(X, K);
          beta = lm(R, y, 1, 0.0000001, 0.0000001, 20);
          l = l2norm(R, y, beta, 1);
          sst = sum((y - mean(y))^2);
          r2 = 1 - l / sst;
          adj = 1 - (1 - r2) * (n - 1) / (n - K - 1);
          R2[ki, 1] = as.matrix(adj);
        }
        best = max(R2);
    "
    .to_string();
    Pipeline::new(
        "PCALM",
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("y".into(), Value::matrix(y)),
            ("Ks".into(), Value::matrix(k_vec)),
        ],
    )
}

/// PCACV (Fig 10a/10c): two phases — a PCA K sweep, then cross-validated
/// `lmDS` over a λ sweep on the last projection.
pub fn pcacv(
    n: usize,
    d: usize,
    ks: &[usize],
    folds: usize,
    n_lambda: usize,
    seed: u64,
) -> Pipeline {
    assert_eq!(n % folds, 0);
    let (x, y) = datasets::synthetic_regression(n, d, seed);
    let k_vec = DenseMatrix::from_fn(ks.len(), 1, |i, _| ks[i] as f64);
    let body = format!(
        "
        nK = nrow(Ks);
        V = matrix(0, nK, 1);
        for (ki in 1:nK) {{
          K = as.scalar(Ks[ki, 1]);
          [R, ev, evec] = pca(X, K);
          V[ki, 1] = as.matrix(sum(ev));
        }}
        n = nrow(X);
        fsz = n / {folds};
        nL = nrow(lambdas);
        L = matrix(0, nL, 1);
        for (li in 1:nL) {{
          reg = as.scalar(lambdas[li, 1]);
          F = matrix(0, {folds}, 1);
          for (f in 1:{folds}) {{
            if (f == 1) {{
              Xtr = R[fsz + 1:n, ];
              ytr = y[fsz + 1:n, ];
            }} else {{
              if (f == {folds}) {{
                Xtr = R[1:n - fsz, ];
                ytr = y[1:n - fsz, ];
              }} else {{
                Xtr = rbind(R[1:(f - 1) * fsz, ], R[f * fsz + 1:n, ]);
                ytr = rbind(y[1:(f - 1) * fsz, ], y[f * fsz + 1:n, ]);
              }}
            }}
            beta = lmDS(Xtr, ytr, 0, reg);
            Xts = R[(f - 1) * fsz + 1:f * fsz, ];
            yts = y[(f - 1) * fsz + 1:f * fsz, ];
            F[f, 1] = as.matrix(sum((lmPredict(Xts, beta, 0) - yts)^2));
          }}
          L[li, 1] = as.matrix(sum(F) / {folds});
        }}
        best = min(L);
    "
    );
    Pipeline::new(
        "PCACV",
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("y".into(), Value::matrix(y)),
            ("Ks".into(), Value::matrix(k_vec)),
            ("lambdas".into(), Value::matrix(lambda_values(n_lambda))),
        ],
    )
}

/// PCANB (Fig 10b/10d): a PCA K sweep followed by naive-Bayes smoothing
/// tuning on the projected (shifted non-negative) features.
pub fn pcanb(
    n: usize,
    d: usize,
    classes: usize,
    ks: &[usize],
    n_smoothing: usize,
    seed: u64,
) -> Pipeline {
    let (x, y) = datasets::synthetic_counts(n, d, classes, seed);
    pcanb_with(x, y, classes, ks, n_smoothing)
}

/// [`pcanb`] over provided data.
pub fn pcanb_with(
    x: DenseMatrix,
    y: DenseMatrix,
    classes: usize,
    ks: &[usize],
    n_smoothing: usize,
) -> Pipeline {
    let k_vec = DenseMatrix::from_fn(ks.len(), 1, |i, _| ks[i] as f64);
    let smooth = DenseMatrix::from_fn(n_smoothing, 1, |i, _| 0.1 + i as f64 * 0.35);
    let body = format!(
        "
        nK = nrow(Ks);
        nS = nrow(smooth);
        ACC = matrix(0, nK * nS, 1);
        k = 0;
        for (ki in 1:nK) {{
          K = as.scalar(Ks[ki, 1]);
          [R, ev, evec] = pca(X, K);
          Rp = R - min(R);
          for (si in 1:nS) {{
            lap = as.scalar(smooth[si, 1]);
            [prior, condProb] = naiveBayes(Rp, y, {classes}, lap);
            pred = nbPredict(Rp, prior, condProb);
            k = k + 1;
            ACC[k, 1] = as.matrix(mean(pred == y));
          }}
        }}
        best = max(ACC);
    "
    );
    Pipeline::new(
        "PCANB",
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("y".into(), Value::matrix(y)),
            ("Ks".into(), Value::matrix(k_vec)),
            ("smooth".into(), Value::matrix(smooth)),
        ],
    )
}

/// Autoencoder (Fig 10a): two hidden layers (sizes `h1`, 2), batch-wise
/// pre-processing (min-max normalization) inside the training loop — the
/// pre-processing lineage is identical across epochs, so LIMA reuses it.
pub fn autoencoder(
    n: usize,
    d: usize,
    h1: usize,
    batch: usize,
    epochs: usize,
    seed: u64,
) -> Pipeline {
    let (x, _) = datasets::synthetic_classification(n, d, 2, seed);
    let n_batches = n / batch;
    // The batch-wise pre-processing map (normalize + quadratic feature
    // expansion, standing in for the paper's bin/recode/one-hot transform)
    // is identical across epochs, so its lineage is reused (paper §5.5).
    let dq = 2 * d;
    let body = format!(
        "
        W1 = rand(rows={dq}, cols={h1}, min=-0.1, max=0.1, seed=1);
        W2 = rand(rows={h1}, cols=2, min=-0.1, max=0.1, seed=2);
        W3 = rand(rows=2, cols={h1}, min=-0.1, max=0.1, seed=3);
        W4 = rand(rows={h1}, cols={dq}, min=-0.1, max=0.1, seed=4);
        lr = 0.01;
        loss = 0;
        for (ep in 1:{epochs}) {{
          for (b in 1:{n_batches}) {{
            beg = (b - 1) * {batch} + 1;
            fin = b * {batch};
            Xb = X[beg:fin, ];
            C = t(Xb) %*% Xb;
            d = 1 / sqrt(diag(C) + 0.001);
            Xs = (Xb - colMeans(Xb)) * t(d);
            Xq = Xs * Xs;
            Xe = exp(0 - Xq);
            Xn = cbind(Xs, sigmoid(Xq + Xe));
            H1 = sigmoid(Xn %*% W1);
            H2 = sigmoid(H1 %*% W2);
            H3 = sigmoid(H2 %*% W3);
            Xh = sigmoid(H3 %*% W4);
            E = Xh - Xn;
            D4 = E * Xh * (1 - Xh);
            D3 = (D4 %*% t(W4)) * H3 * (1 - H3);
            D2 = (D3 %*% t(W3)) * H2 * (1 - H2);
            D1 = (D2 %*% t(W2)) * H1 * (1 - H1);
            W4 = W4 - lr * (t(H3) %*% D4);
            W3 = W3 - lr * (t(H2) %*% D3);
            W2 = W2 - lr * (t(H1) %*% D2);
            W1 = W1 - lr * (t(Xn) %*% D1);
            loss = sum(E * E);
          }}
        }}
    "
    );
    Pipeline::new("Autoencoder", body, vec![("X".into(), Value::matrix(x))])
}

/// Mini-batch tracing micro-benchmark (Fig 6): one epoch of 40 element-wise
/// operations per batch iteration — `X = ((X+X)·i − X)/(i+1)` ten times.
pub fn minibatch_micro(rows: usize, cols: usize, batch: usize, seed: u64) -> Pipeline {
    let x = lima_matrix::rand_gen::rand_matrix(
        rows,
        cols,
        lima_matrix::rand_gen::RandDist::Uniform { min: 0.0, max: 1.0 },
        1.0,
        seed,
    )
    .expect("valid params");
    let n_batches = rows / batch;
    let step = "B = ((B + B) * i - B) / (i + 1);\n";
    let body = format!(
        "
        s = 0;
        for (i in 1:{n_batches}) {{
          beg = (i - 1) * {batch} + 1;
          fin = i * {batch};
          B = X[beg:fin, ];
          {}
          s = s + sum(B);
        }}
    ",
        step.repeat(10)
    );
    Pipeline::new("MiniBatch", body, vec![("X".into(), Value::matrix(x))])
}

/// Multi-epoch mini-batch training loop (Fig 8b "Mini-batch"): per-batch
/// slicing + normalization is identical across epochs (reuse potential at
/// *shallow* lineage heights — where the DAG-Height policy shines), while
/// the model update chain is loop-carried and unmarked.
pub fn minibatch_train(
    rows: usize,
    cols: usize,
    batch: usize,
    epochs: usize,
    seed: u64,
) -> Pipeline {
    let x = lima_matrix::rand_gen::rand_matrix(
        rows,
        cols,
        lima_matrix::rand_gen::RandDist::Uniform { min: 0.0, max: 1.0 },
        1.0,
        seed,
    )
    .expect("valid params");
    let n_batches = rows / batch;
    let body = format!(
        "
        W = rand(rows={cols}, cols=8, min=-0.1, max=0.1, seed=5);
        lr = 0.001;
        loss = 0;
        for (ep in 1:{epochs}) {{
          for (b in 1:{n_batches}) {{
            beg = (b - 1) * {batch} + 1;
            fin = b * {batch};
            Xb = X[beg:fin, ];
            # batch-wise pre-processing: center + scale by the Gram diagonal
            # (expensive and identical across epochs -> reuse potential)
            C = t(Xb) %*% Xb;
            d = 1 / sqrt(diag(C) + 0.001);
            Xn = (Xb - colMeans(Xb)) * t(d);
            H = sigmoid(Xn %*% W);
            G = t(Xn) %*% (H * (1 - H));
            W = W - lr * G;
            loss = sum(H);
          }}
        }}
    "
    );
    Pipeline::new("MiniBatchTrain", body, vec![("X".into(), Value::matrix(x))])
}

/// StepLM core loop (Fig 7a): `tsmm(cbind(X, Y[,i]))` per candidate feature.
pub fn steplm_core(n: usize, d_base: usize, d_cand: usize, iters: usize, seed: u64) -> Pipeline {
    let (x, _) = datasets::synthetic_regression(n, d_base, seed);
    let (ycand, _) = datasets::synthetic_regression(n, d_cand, seed ^ 0x31);
    assert!(iters <= d_cand);
    let body = format!(
        "
        ts = t(X) %*% X;
        S = matrix(0, {iters}, 1);
        for (i in 1:{iters}) {{
          Z = cbind(X, Y[, i]);
          W = t(Z) %*% Z;
          S[i, 1] = as.matrix(sum(W));
        }}
        total = sum(S);
    "
    );
    Pipeline::new(
        "StepLM-core",
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("Y".into(), Value::matrix(ycand)),
        ],
    )
}

/// Full stepLm-style forward feature selection (Fig 8b): greedily append the
/// candidate feature with the lowest training loss.
pub fn steplm_full(n: usize, d_cand: usize, steps: usize, seed: u64) -> Pipeline {
    let (x, y) = datasets::synthetic_regression(n, d_cand, seed);
    assert!(steps <= d_cand);
    let body = format!(
        "
        Xsel = matrix(1, nrow(X), 1);
        picked = matrix(0, {steps}, 1);
        for (s in 1:{steps}) {{
          bestLoss = 1e300;
          bestJ = 0;
          for (j in 1:{d_cand}) {{
            Z = cbind(Xsel, X[, j]);
            A = t(Z) %*% Z + diag(matrix(0.0000001, ncol(Z), 1));
            b = t(Z) %*% y;
            beta = solve(A, b);
            l = sum((Z %*% beta - y)^2);
            if (l < bestLoss) {{
              bestLoss = l;
              bestJ = j;
            }}
          }}
          Xsel = cbind(Xsel, X[, bestJ]);
          picked[s, 1] = as.matrix(bestJ);
        }}
        finalLoss = bestLoss;
    "
    );
    Pipeline::new(
        "StepLM",
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("y".into(), Value::matrix(y)),
        ],
    )
}

/// Three-phase eviction pipeline (Fig 8a): P1 fills the cache with expensive
/// matmuls, P2 loops cheap additions with heavy cross-iteration reuse, P3
/// repeats part of P1.
pub fn eviction_phases(
    mm_dim: usize,
    p1_iters: usize,
    p2_outer: usize,
    p2_inner: usize,
    p3_iters: usize,
) -> Pipeline {
    let small = DenseMatrix::from_fn(64, 64, |i, j| ((i * 13 + j * 7) % 11) as f64 * 0.1);
    let body = format!(
        "
        s1 = 0;
        for (i in 1:{p1_iters}) {{
          M = rand(rows={mm_dim}, cols={mm_dim}, seed=i);
          P = M %*% M;
          R = round(P);
          s1 = s1 + sum(R);
        }}
        s2 = 0;
        for (o in 1:{p2_outer}) {{
          for (j in 1:{p2_inner}) {{
            A = Xsmall + j;
            s2 = s2 + sum(A);
          }}
        }}
        s3 = 0;
        for (i in 1:{p3_iters}) {{
          M = rand(rows={mm_dim}, cols={mm_dim}, seed=i);
          P = M %*% M;
          R = round(P);
          s3 = s3 + sum(R);
        }}
    "
    );
    Pipeline::new(
        "EvictionPhases",
        body,
        vec![("Xsmall".into(), Value::matrix(small))],
    )
}

/// PageRank with dedup-friendly loop (Example 4 / the quickstart example).
pub fn pagerank_pipeline(n: usize, iters: usize, seed: u64) -> Pipeline {
    let g = datasets::synthetic_graph(n, 4, seed);
    let p0 = DenseMatrix::filled(n, 1, 1.0 / n as f64);
    let e = DenseMatrix::filled(n, 1, 1.0 / n as f64);
    let u = DenseMatrix::filled(1, n, 1.0);
    let body = format!("p = pageRank(G, p0, e, u, 0.85, {iters});");
    Pipeline::new(
        "PageRank",
        body,
        vec![
            ("G".into(), Value::matrix(g)),
            ("p0".into(), Value::matrix(p0)),
            ("e".into(), Value::matrix(e)),
            ("u".into(), Value::matrix(u)),
        ],
    )
}

/// Repeated hyper-parameter optimization of `multiLogReg` (Fig 7b): the λ
/// sweep repeated `repeats` times — multi-level reuse memoizes whole calls.
pub fn mlogreg_repeat(
    n: usize,
    d: usize,
    classes: usize,
    n_lambda: usize,
    repeats: usize,
    seed: u64,
) -> Pipeline {
    let (x, y) = datasets::synthetic_classification(n, d, classes, seed);
    let body = format!(
        "
        nL = nrow(lambdas);
        s = 0;
        for (r in 1:{repeats}) {{
          for (li in 1:nL) {{
            reg = as.scalar(lambdas[li, 1]);
            B = multiLogReg(X, y, {classes}, 0, reg, 10);
            s = s + sum(B);
          }}
        }}
    "
    );
    Pipeline::new(
        "MLogRegRepeat",
        body,
        vec![
            ("X".into(), Value::matrix(x)),
            ("y".into(), Value::matrix(y)),
            ("lambdas".into(), Value::matrix(lambda_values(n_lambda))),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_script;
    use lima_core::LimaConfig;

    /// Smoke-run every pipeline at a tiny scale under both Base and LIMA and
    /// check the key outputs agree — the global "reuse changes nothing"
    /// invariant.
    fn check_equivalence(p: &Pipeline, out: &str) {
        let base = run_script(&p.script, &LimaConfig::base(), &p.input_refs())
            .unwrap_or_else(|e| panic!("{} base run: {e}", p.name));
        let lima = run_script(&p.script, &LimaConfig::lima(), &p.input_refs())
            .unwrap_or_else(|e| panic!("{} lima run: {e}", p.name));
        assert!(
            base.value(out).approx_eq(lima.value(out), 1e-6),
            "{}: {out} differs: {:?} vs {:?}",
            p.name,
            base.value(out),
            lima.value(out)
        );
    }

    #[test]
    fn hl2svm_small() {
        check_equivalence(&hl2svm(120, 8, 2, 7), "best");
    }

    #[test]
    fn hlm_small() {
        let grid = hyperparameter_grid(2, 2, 2);
        check_equivalence(&hlm(80, 10, 2, 4, &grid, false, 5), "best");
    }

    #[test]
    fn hlm_parallel_small() {
        let grid = hyperparameter_grid(2, 2, 1);
        check_equivalence(&hlm(80, 10, 2, 4, &grid, true, 5), "best");
    }

    #[test]
    fn hcv_small() {
        check_equivalence(&hcv(96, 6, 4, 2, false, 3), "best");
    }

    #[test]
    fn hcv_parallel_small() {
        check_equivalence(&hcv(96, 6, 4, 2, true, 3), "best");
    }

    #[test]
    fn ens_small() {
        check_equivalence(&ens(90, 40, 6, 3, 5, 11), "best");
    }

    #[test]
    fn pcalm_small() {
        check_equivalence(&pcalm(100, 8, &[2, 4], 13), "best");
    }

    #[test]
    fn pcacv_small() {
        check_equivalence(&pcacv(96, 8, &[3, 4], 4, 2, 17), "best");
    }

    #[test]
    fn pcanb_small() {
        check_equivalence(&pcanb(100, 8, 3, &[3, 4], 2, 19), "best");
    }

    #[test]
    fn autoencoder_small() {
        check_equivalence(&autoencoder(64, 10, 6, 16, 2, 23), "loss");
    }

    #[test]
    fn minibatch_micro_small() {
        check_equivalence(&minibatch_micro(64, 12, 8, 29), "s");
    }

    #[test]
    fn minibatch_train_small() {
        check_equivalence(&minibatch_train(64, 12, 16, 2, 47), "loss");
    }

    #[test]
    fn steplm_core_small() {
        let p = steplm_core(60, 6, 10, 5, 31);
        check_equivalence(&p, "total");
        // Partial reuse must actually fire under LIMA.
        let lima = run_script(&p.script, &LimaConfig::lima(), &p.input_refs()).unwrap();
        let _ = lima;
    }

    #[test]
    fn steplm_full_small() {
        check_equivalence(&steplm_full(60, 6, 2, 37), "finalLoss");
    }

    #[test]
    fn eviction_phases_small() {
        check_equivalence(&eviction_phases(24, 3, 2, 3, 2), "s3");
    }

    #[test]
    fn pagerank_small() {
        check_equivalence(&pagerank_pipeline(30, 5, 41), "p");
    }

    #[test]
    fn mlogreg_repeat_small() {
        check_equivalence(&mlogreg_repeat(60, 6, 3, 2, 2, 43), "s");
    }

    #[test]
    fn grid_and_lambda_builders() {
        let g = hyperparameter_grid(6, 3, 5);
        assert_eq!(g.shape(), (90, 3));
        assert!(g.get(0, 0) > 0.0);
        let l = lambda_values(4);
        assert_eq!(l.shape(), (4, 1));
        assert!(l.get(0, 0) < l.get(3, 0));
    }
}
