//! Benchmark harness utilities shared by the `figures` binary and the
//! Criterion benches: LIMA configuration presets matching the paper's
//! experiment labels, timing helpers, and table formatting.

use lima_algos::pipelines::Pipeline;
use lima_algos::runner::{run_script, RunResult};
use lima_core::{EvictionPolicy, LimaConfig, ReuseMode};
use std::time::Duration;

/// Named configurations used across the evaluation (paper §5.1/§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Default SystemDS without lineage (`Base`).
    Base,
    /// Lineage tracing only (`LT`).
    LT,
    /// Tracing + reuse probing, no dedup, no compiler assistance (`LTP`).
    LTP,
    /// Tracing + deduplication, no reuse (`LTD`).
    LTD,
    /// Full LIMA: hybrid reuse, multi-level, compiler assistance, C&S.
    Lima,
    /// LIMA without compiler assistance (runtime-only partial reuse).
    LimaNoCA,
    /// Operation-level full reuse only (`LIMA-FR`).
    LimaFR,
    /// Full + multi-level reuse (`LIMA-MLR`).
    LimaMLR,
    /// LRU eviction.
    LimaLru,
    /// DAG-Height eviction.
    LimaDagHeight,
    /// Cost & Size eviction (the default policy, spelled explicitly).
    LimaCostSize,
    /// Hybrid (weighted) eviction — the strategy the paper abandoned (§4.3),
    /// kept for the ablation study.
    LimaHybrid,
    /// Effectively unlimited cache (the hypothetical `Infinite` policy).
    LimaInfinite,
    /// Coarse-grained reuse baseline (HELIX/CO-style): only whole function
    /// calls are memoized.
    Coarse,
    /// Global-graph CSE baseline (TF-G proxy): operation-level full reuse
    /// without partial reuse, multi-level reuse, or compiler assistance.
    CseG,
}

impl Config {
    /// All configuration labels.
    pub const ALL: &'static [Config] = &[
        Config::Base,
        Config::LT,
        Config::LTP,
        Config::LTD,
        Config::Lima,
        Config::LimaNoCA,
        Config::LimaFR,
        Config::LimaMLR,
        Config::LimaLru,
        Config::LimaDagHeight,
        Config::LimaCostSize,
        Config::LimaHybrid,
        Config::LimaInfinite,
        Config::Coarse,
        Config::CseG,
    ];

    /// Label as printed in tables.
    pub fn label(self) -> &'static str {
        match self {
            Config::Base => "Base",
            Config::LT => "LT",
            Config::LTP => "LTP",
            Config::LTD => "LTD",
            Config::Lima => "LIMA",
            Config::LimaNoCA => "LIMA-noCA",
            Config::LimaFR => "LIMA-FR",
            Config::LimaMLR => "LIMA-MLR",
            Config::LimaLru => "LRU",
            Config::LimaDagHeight => "DAG-Height",
            Config::LimaCostSize => "C&S",
            Config::LimaHybrid => "Hybrid",
            Config::LimaInfinite => "Infinite",
            Config::Coarse => "Coarse",
            Config::CseG => "CSE-G",
        }
    }

    /// Materializes the `LimaConfig` for this label with a given budget.
    pub fn to_config(self, budget_bytes: usize) -> LimaConfig {
        let mut cfg = match self {
            Config::Base => LimaConfig::base(),
            Config::LT => LimaConfig::tracing_only(),
            Config::LTP => LimaConfig {
                dedup: false,
                multilevel: false,
                compiler_assist: false,
                ..LimaConfig::lima()
            },
            Config::LTD => LimaConfig::tracing_dedup(),
            Config::Lima => LimaConfig::lima(),
            Config::LimaNoCA => LimaConfig {
                compiler_assist: false,
                ..LimaConfig::lima()
            },
            Config::LimaFR => LimaConfig {
                reuse: ReuseMode::Full,
                multilevel: false,
                compiler_assist: false,
                ..LimaConfig::lima()
            },
            Config::LimaMLR => LimaConfig {
                reuse: ReuseMode::Full,
                multilevel: true,
                compiler_assist: false,
                ..LimaConfig::lima()
            },
            Config::LimaLru => LimaConfig {
                policy: EvictionPolicy::Lru,
                compiler_assist: false,
                ..LimaConfig::lima()
            },
            Config::LimaDagHeight => LimaConfig {
                policy: EvictionPolicy::DagHeight,
                compiler_assist: false,
                ..LimaConfig::lima()
            },
            Config::LimaCostSize => LimaConfig {
                policy: EvictionPolicy::CostSize,
                compiler_assist: false,
                ..LimaConfig::lima()
            },
            Config::LimaHybrid => LimaConfig {
                policy: EvictionPolicy::Hybrid,
                compiler_assist: false,
                ..LimaConfig::lima()
            },
            Config::LimaInfinite => LimaConfig {
                compiler_assist: false,
                budget_bytes: usize::MAX / 2,
                spill: false,
                ..LimaConfig::lima()
            },
            Config::Coarse => {
                // Only function-call results qualify for caching.
                let fcalls = [
                    "lm",
                    "lmDS",
                    "lmCG",
                    "lmPredict",
                    "l2norm",
                    "l2svm",
                    "msvm",
                    "msvmPredict",
                    "multiLogReg",
                    "pca",
                    "naiveBayes",
                    "nbPredict",
                    "scaleAndShift",
                    "pageRank",
                    "ensScore",
                ]
                .iter()
                .map(|f| format!("fcall:{f}"))
                .collect();
                LimaConfig {
                    reuse: ReuseMode::Full,
                    multilevel: true,
                    compiler_assist: false,
                    cacheable_opcodes: Some(fcalls),
                    ..LimaConfig::lima()
                }
            }
            Config::CseG => LimaConfig {
                reuse: ReuseMode::Full,
                multilevel: false,
                compiler_assist: false,
                ..LimaConfig::lima()
            },
        };
        if self != Config::LimaInfinite {
            cfg.budget_bytes = budget_bytes;
        }
        cfg
    }
}

/// Default cache budget for experiments (a stand-in for "5% of a 110 GB
/// heap" at laptop scale).
pub const DEFAULT_BUDGET: usize = 512 * 1024 * 1024;

/// Runs a pipeline under a configuration `reps` times, returning the
/// per-repetition durations (each repetition uses a fresh cache).
pub fn time_pipeline(p: &Pipeline, config: &LimaConfig, reps: usize) -> Vec<Duration> {
    (0..reps).map(|_| run_pipeline(p, config).elapsed).collect()
}

/// Runs a pipeline once.
pub fn run_pipeline(p: &Pipeline, config: &LimaConfig) -> RunResult {
    run_script(&p.script, config, &p.input_refs())
        .unwrap_or_else(|e| panic!("pipeline {} failed under {:?}: {e}", p.name, config.reuse))
}

/// Median of a set of durations.
pub fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// Scale factor for experiment sizes, read from `LIMA_SCALE` (default 1.0).
/// `figures` runs use it to trade fidelity against wall-clock time.
pub fn scale() -> f64 {
    std::env::var("LIMA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Applies the scale factor to a row count (keeping a sane floor).
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(16)
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Speedup string `x.xx×`.
pub fn speedup(base: Duration, other: Duration) -> String {
    format!("{:.2}x", base.as_secs_f64() / other.as_secs_f64().max(1e-9))
}

/// Prints a result table: header row then `rows` of (label, cells).
pub fn print_table(title: &str, header: &[&str], rows: &[(String, Vec<String>)]) {
    println!("\n=== {title} ===");
    let width = 14;
    let mut line = format!("{:width$}", header[0]);
    for h in &header[1..] {
        line.push_str(&format!("{h:>width$}"));
    }
    println!("{line}");
    for (label, cells) in rows {
        let mut line = format!("{label:width$}");
        for c in cells {
            line.push_str(&format!("{c:>width$}"));
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_labels_materialize() {
        for c in Config::ALL {
            let cfg = c.to_config(1 << 20);
            match c {
                Config::Base => assert!(!cfg.tracing),
                Config::LT => assert!(cfg.tracing && !cfg.reuse.any()),
                Config::LTD => assert!(cfg.dedup),
                Config::Lima => {
                    assert!(cfg.reuse.partial() && cfg.multilevel && cfg.compiler_assist)
                }
                Config::LimaFR => assert!(cfg.reuse.full() && !cfg.reuse.partial()),
                Config::Coarse => assert!(cfg.cacheable_opcodes.is_some()),
                _ => {}
            }
        }
    }

    #[test]
    fn coarse_config_caches_only_fcalls() {
        let cfg = Config::Coarse.to_config(1 << 20);
        assert!(cfg.is_cacheable("fcall:pca"));
        assert!(!cfg.is_cacheable("ba+*"));
        assert!(!cfg.is_cacheable("tsmm"));
    }

    #[test]
    fn median_of_durations() {
        let d = |ms: u64| Duration::from_millis(ms);
        assert_eq!(median(vec![d(5), d(1), d(9)]), d(5));
        assert_eq!(median(vec![d(4), d(2)]), d(4));
    }

    #[test]
    fn scaled_has_floor() {
        assert!(scaled(100) >= 16);
        assert_eq!(
            speedup(Duration::from_secs(2), Duration::from_secs(1)),
            "2.00x"
        );
    }
}
