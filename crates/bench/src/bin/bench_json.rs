//! `bench-json`: machine-readable perf trajectory for CI.
//!
//! Emits two artifacts (hand-rolled JSON — no serde in the tree, same idiom
//! as `chaos --bench-out`):
//!
//! * `BENCH_kernels.json` — per-kernel, per-backend `p50_ns`/`p99_ns` over
//!   the shapes below, plus the Reference→Optimized speedup on the large
//!   GEMM (the acceptance record: ≥ 2× at 512³ on multi-core hosts) and the
//!   batched-vs-individual lineage-hashing comparison.
//! * `BENCH_reuse.json` — end-to-end pipeline wall times under the paper's
//!   `Base`/`LT`/`LIMA` configurations, plus the observability overhead
//!   ratio guarded by the `obs_overhead` binary.
//!
//! Knobs: `--out-dir DIR` (default `.`), `LIMA_BENCH_REPS` (default 9),
//! `LIMA_BENCH_GEMM_N` (default 512; lower it for smoke runs).

use lima_algos::runner::run_script;
use lima_bench::Config;
use lima_core::lineage::item::{hash_batch, LinRef, LineageItem};
use lima_core::{LimaConfig, Obs};
use lima_matrix::backend::backend_for;
use lima_matrix::ops::elementwise::BinOp;
use lima_matrix::{BackendKind, DenseMatrix, KernelBackend, Value};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Deterministic dense matrix (splitmix-style hash of the cell index).
fn det(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| {
        let mut z = seed ^ (((i * cols + j) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z >> 40) as f64 / (1u64 << 24) as f64) * 8.0 - 4.0
    })
}

/// `p`-th percentile of unsorted nanosecond samples (nearest-rank).
fn percentile_ns(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx]
}

/// Times `f` for `reps` repetitions, returning (p50_ns, p99_ns).
fn time_ns(reps: usize, mut f: impl FnMut()) -> (u64, u64) {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    (
        percentile_ns(&mut samples, 0.50),
        percentile_ns(&mut samples, 0.99),
    )
}

/// One kernel/backend/shape measurement row.
struct KernelRow {
    kernel: &'static str,
    backend: &'static str,
    rows: usize,
    inner: usize,
    cols: usize,
    p50_ns: u64,
    p99_ns: u64,
    reps: usize,
}

impl KernelRow {
    fn json(&self) -> String {
        format!(
            "    {{\"kernel\": \"{}\", \"backend\": \"{}\", \"rows\": {}, \"inner\": {}, \
             \"cols\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"reps\": {}}}",
            self.kernel,
            self.backend,
            self.rows,
            self.inner,
            self.cols,
            self.p50_ns,
            self.p99_ns,
            self.reps
        )
    }
}

/// Measures every kernel of one backend on one shape family.
#[allow(clippy::too_many_arguments)]
fn bench_backend(
    kind: BackendKind,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    out: &mut Vec<KernelRow>,
) {
    let be: &'static dyn KernelBackend = backend_for(kind);
    let a = det(m, k, 1);
    let b = det(k, n, 2);
    let x = det(m, n, 3);

    let mut row = |kernel, rows, inner, cols, (p50_ns, p99_ns)| {
        out.push(KernelRow {
            kernel,
            backend: kind.name(),
            rows,
            inner,
            cols,
            p50_ns,
            p99_ns,
            reps,
        });
    };
    row(
        "gemm",
        m,
        k,
        n,
        time_ns(reps, || {
            be.gemm(&a, &b).expect("gemm");
        }),
    );
    row(
        "tsmm_left",
        m,
        0,
        n,
        time_ns(reps, || {
            be.tsmm_left(&x).expect("tsmm_left");
        }),
    );
    row(
        "tsmm_right",
        m,
        0,
        n,
        time_ns(reps, || {
            be.tsmm_right(&x).expect("tsmm_right");
        }),
    );
    row(
        "transpose",
        m,
        0,
        n,
        time_ns(reps, || {
            let _ = be.transpose(&x);
        }),
    );
    row(
        "ew_add",
        m,
        0,
        n,
        time_ns(reps, || {
            let _ = be.ew_binary(BinOp::Add, &x, &x);
        }),
    );
}

/// Median wall time (ns) of hashing `chain` fresh lineage chains of length
/// `len`, either batched (one `hash_batch` flush per chain) or per item.
fn hash_chain_ns(reps: usize, len: usize, batched: bool) -> (u64, u64) {
    time_ns(reps, || {
        let mut roots: Vec<LinRef> = Vec::with_capacity(len);
        let mut node = LineageItem::literal("f:0");
        for _ in 0..len {
            node = LineageItem::op("+", vec![node.clone()]);
            roots.push(node.clone());
        }
        if batched {
            hash_batch(&roots);
        } else {
            for r in &roots {
                let _ = r.hash_value();
            }
        }
    })
}

fn kernels_json(gemm_n: usize, reps: usize) -> String {
    let mut rows: Vec<KernelRow> = Vec::new();
    // Small shape: dispatch + tail handling; large shape: throughput.
    for kind in [BackendKind::Reference, BackendKind::Optimized] {
        bench_backend(kind, 96, 80, 112, reps, &mut rows);
        bench_backend(kind, gemm_n, gemm_n, gemm_n, reps, &mut rows);
    }

    // The acceptance record: large-GEMM speedup of Optimized over Reference.
    let pick = |backend: &str| {
        rows.iter()
            .find(|r| r.kernel == "gemm" && r.backend == backend && r.rows == gemm_n)
            .map_or(0, |r| r.p50_ns)
    };
    let (ref_ns, opt_ns) = (pick("reference"), pick("optimized"));
    let speedup = ref_ns as f64 / opt_ns.max(1) as f64;

    let (batched_p50, batched_p99) = hash_chain_ns(reps, 4096, true);
    let (single_p50, single_p99) = hash_chain_ns(reps, 4096, false);

    let row_json: Vec<String> = rows.iter().map(KernelRow::json).collect();
    format!(
        "{{\n  \"schema\": \"lima-bench-kernels-v1\",\n  \"kernels\": [\n{}\n  ],\n  \
         \"gemm_large\": {{\"n\": {gemm_n}, \"reference_p50_ns\": {ref_ns}, \
         \"optimized_p50_ns\": {opt_ns}, \"speedup\": {speedup:.3}}},\n  \
         \"lineage_hashing\": {{\"chain_len\": 4096, \
         \"batched_p50_ns\": {batched_p50}, \"batched_p99_ns\": {batched_p99}, \
         \"per_item_p50_ns\": {single_p50}, \"per_item_p99_ns\": {single_p99}}}\n}}\n",
        row_json.join(",\n")
    )
}

/// Instruction-dense reuse workload (same shape as the `obs_overhead` one:
/// interpreter pre/post-processing dominates, kernels stay cheap).
const REUSE_SCRIPT: &str = "
    s = 0;
    for (i in 1:60) {
      A = X * (1 + i - i);
      B = A + X;
      C = B - X;
      s = s + sum(C);
    }
";

fn run_reuse_once(config: &LimaConfig, x: &Value) -> Result<u64, String> {
    let t0 = Instant::now();
    let r = run_script(REUSE_SCRIPT, config, &[("X", x.clone())])
        .map_err(|e| format!("reuse workload failed: {e:?}"))?;
    r.value("s")
        .as_f64()
        .map_err(|e| format!("reuse output: {e:?}"))?;
    Ok(t0.elapsed().as_nanos() as u64)
}

fn reuse_json(reps: usize) -> Result<String, String> {
    let x = Value::matrix(det(64, 64, 7));
    let mut config_rows = Vec::new();
    for cfg in [Config::Base, Config::LT, Config::Lima] {
        let lima_cfg = cfg.to_config(lima_bench::DEFAULT_BUDGET);
        run_reuse_once(&lima_cfg, &x)?; // warm-up
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            samples.push(run_reuse_once(&lima_cfg, &x)?);
        }
        let (p50, p99) = (
            percentile_ns(&mut samples, 0.50),
            percentile_ns(&mut samples, 0.99),
        );
        config_rows.push(format!(
            "    {{\"config\": \"{}\", \"p50_ns\": {p50}, \"p99_ns\": {p99}, \"reps\": {reps}}}",
            cfg.label()
        ));
    }

    // Observability overhead, A/B alternated like the `obs_overhead` guard:
    // attached-but-disabled hub vs no hub at all.
    let detached = LimaConfig::lima();
    let attached = LimaConfig::lima().with_obs(Arc::new(Obs::disabled()));
    run_reuse_once(&detached, &x)?;
    run_reuse_once(&attached, &x)?;
    let (mut base, mut gated) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps {
        base.push(run_reuse_once(&detached, &x)?);
        gated.push(run_reuse_once(&attached, &x)?);
    }
    let base_p50 = percentile_ns(&mut base, 0.50);
    let gated_p50 = percentile_ns(&mut gated, 0.50);
    let ratio = gated_p50 as f64 / base_p50.max(1) as f64;

    Ok(format!(
        "{{\n  \"schema\": \"lima-bench-reuse-v1\",\n  \"configs\": [\n{}\n  ],\n  \
         \"obs_overhead\": {{\"detached_p50_ns\": {base_p50}, \
         \"attached_disabled_p50_ns\": {gated_p50}, \"ratio\": {ratio:.4}}}\n}}\n",
        config_rows.join(",\n")
    ))
}

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out-dir" => match args.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out-dir requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument '{other}' (expected --out-dir PATH)");
                return ExitCode::FAILURE;
            }
        }
    }
    let reps: usize = env_parse("LIMA_BENCH_REPS", 9).max(1);
    let gemm_n: usize = env_parse("LIMA_BENCH_GEMM_N", 512).max(16);

    let kernels = kernels_json(gemm_n, reps);
    let reuse = match reuse_json(reps) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench-json: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("bench-json: creating {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for (name, body) in [
        ("BENCH_kernels.json", &kernels),
        ("BENCH_reuse.json", &reuse),
    ] {
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("bench-json: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench-json: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
