//! Validates a Chrome `trace_event` JSON file produced by `limac run
//! --trace-out` (or an example run with `LIMA_TRACE_OUT` set): parses it with
//! the serde-free parser, checks per-thread span nesting, and prints a
//! one-line summary. Exits nonzero on any structural violation — the CI `obs`
//! job runs it against freshly exported traces.
//!
//! ```text
//! trace_check <trace.json> [--require-lineage]
//! ```

use lima_core::obs::{check_span_nesting, validate_chrome_trace};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_check <trace.json> [--require-lineage]");
        return ExitCode::from(2);
    };
    let require_lineage = args.iter().any(|a| a == "--require-lineage");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: {path}: invalid trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check_span_nesting(&summary) {
        eprintln!("trace_check: {path}: span nesting violated: {e}");
        return ExitCode::FAILURE;
    }
    if summary.total_events == 0 {
        eprintln!("trace_check: {path}: trace contains no events");
        return ExitCode::FAILURE;
    }
    if require_lineage && summary.with_lineage == 0 {
        eprintln!("trace_check: {path}: no event carries a lineage id");
        return ExitCode::FAILURE;
    }
    println!(
        "{path}: ok — {} events ({} spans, {} instants, {} with lineage ids, {} threads)",
        summary.total_events,
        summary.spans.len(),
        summary.instants,
        summary.with_lineage,
        summary.tids
    );
    ExitCode::SUCCESS
}
