//! Regenerates every table and figure of the LIMA evaluation (paper §5) at
//! laptop scale. Absolute numbers differ from the paper's 32-core cluster;
//! the reproduction target is the *shape*: which configuration wins, by
//! roughly what factor, and where crossovers fall.
//!
//! Usage:
//! ```text
//! figures <experiment>   one of: fig6a fig6b fig7a fig7b fig8a fig8b
//!                        fig9a fig9b fig9c fig9d fig9e fig9f
//!                        fig10a fig10b fig10c fig10d tab1 tab2 tab3 all
//! LIMA_SCALE=0.25        optional global size multiplier
//! ```

use lima_algos::pipelines::{self, Pipeline};
use lima_bench::{
    median, print_table, run_pipeline, scaled, secs, speedup, time_pipeline, Config, DEFAULT_BUDGET,
};
use std::time::Duration;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let experiments: Vec<(&str, fn())> = vec![
        ("fig6a", fig6a as fn()),
        ("fig6b", fig6b),
        ("fig7a", fig7a),
        ("fig7b", fig7b),
        ("fig8a", fig8a),
        ("fig8b", fig8b),
        ("fig9a", fig9a),
        ("fig9b", fig9b),
        ("fig9c", fig9c),
        ("fig9d", fig9d),
        ("fig9e", fig9e),
        ("fig9f", fig9f),
        ("fig10a", fig10a),
        ("fig10b", fig10b),
        ("fig10c", fig10c),
        ("fig10d", fig10d),
        ("tab1", tab1),
        ("tab2", tab2),
        ("tab3", tab3),
    ];
    match arg.as_str() {
        "all" => {
            for (name, f) in &experiments {
                eprintln!(">>> {name}");
                f();
            }
        }
        name => match experiments.iter().find(|(n, _)| *n == name) {
            Some((_, f)) => f(),
            None => {
                eprintln!("unknown experiment '{name}'");
                eprintln!(
                    "known: {} all",
                    experiments
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                std::process::exit(2);
            }
        },
    }
}

fn timed(p: &Pipeline, c: Config) -> Duration {
    let cfg = c.to_config(DEFAULT_BUDGET);
    median(time_pipeline(p, &cfg, 3))
}

// ------------------------------------------------------------------- Fig 6

/// Fig 6(a): lineage tracing / probing / dedup runtime overhead per batch
/// size — one epoch of 40 element-wise ops per iteration.
fn fig6a() {
    let rows = scaled(20_000);
    let cols = 78;
    let configs = [Config::Base, Config::LT, Config::LTP, Config::LTD];
    let batches = [2usize, 8, 32, 128, 512, 2048];
    let mut rows_out = Vec::new();
    for c in configs {
        let mut cells = Vec::new();
        for b in batches {
            let p = pipelines::minibatch_micro(rows, cols, b.min(rows), 1);
            cells.push(secs(timed(&p, c)));
        }
        rows_out.push((c.label().to_string(), cells));
    }
    print_table(
        &format!("Fig 6(a): tracing runtime overhead [s] ({rows}x{cols}, 1 epoch, 40 ops/iter)"),
        &["config", "b=2", "b=8", "b=32", "b=128", "b=512", "b=2048"],
        &rows_out,
    );
}

/// Fig 6(b): lineage space overhead — items created by the whole execution
/// (traced ops + dedup items) and the estimated bytes, with and without
/// deduplication. The paper reports ~63 B per lineage item; our items are
/// slightly larger (Rust `Arc` + boxed opcode).
fn fig6b() {
    const ITEM_BYTES: usize = 120;
    let rows = scaled(20_000).min(20_000);
    let cols = 78;
    let batches = [2usize, 8, 32, 128, 512, 2048];
    let mut items: Vec<(String, Vec<String>)> = vec![
        ("LT [MB]".into(), Vec::new()),
        ("LTD [MB]".into(), Vec::new()),
        ("LT #items".into(), Vec::new()),
        ("LTD #items".into(), Vec::new()),
    ];
    for b in batches {
        let p = pipelines::minibatch_micro(rows, cols, b.min(rows), 1);
        let lt = run_pipeline(&p, &Config::LT.to_config(DEFAULT_BUDGET));
        let ltd = run_pipeline(&p, &Config::LTD.to_config(DEFAULT_BUDGET));
        let lt_items = lima_core::LimaStats::get(&lt.ctx.stats.items_traced);
        // Dedup replaces per-iteration sub-DAGs with single items; the patch
        // bodies themselves are counted via the traced items.
        let ltd_items = lima_core::LimaStats::get(&ltd.ctx.stats.items_traced)
            + lima_core::LimaStats::get(&ltd.ctx.stats.dedup_items);
        items[0].1.push(format!(
            "{:.3}",
            (lt_items as usize * ITEM_BYTES) as f64 / 1e6
        ));
        items[1].1.push(format!(
            "{:.3}",
            (ltd_items as usize * ITEM_BYTES) as f64 / 1e6
        ));
        items[2].1.push(lt_items.to_string());
        items[3].1.push(ltd_items.to_string());
    }
    print_table(
        &format!("Fig 6(b): lineage space overhead ({rows}x{cols})"),
        &["config", "b=2", "b=8", "b=32", "b=128", "b=512", "b=2048"],
        &items,
    );
}

// ------------------------------------------------------------------- Fig 7

/// Fig 7(a): partial reuse (stepLm core): Base vs LIMA vs LIMA-CA over rows.
fn fig7a() {
    let sizes = [2_000usize, 4_000, 6_000, 8_000, 10_000];
    let mut out = Vec::new();
    for (c, label) in [
        (Config::Base, "Base"),
        (Config::LimaNoCA, "LIMA"),
        (Config::Lima, "LIMA-CA"),
    ] {
        let mut cells = Vec::new();
        for n in sizes {
            let p = pipelines::steplm_core(scaled(n), 100, 60, 60, 3);
            cells.push(secs(timed(&p, c)));
        }
        out.push((label.to_string(), cells));
    }
    print_table(
        "Fig 7(a): partial reuse, tsmm(cbind(X,d)) x60 iterations [s]",
        &["config", "2K", "4K", "6K", "8K", "10K"],
        &out,
    );
}

/// Fig 7(b): multi-level reuse: repeated λ sweeps over multiLogReg.
fn fig7b() {
    let repeats = [1usize, 5, 10, 15, 20];
    let mut out = Vec::new();
    for c in [Config::Base, Config::LimaFR, Config::LimaMLR] {
        let mut cells = Vec::new();
        for r in repeats {
            let p = pipelines::mlogreg_repeat(scaled(5_000), 60, 6, 8, r, 3);
            cells.push(secs(timed(&p, c)));
        }
        out.push((c.label().to_string(), cells));
    }
    print_table(
        "Fig 7(b): multi-level reuse, repeated MLogReg HPO [s]",
        &["config", "r=1", "r=5", "r=10", "r=15", "r=20"],
        &out,
    );
}

// ------------------------------------------------------------------- Fig 8

/// Fig 8(a): eviction policies on the three-phase pipeline.
fn fig8a() {
    // Budget sized to hold all of P1's products but little more, so P2's
    // cheap adds force evictions (paper's setup).
    let mm_dim = 192usize;
    let p1 = 24usize;
    let per_iter = 2 * (mm_dim * mm_dim * 8 + 64);
    let budget = p1 * per_iter + 256 * 1024;
    let p = pipelines::eviction_phases(mm_dim, p1, 16, 48, 12);
    let mut out = Vec::new();
    for c in [
        Config::Base,
        Config::LimaLru,
        Config::LimaCostSize,
        Config::LimaInfinite,
    ] {
        let mut cfg = c.to_config(budget);
        cfg.eviction_watermark = 0.98; // strict Table-1 eviction order
        let t = median(time_pipeline(&p, &cfg, 2));
        out.push((c.label().to_string(), vec![secs(t)]));
    }
    print_table(
        &format!(
            "Fig 8(a): eviction policies, 3-phase pipeline [s] (budget {}MB)",
            budget / (1 << 20)
        ),
        &["config", "time"],
        &out,
    );
}

/// Fig 8(b): eviction policies on mini-batch training and stepLm.
fn fig8b() {
    // Budgets hold most — but not all — of each pipeline's reusable set, so
    // the eviction *order* decides how much reuse survives.
    let mb_rows = scaled(16_000);
    let (mb_batch, mb_cols) = (256usize, 128usize);
    let mb = pipelines::minibatch_train(mb_rows, mb_cols, mb_batch, 6, 7);
    let sl = pipelines::steplm_full(scaled(6_000), 40, 3, 9);
    // Roughly 70% of the per-epoch reusable set (slices, Gram matrices,
    // normalized batches) fits — the eviction order decides what survives.
    let per_batch = (2 * mb_batch * mb_cols + mb_cols * mb_cols + 3 * mb_cols) * 8;
    let mb_budget = (mb_rows / mb_batch) * per_batch * 7 / 10;
    let sl_budget = 24 * 1024 * 1024;
    let mut out = Vec::new();
    for c in [
        Config::Base,
        Config::LimaLru,
        Config::LimaCostSize,
        Config::LimaDagHeight,
        Config::LimaInfinite,
    ] {
        let mut cfg_mb = c.to_config(mb_budget);
        cfg_mb.eviction_watermark = 0.98;
        let mut cfg_sl = c.to_config(sl_budget);
        cfg_sl.eviction_watermark = 0.98;
        out.push((
            c.label().to_string(),
            vec![
                secs(median(time_pipeline(&mb, &cfg_mb, 2))),
                secs(median(time_pipeline(&sl, &cfg_sl, 2))),
            ],
        ));
    }
    print_table(
        "Fig 8(b): eviction policies [s]",
        &["config", "Mini-batch", "StepLM"],
        &out,
    );
}

// ------------------------------------------------------------------- Fig 9

fn sweep(
    title: &str,
    header: &[&str],
    build: impl Fn(usize) -> Pipeline,
    xs: &[usize],
    configs: &[(Config, &str)],
) {
    let mut out = Vec::new();
    for (c, label) in configs {
        let mut cells = Vec::new();
        for &x in xs {
            let p = build(x);
            cells.push(secs(timed(&p, *c)));
        }
        out.push((label.to_string(), cells));
    }
    print_table(title, header, &out);
}

/// Fig 9(a): HL2SVM over the number of hyper-parameters.
fn fig9a() {
    sweep(
        "Fig 9(a): HL2SVM [s] (#hyper-parameters = 2 x #lambda)",
        &["config", "hp=20", "hp=60", "hp=100", "hp=140"],
        |n_hp| pipelines::hl2svm(scaled(10_000), 60, n_hp / 2, 7),
        &[20, 60, 100, 140],
        &[(Config::Base, "Base"), (Config::Lima, "LIMA")],
    );
}

/// Fig 9(b): HLM (Example 1) over rows, with and without task parallelism.
fn fig9b() {
    let grid = pipelines::hyperparameter_grid(4, 2, 3);
    let sizes = [20_000usize, 40_000, 60_000, 80_000, 100_000];
    let mut out = Vec::new();
    for (c, par, label) in [
        (Config::Base, false, "Base"),
        (Config::Base, true, "Base-P"),
        (Config::Lima, false, "LIMA"),
        (Config::Lima, true, "LIMA-P"),
    ] {
        let mut cells = Vec::new();
        for n in sizes {
            let p = pipelines::hlm(scaled(n), 50, 4, 15, &grid, par, 5);
            cells.push(secs(timed(&p, c)));
        }
        out.push((label.to_string(), cells));
    }
    print_table(
        "Fig 9(b): HLM grid search over lm [s]",
        &["config", "20K", "40K", "60K", "80K", "100K"],
        &out,
    );
}

/// Fig 9(c): HCV cross-validated lm over rows, ± task parallelism.
fn fig9c() {
    let sizes = [16_000usize, 32_000, 48_000, 64_000];
    let mut out = Vec::new();
    for (c, par, label) in [
        (Config::Base, false, "Base"),
        (Config::Base, true, "Base-P"),
        (Config::Lima, false, "LIMA"),
        (Config::Lima, true, "LIMA-P"),
    ] {
        let mut cells = Vec::new();
        for n in sizes {
            let n = scaled(n);
            let n = (n - n % 16).max(32);
            let p = pipelines::hcv(n, 40, 16, 6, par, 11);
            cells.push(secs(timed(&p, c)));
        }
        out.push((label.to_string(), cells));
    }
    print_table(
        "Fig 9(c): HCV 16-fold leave-one-out CV [s]",
        &["config", "16K", "32K", "48K", "64K"],
        &out,
    );
}

/// Fig 9(d): ENS weighted ensemble over the number of weight configurations.
fn fig9d() {
    sweep(
        "Fig 9(d): ENS weighted ensemble [s]",
        &["config", "w=1K", "w=2K", "w=3K", "w=4K", "w=5K"],
        |w| pipelines::ens(scaled(5_000), scaled(1_000), 40, 10, w, 13),
        &[1_000, 2_000, 3_000, 4_000, 5_000],
        &[(Config::Base, "Base"), (Config::Lima, "LIMA")],
    );
}

/// Fig 9(e): PCALM over rows.
fn fig9e() {
    sweep(
        "Fig 9(e): PCALM dimensionality-reduction pipeline [s]",
        &["config", "20K", "40K", "60K", "80K", "100K"],
        |n| pipelines::pcalm(scaled(n), 50, &[5, 10, 15, 20, 25, 30], 17),
        &[20_000, 40_000, 60_000, 80_000, 100_000],
        &[(Config::Base, "Base"), (Config::Lima, "LIMA")],
    );
}

/// Fig 9(f): synthetic vs real-like (APS / KDD98 stand-ins) speedups, with
/// and without pre-processing.
fn fig9f() {
    use lima_algos::datasets as ds;
    let n = scaled(8_000);
    let grid = pipelines::hyperparameter_grid(3, 2, 2);

    // Real-like datasets (pre-processed and raw variants).
    let (aps_raw_x, aps_raw_y) = ds::aps_like_raw(n, 60, 0.05, 0.02, 23);
    let (aps_x, aps_y) = ds::aps_like_preprocess(&aps_raw_x, &aps_raw_y, 0.15);
    // NaNs must go even in the "no pre-processing" variant.
    let aps_np_x = lima_matrix::frame::impute_mean(&aps_raw_x);
    let (kdd_raw_x, kdd_y) = ds::kdd98_like_raw(n, 12, 12, &[6, 4, 9], 29);
    let kdd_x = ds::kdd98_like_preprocess(&kdd_raw_x, 12, 10);
    let kdd_np_x = kdd_raw_x.clone(); // categorical codes used directly

    let speedup_of = |p: &Pipeline| {
        let base = timed(p, Config::Base);
        let lima = timed(p, Config::Lima);
        speedup(base, lima)
    };

    let mut out = Vec::new();
    {
        let (sx, sy) = ds::synthetic_classification(n, 60, 2, 31);
        let syn = pipelines::hl2svm_with(sx, sy, 4);
        let kddc = binarize_labels(&kdd_y);
        let real = pipelines::hl2svm_with(trunc_cols(&kdd_x, 60), kddc.clone(), 4);
        let realnp = pipelines::hl2svm_with(kdd_np_x.clone(), kddc, 4);
        out.push((
            "(a) HL2SVM".to_string(),
            vec![speedup_of(&syn), speedup_of(&real), speedup_of(&realnp)],
        ));
    }
    {
        let (sx, sy) = ds::synthetic_regression(n, 60, 37);
        let syn = pipelines::hlm_with(sx, sy, 2, 15, &grid, false);
        let real = pipelines::hlm_with(trunc_cols(&kdd_x, 60), kdd_y.clone(), 2, 15, &grid, false);
        let realnp = pipelines::hlm_with(kdd_np_x.clone(), kdd_y.clone(), 2, 15, &grid, false);
        out.push((
            "(b) HLM".to_string(),
            vec![speedup_of(&syn), speedup_of(&real), speedup_of(&realnp)],
        ));
    }
    {
        let (sx, sy) = ds::synthetic_regression(n, 40, 41);
        let syn = pipelines::hcv_with(sx, sy, 8, 4, false);
        let real = pipelines::hcv_with(trunc_cols(&kdd_x, 40), kdd_y.clone(), 8, 4, false);
        let realnp = pipelines::hcv_with(kdd_np_x.clone(), kdd_y.clone(), 8, 4, false);
        out.push((
            "(c) HCV".to_string(),
            vec![speedup_of(&syn), speedup_of(&real), speedup_of(&realnp)],
        ));
    }
    {
        let (sx, sy) = ds::synthetic_classification(n, 60, 2, 43);
        let syn = pipelines::ens_with(
            sx.clone(),
            sy.clone(),
            trunc_rows(&sx, n / 4),
            trunc_rows(&sy, n / 4),
            2,
            400,
            45,
        );
        let real = pipelines::ens_with(
            trunc_cols(&aps_x, 60),
            aps_y.clone(),
            trunc_rows(&trunc_cols(&aps_x, 60), n / 4),
            trunc_rows(&aps_y, n / 4),
            2,
            400,
            45,
        );
        let ax = trunc_cols(&aps_np_x, 60);
        let realnp = pipelines::ens_with(
            ax.clone(),
            aps_raw_y.clone(),
            trunc_rows(&ax, n / 4),
            trunc_rows(&aps_raw_y, n / 4),
            2,
            400,
            45,
        );
        out.push((
            "(d) ENS".to_string(),
            vec![speedup_of(&syn), speedup_of(&real), speedup_of(&realnp)],
        ));
    }
    {
        let (sx, sy) = ds::synthetic_regression(n, 40, 47);
        let syn = pipelines::pcalm_with(sx, sy, &[5, 10, 15]);
        let real = pipelines::pcalm_with(trunc_cols(&kdd_x, 40), kdd_y.clone(), &[5, 10, 15]);
        let realnp = pipelines::pcalm_with(kdd_np_x.clone(), kdd_y.clone(), &[5, 10, 15]);
        out.push((
            "(e) PCALM".to_string(),
            vec![speedup_of(&syn), speedup_of(&real), speedup_of(&realnp)],
        ));
    }
    print_table(
        "Fig 9(f): LIMA speedup, synthetic vs real-like data",
        &["pipeline", "Synthetic", "Real", "RealNP"],
        &out,
    );
}

fn binarize_labels(y: &lima_matrix::DenseMatrix) -> lima_matrix::DenseMatrix {
    let med = {
        let mut v: Vec<f64> = y.data().to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN labels"));
        v[v.len() / 2]
    };
    lima_matrix::DenseMatrix::from_fn(
        y.rows(),
        1,
        |i, _| if y.get(i, 0) > med { 2.0 } else { 1.0 },
    )
}

fn trunc_cols(x: &lima_matrix::DenseMatrix, k: usize) -> lima_matrix::DenseMatrix {
    let k = k.min(x.cols());
    lima_matrix::ops::slice(x, 0, x.rows() - 1, 0, k - 1).expect("in bounds")
}

fn trunc_rows(x: &lima_matrix::DenseMatrix, k: usize) -> lima_matrix::DenseMatrix {
    let k = k.min(x.rows()).max(1);
    lima_matrix::ops::slice(x, 0, k - 1, 0, x.cols() - 1).expect("in bounds")
}

// ------------------------------------------------------------------ Fig 10

/// Fig 10(a): Autoencoder and PCACV against the baselines.
fn fig10a() {
    let ae = pipelines::autoencoder(scaled(8_000), 64, 32, 256, 4, 3);
    let n = {
        let n = scaled(20_000);
        (n - n % 32).max(64)
    };
    let pc = pipelines::pcacv(n, 40, &[5, 10, 15, 20], 32, 6, 5);
    let mut out = Vec::new();
    for c in [Config::Base, Config::Lima, Config::Coarse, Config::CseG] {
        out.push((
            c.label().to_string(),
            vec![secs(timed(&ae, c)), secs(timed(&pc, c))],
        ));
    }
    print_table(
        "Fig 10(a): systems comparison [s] (Base~eager, CSE-G~TF-graph, Coarse~HELIX/CO)",
        &["config", "Autoencoder", "PCACV"],
        &out,
    );
}

/// Fig 10(b): PCANB on KDD98-like and APS-like data.
fn fig10b() {
    use lima_algos::datasets as ds;
    let n = scaled(8_000);
    let (kx_raw, ky) = ds::kdd98_like_raw(n, 12, 12, &[6, 4, 9], 51);
    let kx = ds::kdd98_like_preprocess(&kx_raw, 12, 10);
    let klabels = binarize_labels(&ky);
    let (ax_raw, ay_raw) = ds::aps_like_raw(n, 60, 0.05, 0.02, 53);
    let (ax, ay) = ds::aps_like_preprocess(&ax_raw, &ay_raw, 0.15);
    let kdd = pipelines::pcanb_with(nonneg(&trunc_cols(&kx, 80)), klabels, 2, &[5, 10, 15], 4);
    let aps = pipelines::pcanb_with(nonneg(&ax), ay, 2, &[5, 10, 15], 4);
    let mut out = Vec::new();
    for c in [Config::Base, Config::Lima] {
        out.push((
            c.label().to_string(),
            vec![secs(timed(&kdd, c)), secs(timed(&aps, c))],
        ));
    }
    print_table(
        "Fig 10(b): PCANB [s] (Base~SKlearn eager execution)",
        &["config", "KDD98-like", "APS-like"],
        &out,
    );
}

fn nonneg(x: &lima_matrix::DenseMatrix) -> lima_matrix::DenseMatrix {
    let min = x.data().iter().cloned().fold(f64::INFINITY, f64::min);
    lima_matrix::DenseMatrix::from_fn(x.rows(), x.cols(), |i, j| x.get(i, j) - min.min(0.0))
}

/// Fig 10(c): PCACV over rows — LIMA vs the CSE-G (TF proxy) baseline.
fn fig10c() {
    sweep(
        "Fig 10(c): PCACV over rows [s] (CSE-G~TF)",
        &["config", "12K", "24K", "36K", "48K"],
        |n| {
            let n = scaled(n);
            pipelines::pcacv((n - n % 16).max(32), 40, &[5, 10, 15], 16, 4, 7)
        },
        &[12_000, 24_000, 36_000, 48_000],
        &[(Config::CseG, "CSE-G"), (Config::Lima, "LIMA")],
    );
}

/// Fig 10(d): PCANB over rows — LIMA vs eager execution.
fn fig10d() {
    sweep(
        "Fig 10(d): PCANB over rows [s] (Base~SKlearn)",
        &["config", "12K", "24K", "36K", "48K"],
        |n| pipelines::pcanb(scaled(n), 60, 8, &[5, 10, 15], 4, 9),
        &[12_000, 24_000, 36_000, 48_000],
        &[(Config::Base, "Base"), (Config::Lima, "LIMA")],
    );
}

// ------------------------------------------------------------------ Tables

/// Table 1: eviction policies and scoring functions.
fn tab1() {
    print_table(
        "Table 1: eviction policies and scoring functions",
        &["policy", "score (argmin evicts)"],
        &[
            ("LRU".to_string(), vec!["Ta(o)/theta".to_string()]),
            ("DAG-Height".to_string(), vec!["1/h(o)".to_string()]),
            (
                "Cost&Size".to_string(),
                vec!["(rh+rm)*c(o)/s(o)".to_string()],
            ),
            (
                "Hybrid*".to_string(),
                vec!["0.5*recency + 0.5*utility (abandoned in the paper)".to_string()],
            ),
        ],
    );
}

/// Table 2: the ML pipeline use cases with their parameter ranges.
fn tab2() {
    print_table(
        "Table 2: ML pipeline use cases",
        &["use case", "lambda", "icpt", "tol", "K/Wt", "TP"],
        &[
            (
                "HL2SVM".to_string(),
                vec![
                    "#=70".into(),
                    "{0,1}".into(),
                    "1e-12".into(),
                    "N/A".into(),
                    "".into(),
                ],
            ),
            (
                "HLM".to_string(),
                vec![
                    "[1e-5,1e0]".into(),
                    "{0,1}".into(),
                    "[1e-12,1e-8]".into(),
                    "N/A".into(),
                    "yes".into(),
                ],
            ),
            (
                "HCV".to_string(),
                vec![
                    "[1e-5,1e0]".into(),
                    "{0}".into(),
                    "[1e-12,1e-8]".into(),
                    "N/A".into(),
                    "yes".into(),
                ],
            ),
            (
                "ENS".to_string(),
                vec![
                    "#=3".into(),
                    "{0}".into(),
                    "1e-12".into(),
                    "[1K,5K]".into(),
                    "(yes)".into(),
                ],
            ),
            (
                "PCALM".to_string(),
                vec![
                    "N/A".into(),
                    "N/A".into(),
                    "N/A".into(),
                    "K>=10%".into(),
                    "".into(),
                ],
            ),
        ],
    );
}

/// Table 3: dataset characteristics (real-like generators).
fn tab3() {
    use lima_algos::datasets as ds;
    let n = scaled(8_000);
    let (ax_raw, ay_raw) = ds::aps_like_raw(n, 60, 0.05, 0.02, 3);
    let (ax, _) = ds::aps_like_preprocess(&ax_raw, &ay_raw, 0.15);
    let (kx_raw, _) = ds::kdd98_like_raw(n, 12, 12, &[6, 4, 9], 5);
    let kx = ds::kdd98_like_preprocess(&kx_raw, 12, 10);
    print_table(
        "Table 3: dataset characteristics (scaled-down stand-ins)",
        &[
            "dataset", "nrow(X0)", "ncol(X0)", "nrow(X)", "ncol(X)", "task",
        ],
        &[
            (
                "APS-like".to_string(),
                vec![
                    ax_raw.rows().to_string(),
                    ax_raw.cols().to_string(),
                    ax.rows().to_string(),
                    ax.cols().to_string(),
                    "2-Class".into(),
                ],
            ),
            (
                "KDD98-like".to_string(),
                vec![
                    kx_raw.rows().to_string(),
                    kx_raw.cols().to_string(),
                    kx.rows().to_string(),
                    kx.cols().to_string(),
                    "Reg.".into(),
                ],
            ),
        ],
    );
    println!("(paper: APS 60,000x170 -> 70,000x170; KDD98 95,412x469 -> 95,412x7,909)");
}
