//! Chaos harness for `limad`: hundreds of concurrent zipf-skewed sessions
//! across tenants, with deterministic fault injection at the service's
//! sites (connection drops, a slow shard, crash mid-WAL-append), asserting
//! two invariants that must hold under every fault plan:
//!
//! 1. **Baseline equivalence** — every value the service returns is equal to
//!    the same script executed in-process with no service and no faults.
//! 2. **Bounded tails** — no request hangs; p99 latency stays under a cap
//!    (generous by default, tightened in CI), and typed overload/deadline
//!    errors are the only acceptable non-successes.
//!
//! Scenarios (`--fault`): `none`, `conn-drop`, `slow-shard`, `crash-restart`,
//! `corrupt-at-rest` (bit-flips committed value files under a live server and
//! requires the scrubber to repair them from lineage), `corrupt-restart`
//! (corrupts the directory between runs and requires recovery-time repair),
//! `replica-kill` (kills and restarts one member of a 2-replica group under
//! load; clients must fail over with zero hard errors and anti-entropy must
//! reconverge the keyspaces), `partition` (pauses replication on both
//! members, diverges them, and requires anti-entropy to heal the split),
//! `hedge` (one member is uniformly slow; hedged fetches must keep the read
//! p99 near the healthy baseline), `all` (conn-drop + slow-shard; the
//! persistence and replication faults run as their own phases).
//! Seeds come from `--seed` or the comma-separated `LIMA_FAULT_SEEDS`
//! environment variable (the CI contract); every trigger decision is a pure
//! function of the seed, so a failing run replays bit-identically.
//!
//! `--bench-out PATH` writes one JSON record per seed (p50/p99 latency,
//! availability %, anti-entropy convergence time, hedges won) for the CI
//! artifact trail.
//!
//! Exit codes: 0 success, 1 invariant violation, 2 usage error.

use lima_algos::runner::run_script;
use lima_client::{ClientOptions, LimadClient, SubmitOptions};
use lima_core::faults::{FaultInjector, FaultSite};
use lima_core::lineage::serialize_lineage;
use lima_core::resilience::RetryPolicy;
use lima_core::{LimaConfig, LimaStats};
use limad::{LimadConfig, ReplOptions, ReplicaGroup, Server, ShardState};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TENANTS: usize = 4;
const WORKERS: usize = 12;

/// splitmix64 finalizer — the deterministic mixer behind zipf draws and
/// per-seed corpus parameters.
fn mix_seed(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    ConnDrop,
    SlowShard,
    CrashRestart,
    CorruptAtRest,
    CorruptRestart,
    ReplicaKill,
    Partition,
    Hedge,
    All,
}

impl Fault {
    fn parse(s: &str) -> Option<Fault> {
        match s {
            "none" => Some(Fault::None),
            "conn-drop" => Some(Fault::ConnDrop),
            "slow-shard" => Some(Fault::SlowShard),
            "crash-restart" => Some(Fault::CrashRestart),
            "corrupt-at-rest" => Some(Fault::CorruptAtRest),
            "corrupt-restart" => Some(Fault::CorruptRestart),
            "replica-kill" => Some(Fault::ReplicaKill),
            "partition" => Some(Fault::Partition),
            "hedge" => Some(Fault::Hedge),
            "all" => Some(Fault::All),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::ConnDrop => "conn-drop",
            Fault::SlowShard => "slow-shard",
            Fault::CrashRestart => "crash-restart",
            Fault::CorruptAtRest => "corrupt-at-rest",
            Fault::CorruptRestart => "corrupt-restart",
            Fault::ReplicaKill => "replica-kill",
            Fault::Partition => "partition",
            Fault::Hedge => "hedge",
            Fault::All => "all",
        }
    }
}

struct Args {
    fault: Fault,
    sessions: usize,
    shards: usize,
    seeds: Vec<u64>,
    p99_cap_ms: u64,
    bench_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut fault = Fault::All;
    let mut sessions = 200usize;
    let mut shards = 4usize;
    let mut seed: Option<u64> = None;
    let mut p99_cap_ms = 10_000u64;
    let mut bench_out: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut need = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--fault" => {
                let v = need("--fault")?;
                fault = Fault::parse(&v).ok_or(format!("unknown fault scenario '{v}'"))?;
            }
            "--sessions" => {
                sessions = need("--sessions")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--shards" => shards = need("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = Some(need("--seed")?.parse().map_err(|e| format!("{e}"))?),
            "--p99-cap-ms" => {
                p99_cap_ms = need("--p99-cap-ms")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--bench-out" => bench_out = Some(PathBuf::from(need("--bench-out")?)),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    // --seed wins; otherwise the CI contract: LIMA_FAULT_SEEDS=1,2,3,4,5.
    let seeds = match seed {
        Some(s) => vec![s],
        None => match std::env::var("LIMA_FAULT_SEEDS") {
            Ok(raw) => raw
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| s.trim().parse().map_err(|e| format!("bad seed '{s}': {e}")))
                .collect::<Result<Vec<u64>, String>>()?,
            Err(_) => vec![7],
        },
    };
    if seeds.is_empty() {
        return Err("no seeds given".into());
    }
    Ok(Args {
        fault,
        sessions,
        shards,
        seeds,
        p99_cap_ms,
        bench_out,
    })
}

/// The script corpus: parameterized templates instantiated per seed. Every
/// script is self-contained and deterministic, so the in-process baseline is
/// exact.
fn corpus(seed: u64) -> Vec<String> {
    let mut scripts = Vec::new();
    for i in 0..4u64 {
        let p = 1 + (mix_seed(seed ^ i) % 7);
        scripts.push(format!(
            "X = matrix({p}, 40, 12);\nG = t(X) %*% X;\ns = sum(G);\n"
        ));
        scripts.push(format!(
            "X = matrix(2, 30, 30);\nY = X + {p};\nZ = Y * 2;\ns = sum(Z - X);\n"
        ));
        scripts.push(format!(
            "acc = 0;\nfor (i in 1:{n}) {{\n  acc = acc + i * {p};\n}}\ns = acc;\n",
            n = 50 + p * 10
        ));
        scripts.push(format!(
            "X = matrix({p}, 25, 25);\ns = sum(t(X) %*% X) + {p};\n"
        ));
        scripts.push(format!(
            "X = matrix(3, 50, 8);\nY = X + {p};\ns = sum(X + Y);\n"
        ));
        scripts.push(format!(
            "X = matrix({p}, 20, 20);\nA = X * 3;\nB = A - X;\ns = sum(B) + sum(A);\n"
        ));
    }
    scripts
}

/// Zipf-skewed index over `n` items (exponent ~1.1): item 0 is hottest, the
/// tail is long. Deterministic in (seed, draw index).
fn zipf(seed: u64, draw: u64, n: usize) -> usize {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(1.1)).collect();
    let total: f64 = weights.iter().sum();
    let u = (mix_seed(seed ^ mix_seed(draw)) >> 11) as f64 / (1u64 << 53) as f64;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w / total;
        if u < acc {
            return i;
        }
    }
    n - 1
}

fn injector_for(fault: Fault, seed: u64) -> Option<Arc<FaultInjector>> {
    let inj = match fault {
        Fault::None
        | Fault::CrashRestart
        | Fault::CorruptAtRest
        | Fault::CorruptRestart
        | Fault::ReplicaKill
        | Fault::Partition
        | Fault::Hedge => return None,
        Fault::ConnDrop => {
            FaultInjector::new(seed).fail_with_probability(FaultSite::ConnDrop, 0.05)
        }
        // Exactly one shard is slow; which one rotates with the seed.
        Fault::SlowShard => FaultInjector::new(seed).fail_at(FaultSite::SlowShard, &[seed % 4]),
        Fault::All => FaultInjector::new(seed)
            .fail_with_probability(FaultSite::ConnDrop, 0.05)
            .fail_at(FaultSite::SlowShard, &[seed % 4]),
    };
    Some(Arc::new(inj))
}

/// Runs every script in-process (no service, no faults) and returns the
/// expected `s` values — the oracle every served result is checked against.
fn baseline_for(scripts: &[String]) -> Result<Vec<f64>, String> {
    scripts
        .iter()
        .map(|s| {
            run_script(s, &LimaConfig::lima(), &[])
                .map_err(|e| format!("baseline failed: {e:?}"))?
                .value("s")
                .as_f64()
                .map_err(|e| format!("baseline output: {e:?}"))
        })
        .collect()
}

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Scrapes `/metrics` over raw HTTP and checks the exposition for `needles`
/// on top of the baseline counters every server must export.
fn scrape_with(server: &Server, needles: &[&str]) -> Result<(), String> {
    let mut stream = TcpStream::connect(server.metrics_addr()).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .map_err(|e| e.to_string())?;
    let mut body = String::new();
    stream
        .read_to_string(&mut body)
        .map_err(|e| e.to_string())?;
    if !body.starts_with("HTTP/1.0 200") {
        return Err(format!(
            "scrape did not return 200: {:?}",
            body.lines().next()
        ));
    }
    for needle in [
        "lima_total_hits",
        "lima_srv_requests",
        "limad_shard_state{shard=\"0\"}",
    ]
    .iter()
    .chain(needles)
    {
        if !body.contains(needle) {
            return Err(format!("scrape output missing '{needle}'"));
        }
    }
    Ok(())
}

/// Baseline scrape check for standalone servers.
fn scrape_metrics(server: &Server) -> Result<(), String> {
    scrape_with(server, &[])
}

/// Scrape check for replica-group members: the replication gauges must be
/// present alongside the standard exposition. `peer` is the group-wide
/// member index this server's health gauge should be labelled with.
fn scrape_replicated(server: &Server, peer: usize) -> Result<(), String> {
    let state = format!("limad_replica_state{{member=\"{peer}\"}}");
    scrape_with(server, &[&state, "limad_repl_queue_depth"])
}

struct TrafficReport {
    latencies_ms: Vec<u64>,
    mismatches: Vec<String>,
    hard_errors: Vec<String>,
    typed_errors: usize,
}

/// One seed's bench row for `--bench-out`. Scenarios that have no
/// anti-entropy phase or hedging leave those fields at zero.
struct BenchRecord {
    seed: u64,
    p50_ms: u64,
    p99_ms: u64,
    availability_pct: f64,
    convergence_ms: u64,
    hedges_won: u64,
}

impl BenchRecord {
    fn from_report(seed: u64, report: &TrafficReport) -> BenchRecord {
        let mut sorted = report.latencies_ms.clone();
        sorted.sort_unstable();
        let total = report.latencies_ms.len().max(1);
        BenchRecord {
            seed,
            p50_ms: percentile(&sorted, 0.50),
            p99_ms: percentile(&sorted, 0.99),
            availability_pct: 100.0 * (total - report.typed_errors) as f64 / total as f64,
            convergence_ms: 0,
            hedges_won: 0,
        }
    }
}

/// Hand-rolled JSON (no serde in the tree): one object per seed under a
/// top-level fault tag.
fn bench_json(fault: Fault, records: &[BenchRecord]) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"seed\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"availability_pct\": {:.2}, \"convergence_ms\": {}, \"hedges_won\": {}}}",
                r.seed, r.p50_ms, r.p99_ms, r.availability_pct, r.convergence_ms, r.hedges_won
            )
        })
        .collect();
    format!(
        "{{\n  \"fault\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        fault.as_str(),
        rows.join(",\n")
    )
}

/// Drives `sessions` zipf-sampled submits from `WORKERS` client threads
/// against a running server and checks every returned value against the
/// baseline. Typed Overloaded/DeadlineExceeded responses are tolerated
/// (counted); anything else — transport errors included, the client retries
/// those itself — is a hard failure.
fn drive_traffic(
    server: &Server,
    scripts: &[String],
    baseline: &[f64],
    sessions: usize,
    seed: u64,
) -> TrafficReport {
    let addr = server.addr().to_string();
    let next = AtomicUsize::new(0);
    let report = Mutex::new(TrafficReport {
        latencies_ms: Vec::with_capacity(sessions),
        mismatches: Vec::new(),
        hard_errors: Vec::new(),
        typed_errors: 0,
    });
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let addr = &addr;
            let next = &next;
            let report = &report;
            scope.spawn(move || {
                let opts = ClientOptions {
                    // Scripts are deterministic and idempotent, so retrying a
                    // submit after an injected connection drop is safe here.
                    retry_submits: true,
                    retry: RetryPolicy::new(5, 10, seed ^ worker as u64),
                    default_deadline: Duration::from_secs(20),
                    ..ClientOptions::default()
                };
                let tenant = format!("tenant-{}", worker % TENANTS);
                let mut client = LimadClient::new(addr, &tenant, opts);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= sessions {
                        return;
                    }
                    let script_idx = zipf(seed, i as u64, scripts.len());
                    let submit = SubmitOptions {
                        outputs: vec!["s".to_string()],
                        ..SubmitOptions::default()
                    };
                    let t0 = Instant::now();
                    let result = client.submit(&scripts[script_idx], &submit);
                    let ms = t0.elapsed().as_millis() as u64;
                    let mut r = report.lock().unwrap();
                    r.latencies_ms.push(ms);
                    match result {
                        Ok(done) => {
                            let got = done
                                .value("s")
                                .and_then(|v| v.as_f64().ok())
                                .unwrap_or(f64::NAN);
                            if !approx_eq(got, baseline[script_idx]) {
                                r.mismatches.push(format!(
                                    "session {i}: script {script_idx} returned {got}, baseline {}",
                                    baseline[script_idx]
                                ));
                            }
                        }
                        Err(e) if e.code().is_some() => r.typed_errors += 1,
                        Err(e) => r.hard_errors.push(format!("session {i}: {e}")),
                    }
                }
            });
        }
    });
    report.into_inner().unwrap()
}

/// Like [`drive_traffic`] but against a replica group: every worker holds a
/// multi-member client preferring member 0, so failover, breakers, and
/// hedging are all live. `controller` runs on the calling thread while the
/// workers churn — it gets the shared progress counter and is where
/// scenarios kill, restart, or partition members mid-load.
fn drive_replicated(
    addrs: &[String],
    scripts: &[String],
    baseline: &[f64],
    sessions: usize,
    seed: u64,
    controller: impl FnOnce(&AtomicUsize),
) -> TrafficReport {
    let next = AtomicUsize::new(0);
    let report = Mutex::new(TrafficReport {
        latencies_ms: Vec::with_capacity(sessions),
        mismatches: Vec::new(),
        hard_errors: Vec::new(),
        typed_errors: 0,
    });
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let next = &next;
            let report = &report;
            scope.spawn(move || {
                let opts = ClientOptions {
                    retry_submits: true,
                    retry: RetryPolicy::new(6, 10, seed ^ worker as u64),
                    default_deadline: Duration::from_secs(20),
                    ..ClientOptions::default()
                };
                let tenant = format!("tenant-{}", worker % TENANTS);
                let mut client = LimadClient::new_replicated(addrs, &tenant, opts);
                client.set_preferred(0);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= sessions {
                        return;
                    }
                    let script_idx = zipf(seed, i as u64, scripts.len());
                    let submit = SubmitOptions {
                        outputs: vec!["s".to_string()],
                        ..SubmitOptions::default()
                    };
                    let t0 = Instant::now();
                    let result = client.submit(&scripts[script_idx], &submit);
                    let ms = t0.elapsed().as_millis() as u64;
                    let mut r = report.lock().unwrap();
                    r.latencies_ms.push(ms);
                    match result {
                        Ok(done) => {
                            let got = done
                                .value("s")
                                .and_then(|v| v.as_f64().ok())
                                .unwrap_or(f64::NAN);
                            if !approx_eq(got, baseline[script_idx]) {
                                r.mismatches.push(format!(
                                    "session {i}: script {script_idx} returned {got}, baseline {}",
                                    baseline[script_idx]
                                ));
                            }
                        }
                        Err(e) if e.code().is_some() => r.typed_errors += 1,
                        Err(e) => r.hard_errors.push(format!("session {i}: {e}")),
                    }
                }
            });
        }
        controller(&next);
    });
    report.into_inner().unwrap()
}

/// Blocks until the shared session counter reaches `target`.
fn wait_progress(next: &AtomicUsize, target: usize) {
    while next.load(Ordering::Relaxed) < target {
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Config for an in-process replica group member template: memory-only (the
/// replication scenarios study availability, not persistence), background
/// scrub off, default replication options.
fn group_config(shards: usize) -> LimadConfig {
    LimadConfig {
        shards,
        scrub_interval_ms: 0,
        repl: Some(ReplOptions::default()),
        ..LimadConfig::default()
    }
}

/// Polls until both members of a 2-replica group vouch for the identical
/// non-empty keyspace; returns how long convergence took.
fn await_convergence(group: &ReplicaGroup, timeout: Duration) -> Result<u64, String> {
    let t0 = Instant::now();
    loop {
        let done = match (group.get(0), group.get(1)) {
            (Some(a), Some(b)) => {
                let ha = a.keyspace_hashes();
                !ha.is_empty() && ha == b.keyspace_hashes()
            }
            _ => false,
        };
        if done {
            return Ok(t0.elapsed().as_millis() as u64);
        }
        if t0.elapsed() >= timeout {
            // Dump the replication counters so a CI failure is diagnosable
            // from the log alone.
            if let (Some(a), Some(b)) = (group.get(0), group.get(1)) {
                let ha = a.keyspace_hashes();
                let hb = b.keyspace_hashes();
                let only_a = ha.iter().filter(|h| !hb.contains(h)).count();
                let only_b = hb.iter().filter(|h| !ha.contains(h)).count();
                for (name, s) in [("m0", a.server_stats()), ("m1", b.server_stats())] {
                    eprintln!(
                        "chaos: convergence stall: {name} keys={} ae_rounds={} ae_pulled={} \
                         repl_applied={} repl_rejected={}",
                        if name == "m0" { ha.len() } else { hb.len() },
                        LimaStats::get(&s.ae_rounds),
                        LimaStats::get(&s.ae_pulled),
                        LimaStats::get(&s.repl_applied),
                        LimaStats::get(&s.repl_rejected),
                    );
                }
                eprintln!("chaos: convergence stall: only_m0={only_a} only_m1={only_b}");
            }
            return Err(format!(
                "anti-entropy did not converge within {}ms",
                timeout.as_millis()
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One seeded run of the steady-state scenarios (everything but
/// crash-restart). Returns an error string on any invariant violation.
fn run_steady(args: &Args, seed: u64) -> Result<BenchRecord, String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;

    let mut template = LimaConfig::lima();
    template.faults = injector_for(args.fault, seed);
    let server = Server::start(LimadConfig {
        shards: args.shards,
        template,
        ..LimadConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;

    let t0 = Instant::now();
    let report = drive_traffic(&server, &scripts, &baseline, args.sessions, seed);
    let wall = t0.elapsed();

    if !report.mismatches.is_empty() {
        return Err(format!(
            "{} baseline mismatches, first: {}",
            report.mismatches.len(),
            report.mismatches[0]
        ));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!(
            "{} hard errors, first: {}",
            report.hard_errors.len(),
            report.hard_errors[0]
        ));
    }
    let mut sorted = report.latencies_ms.clone();
    sorted.sort_unstable();
    let (p50, p99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));
    if p99 > args.p99_cap_ms {
        return Err(format!("p99 {p99}ms exceeds cap {}ms", args.p99_cap_ms));
    }
    scrape_metrics(&server)?;

    let drops = LimaStats::get(&server.server_stats().srv_conn_drops);
    println!(
        "chaos: seed={seed} fault={} sessions={} ok p50={p50}ms p99={p99}ms \
         typed_errors={} conn_drops={drops} wall={}ms",
        args.fault.as_str(),
        args.sessions,
        report.typed_errors,
        wall.as_millis()
    );
    Ok(BenchRecord::from_report(seed, &report))
}

/// Crash-restart: phase 1 persists under injected crash points (the WAL
/// append tears mid-record on one shard), phase 2 restarts over the same
/// directory and must recover warm — values stay baseline-equal and at least
/// one request is served from a recovered entry.
fn run_crash_restart(args: &Args, seed: u64) -> Result<(), String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;
    let dir = std::env::temp_dir().join(format!("lima-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: serve with a crash injected mid-WAL-append. The store that
    // draws the torn append latches crashed and stops persisting; everything
    // keeps serving from memory.
    let mut template = LimaConfig::lima();
    template.faults = Some(Arc::new(
        FaultInjector::new(seed).fail_at(FaultSite::PersistWalAppend, &[4 + seed % 3]),
    ));
    let first = Server::start(LimadConfig {
        shards: args.shards,
        template,
        persist_root: Some(dir.clone()),
        ..LimadConfig::default()
    })
    .map_err(|e| format!("phase-1 start: {e}"))?;
    let report = drive_traffic(&first, &scripts, &baseline, args.sessions, seed);
    if !report.mismatches.is_empty() {
        return Err(format!(
            "phase 1: {} baseline mismatches under torn WAL, first: {}",
            report.mismatches.len(),
            report.mismatches[0]
        ));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("phase 1: hard error: {}", report.hard_errors[0]));
    }
    let writes: u64 = first
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_writes))
        .sum();
    if writes == 0 {
        return Err("phase 1 persisted nothing; crash-restart proves nothing".into());
    }
    first.shutdown();

    // Phase 2: a fresh process over the same directory. Recovery must
    // tolerate the torn tail, warm at least one shard, and serve re-runs
    // from recovered entries.
    let second = Server::start(LimadConfig {
        shards: args.shards,
        template: LimaConfig::lima(),
        persist_root: Some(dir.clone()),
        ..LimadConfig::default()
    })
    .map_err(|e| format!("phase-2 start: {e}"))?;
    let warm = second
        .shards()
        .iter()
        .filter(|s| s.state() == ShardState::Warm)
        .count();
    if warm == 0 {
        return Err("phase 2: no shard recovered WAL entries".into());
    }
    let report = drive_traffic(&second, &scripts, &baseline, args.sessions, seed ^ 0xC0DE);
    if !report.mismatches.is_empty() {
        return Err(format!(
            "phase 2: recovered values diverge from baseline: {}",
            report.mismatches[0]
        ));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("phase 2: hard error: {}", report.hard_errors[0]));
    }
    let persist_hits: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_hits))
        .sum();
    if persist_hits == 0 {
        return Err("phase 2: warm restart served zero persist hits".into());
    }
    scrape_metrics(&second)?;
    println!(
        "chaos: seed={seed} fault=crash-restart sessions={} ok warm_shards={warm} \
         persist_writes={writes} persist_hits={persist_hits}",
        args.sessions
    );
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Flips one bit mid-file in every committed value file under every
/// `shard-*/values` directory. Returns how many files were corrupted.
fn flip_value_files(root: &std::path::Path) -> Result<usize, String> {
    let mut flipped = 0;
    let shards = std::fs::read_dir(root).map_err(|e| format!("read {root:?}: {e}"))?;
    for shard in shards.flatten() {
        let values = shard.path().join("values");
        let Ok(entries) = std::fs::read_dir(&values) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("val") {
                continue;
            }
            let mut raw = std::fs::read(&path).map_err(|e| format!("read {path:?}: {e}"))?;
            if raw.is_empty() {
                continue;
            }
            let mid = raw.len() / 2;
            raw[mid] ^= 0x01;
            std::fs::write(&path, &raw).map_err(|e| format!("write {path:?}: {e}"))?;
            flipped += 1;
        }
    }
    Ok(flipped)
}

/// Flips one bit mid-file in every shard's active (highest-generation)
/// manifest WAL. Returns how many WALs were corrupted.
fn flip_wal_frames(root: &std::path::Path) -> Result<usize, String> {
    let mut flipped = 0;
    let shards = std::fs::read_dir(root).map_err(|e| format!("read {root:?}: {e}"))?;
    for shard in shards.flatten() {
        let mut best: Option<(u64, std::path::PathBuf)> = None;
        let Ok(entries) = std::fs::read_dir(shard.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(g) = name
                .strip_prefix("manifest.")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                if best.as_ref().is_none_or(|(bg, _)| g > *bg) {
                    best = Some((g, entry.path()));
                }
            }
        }
        let Some((_, path)) = best else {
            continue;
        };
        let mut raw = std::fs::read(&path).map_err(|e| format!("read {path:?}: {e}"))?;
        if raw.is_empty() {
            continue;
        }
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        std::fs::write(&path, &raw).map_err(|e| format!("write {path:?}: {e}"))?;
        flipped += 1;
    }
    Ok(flipped)
}

/// Template for the corruption scenarios: multi-level reuse is disabled so
/// every persisted lineage is built from primitive ops and therefore
/// replayable by the repairer (opaque `fcall:` items are repair-ineligible
/// by design — see DESIGN.md §13).
fn repairable_template() -> LimaConfig {
    let mut template = LimaConfig::lima();
    template.multilevel = false;
    template
}

/// Corrupt-at-rest: warm a persistent server, bit-flip every committed value
/// file and every manifest WAL while the server keeps running, then drive a
/// scrub pass through the admin wire op. The scrubber must detect every
/// flip, repair it — values from lineage, WALs by compacting into a fresh
/// generation — and the served values must stay baseline-equal.
fn run_corrupt_at_rest(args: &Args, seed: u64) -> Result<(), String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;
    let dir = std::env::temp_dir().join(format!("lima-chaos-car-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Background scrubbing is off: the admin wire op is the only scrubber,
    // so the per-pass counters below are deterministic.
    let server = Server::start(LimadConfig {
        shards: args.shards,
        template: repairable_template(),
        persist_root: Some(dir.clone()),
        scrub_interval_ms: 0,
        ..LimadConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;

    let report = drive_traffic(&server, &scripts, &baseline, args.sessions, seed);
    if !report.mismatches.is_empty() {
        return Err(format!("warm-up mismatch: {}", report.mismatches[0]));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("warm-up hard error: {}", report.hard_errors[0]));
    }
    let writes: u64 = server
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_writes))
        .sum();
    if writes == 0 {
        return Err("warm-up persisted nothing; corruption proves nothing".into());
    }

    let flipped = flip_value_files(&dir)?;
    if flipped == 0 {
        return Err("no value files found to corrupt".into());
    }
    // Damage the WALs themselves too: every live record is resident, so the
    // scrubber heals a bad frame by compacting into a fresh generation.
    let flipped_wals = flip_wal_frames(&dir)?;
    if flipped_wals == 0 {
        return Err("no manifest WALs found to corrupt".into());
    }

    let mut admin = LimadClient::new(
        &server.addr().to_string(),
        "chaos-admin",
        ClientOptions {
            default_deadline: Duration::from_secs(60),
            ..ClientOptions::default()
        },
    );
    let reports = admin.scrub().map_err(|e| format!("scrub rpc: {e}"))?;
    let corrupt: u64 = reports.iter().map(|r| r.corrupt).sum();
    let repaired: u64 = reports.iter().map(|r| r.repaired).sum();
    let repair_failures: u64 = reports.iter().map(|r| r.repair_failures).sum();
    let quarantined: u64 = reports.iter().map(|r| r.quarantined).sum();
    if reports.iter().any(|r| !r.completed) {
        return Err("scrub pass did not complete a full sweep".into());
    }
    let expected = (flipped + flipped_wals) as u64;
    if corrupt < expected {
        return Err(format!(
            "scrub found {corrupt} corruptions but {flipped} value files and \
             {flipped_wals} WALs were flipped"
        ));
    }
    if repaired < corrupt || repair_failures > 0 || quarantined > 0 {
        return Err(format!(
            "scrub dropped entries instead of healing them: corrupt={corrupt} \
             repaired={repaired} repair_failures={repair_failures} quarantined={quarantined}"
        ));
    }

    // The healed cache must keep serving baseline-equal values with no
    // unexplained misses (every repaired entry is still resident).
    let report = drive_traffic(&server, &scripts, &baseline, args.sessions, seed ^ 0xBEEF);
    if !report.mismatches.is_empty() {
        return Err(format!("post-repair mismatch: {}", report.mismatches[0]));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("post-repair hard error: {}", report.hard_errors[0]));
    }
    let repairs: u64 = server
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_repairs))
        .sum();
    if repairs == 0 {
        return Err("no persist_repairs recorded despite corrupt files".into());
    }
    scrape_metrics(&server)?;
    println!(
        "chaos: seed={seed} fault=corrupt-at-rest sessions={} ok flipped={flipped} \
         flipped_wals={flipped_wals} corrupt={corrupt} repaired={repaired}",
        args.sessions
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Corrupt-restart: warm a persistent server, shut it down, bit-flip every
/// committed value file offline, restart over the same directory. Recovery
/// verifies checksums eagerly, so every flip must be found and repaired from
/// lineage at startup — shards come up warm with nothing dropped.
fn run_corrupt_restart(args: &Args, seed: u64) -> Result<(), String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;
    let dir = std::env::temp_dir().join(format!("lima-chaos-cr-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let first = Server::start(LimadConfig {
        shards: args.shards,
        template: repairable_template(),
        persist_root: Some(dir.clone()),
        scrub_interval_ms: 0,
        ..LimadConfig::default()
    })
    .map_err(|e| format!("phase-1 start: {e}"))?;
    let report = drive_traffic(&first, &scripts, &baseline, args.sessions, seed);
    if !report.mismatches.is_empty() {
        return Err(format!("phase 1 mismatch: {}", report.mismatches[0]));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("phase 1 hard error: {}", report.hard_errors[0]));
    }
    let writes: u64 = first
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_writes))
        .sum();
    if writes == 0 {
        return Err("phase 1 persisted nothing; corruption proves nothing".into());
    }
    first.shutdown();

    let flipped = flip_value_files(&dir)?;
    if flipped == 0 {
        return Err("no value files found to corrupt".into());
    }

    let second = Server::start(LimadConfig {
        shards: args.shards,
        template: repairable_template(),
        persist_root: Some(dir.clone()),
        scrub_interval_ms: 0,
        ..LimadConfig::default()
    })
    .map_err(|e| format!("phase-2 start: {e}"))?;
    let warm = second
        .shards()
        .iter()
        .filter(|s| s.state() == ShardState::Warm)
        .count();
    if warm == 0 {
        return Err("phase 2: no shard recovered after corruption".into());
    }
    let repairs: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_repairs))
        .sum();
    let repair_failures: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_repair_failures))
        .sum();
    let dropped: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_dropped))
        .sum();
    if repairs < flipped as u64 {
        return Err(format!(
            "recovery repaired {repairs} of {flipped} corrupted values"
        ));
    }
    if repair_failures > 0 || dropped > 0 {
        return Err(format!(
            "recovery dropped entries instead of healing them: repairs={repairs} \
             repair_failures={repair_failures} dropped={dropped}"
        ));
    }
    let report = drive_traffic(&second, &scripts, &baseline, args.sessions, seed ^ 0xC0DE);
    if !report.mismatches.is_empty() {
        return Err(format!("phase 2 mismatch: {}", report.mismatches[0]));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("phase 2 hard error: {}", report.hard_errors[0]));
    }
    let persist_hits: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_hits))
        .sum();
    if persist_hits == 0 {
        return Err("phase 2 served zero persist hits after repair".into());
    }
    scrape_metrics(&second)?;
    println!(
        "chaos: seed={seed} fault=corrupt-restart sessions={} ok warm_shards={warm} \
         flipped={flipped} repairs={repairs} persist_hits={persist_hits}",
        args.sessions
    );
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Replica-kill: a 2-member group serves zipf traffic while member 0 (every
/// client's preferred member) is killed at ~25% progress and restarted at
/// ~60%. Health-gated failover must absorb the outage with zero hard errors
/// and zero baseline mismatches, and anti-entropy must refill the restarted
/// (memory-only, therefore empty) member until both keyspaces match.
fn run_replica_kill(args: &Args, seed: u64) -> Result<BenchRecord, String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;
    let mut group = ReplicaGroup::start(&group_config(args.shards), 2)
        .map_err(|e| format!("group start: {e}"))?;
    let addrs = group.addrs();
    let sessions = args.sessions;

    let mut restart_err = None;
    let report = drive_replicated(&addrs, &scripts, &baseline, sessions, seed, |next| {
        wait_progress(next, sessions / 4);
        group.kill(0);
        wait_progress(next, sessions * 3 / 5);
        restart_err = group.restart(0).err();
    });
    if let Some(e) = restart_err {
        return Err(format!("member 0 restart: {e}"));
    }
    if !report.mismatches.is_empty() {
        return Err(format!(
            "{} baseline mismatches across the kill, first: {}",
            report.mismatches.len(),
            report.mismatches[0]
        ));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!(
            "{} client-visible failures across the kill, first: {}",
            report.hard_errors.len(),
            report.hard_errors[0]
        ));
    }
    let convergence_ms = await_convergence(&group, Duration::from_secs(30))?;
    let mut record = BenchRecord::from_report(seed, &report);
    record.convergence_ms = convergence_ms;
    if record.p99_ms > args.p99_cap_ms {
        return Err(format!(
            "p99 {}ms exceeds cap {}ms",
            record.p99_ms, args.p99_cap_ms
        ));
    }
    scrape_replicated(group.get(1).expect("member 1 never killed"), 0)?;
    println!(
        "chaos: seed={seed} fault=replica-kill sessions={sessions} ok p50={}ms p99={}ms \
         availability={:.2}% typed_errors={} convergence={convergence_ms}ms",
        record.p50_ms, record.p99_ms, record.availability_pct, report.typed_errors
    );
    group.shutdown();
    Ok(record)
}

/// Partition: phase A replicates normally, then both members' replication
/// machinery is paused (writes dropped, anti-entropy stalled) while phase B
/// drives a *fresh* corpus into member 0 only — the members diverge with no
/// client-visible failures. Lifting the partition must reconverge them.
fn run_partition(args: &Args, seed: u64) -> Result<BenchRecord, String> {
    let scripts_a = corpus(seed);
    let baseline_a = baseline_for(&scripts_a)?;
    let scripts_b = corpus(seed ^ 0xD1FF);
    let baseline_b = baseline_for(&scripts_b)?;
    let group = ReplicaGroup::start(&group_config(args.shards), 2)
        .map_err(|e| format!("group start: {e}"))?;
    let addrs = group.addrs();
    let half = (args.sessions / 2).max(1);

    let report_a = drive_replicated(&addrs, &scripts_a, &baseline_a, half, seed, |_| {});
    if !report_a.mismatches.is_empty() || !report_a.hard_errors.is_empty() {
        return Err(format!(
            "healthy phase failed: {:?} {:?}",
            report_a.mismatches.first(),
            report_a.hard_errors.first()
        ));
    }

    let member0 = group.get(0).expect("member 0 live");
    let member1 = group.get(1).expect("member 1 live");
    let repl0 = member0.replicator().expect("replication configured");
    let repl1 = member1.replicator().expect("replication configured");
    repl0.pause(true);
    repl1.pause(true);

    let report_b = drive_replicated(&addrs, &scripts_b, &baseline_b, half, seed ^ 0xFEED, |_| {});
    if !report_b.mismatches.is_empty() || !report_b.hard_errors.is_empty() {
        return Err(format!(
            "partitioned phase failed: {:?} {:?}",
            report_b.mismatches.first(),
            report_b.hard_errors.first()
        ));
    }
    let dropped_sends = LimaStats::get(&member0.server_stats().repl_send_failures);
    if dropped_sends == 0 {
        return Err("partition dropped no outbound replication; it proved nothing".into());
    }
    if member0.keyspace_hashes() == member1.keyspace_hashes() {
        return Err("members did not diverge under the partition".into());
    }

    repl0.pause(false);
    repl1.pause(false);
    let convergence_ms = await_convergence(&group, Duration::from_secs(30))?;

    let mut all = TrafficReport {
        latencies_ms: report_a.latencies_ms,
        mismatches: Vec::new(),
        hard_errors: Vec::new(),
        typed_errors: report_a.typed_errors + report_b.typed_errors,
    };
    all.latencies_ms.extend(report_b.latencies_ms);
    let mut record = BenchRecord::from_report(seed, &all);
    record.convergence_ms = convergence_ms;
    if record.p99_ms > args.p99_cap_ms {
        return Err(format!(
            "p99 {}ms exceeds cap {}ms",
            record.p99_ms, args.p99_cap_ms
        ));
    }
    scrape_replicated(member0, 1)?;
    println!(
        "chaos: seed={seed} fault=partition sessions={} ok p50={}ms p99={}ms \
         availability={:.2}% dropped_sends={dropped_sends} convergence={convergence_ms}ms",
        half * 2,
        record.p50_ms,
        record.p99_ms,
        record.availability_pct
    );
    group.shutdown();
    Ok(record)
}

/// Hedge: member 0 stalls [`lima_core::faults::SLOW_SHARD_DELAY_MS`] on every
/// shard touch; member 1 is healthy. Fetches prefer the slow member, so
/// every read eats the stall unless the hedge leg rescues it. The hedged
/// p99 must stay near the healthy baseline — far below the stall — and at
/// least one hedge must actually win.
fn run_hedge(args: &Args, seed: u64) -> Result<BenchRecord, String> {
    const FETCHES: usize = 80;
    let p = 1 + mix_seed(seed) % 7;
    let script = format!("X = matrix({p}, 60, 10);\nG = t(X) %*% X;\ns = sum(G);\n");
    let slow_shards: Vec<u64> = (0..args.shards as u64).collect();
    let group = ReplicaGroup::start_with(&group_config(args.shards), 2, |i, cfg| {
        if i == 0 {
            cfg.template.faults = Some(Arc::new(
                FaultInjector::new(seed).fail_at(FaultSite::SlowShard, &slow_shards),
            ));
        }
    })
    .map_err(|e| format!("group start: {e}"))?;
    let addrs = group.addrs();

    // Warm member 1 and compute the expected value + lineage locally.
    let local = run_script(&script, &LimaConfig::lima(), &[])
        .map_err(|e| format!("local baseline: {e:?}"))?;
    let expected = local.value("G").clone();
    let lineage = serialize_lineage(local.ctx.lineage.get("G").expect("G traced"));
    let mut warm = LimadClient::new(
        &addrs[1],
        "hedge-warm",
        ClientOptions {
            default_deadline: Duration::from_secs(20),
            ..ClientOptions::default()
        },
    );
    warm.submit(
        &script,
        &SubmitOptions {
            outputs: vec!["s".to_string()],
            ..SubmitOptions::default()
        },
    )
    .map_err(|e| format!("warm-up submit: {e}"))?;

    // Wait for write replication to copy G onto the slow member, so both
    // hedge legs have the value resident.
    let t0 = Instant::now();
    let mut slow_probe = LimadClient::new(&addrs[0], "hedge-probe", ClientOptions::default());
    while !matches!(slow_probe.fetch(&lineage), Ok(Some(_))) {
        if t0.elapsed() > Duration::from_secs(15) {
            return Err("replication never copied G to the slow member".into());
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let convergence_ms = t0.elapsed().as_millis() as u64;

    // Healthy baseline: reads pinned to the fast member, no hedging.
    let mut healthy = LimadClient::new(&addrs[1], "hedge-base", ClientOptions::default());
    let mut baseline_ms = Vec::with_capacity(FETCHES);
    for _ in 0..FETCHES {
        let t = Instant::now();
        let got = healthy
            .fetch(&lineage)
            .map_err(|e| format!("baseline fetch: {e}"))?
            .ok_or("baseline fetch missed")?;
        baseline_ms.push(t.elapsed().as_millis() as u64);
        if got.as_matrix().ok().map(|m| m.data()) != expected.as_matrix().ok().map(|m| m.data()) {
            return Err("baseline fetch returned a divergent value".into());
        }
    }

    // Hedged reads preferring the slow member, fixed 10ms hedge delay (far
    // under the stall) so the run is deterministic across machines.
    let mut hedged = LimadClient::new_replicated(
        &addrs,
        "hedge-reader",
        ClientOptions {
            hedge_delay: Some(Duration::from_millis(10)),
            ..ClientOptions::default()
        },
    );
    hedged.set_preferred(0);
    let mut hedged_ms = Vec::with_capacity(FETCHES);
    for _ in 0..FETCHES {
        let t = Instant::now();
        let got = hedged
            .fetch(&lineage)
            .map_err(|e| format!("hedged fetch: {e}"))?
            .ok_or("hedged fetch missed")?;
        hedged_ms.push(t.elapsed().as_millis() as u64);
        if got.as_matrix().ok().map(|m| m.data()) != expected.as_matrix().ok().map(|m| m.data()) {
            return Err("hedged fetch returned a divergent value".into());
        }
    }

    baseline_ms.sort_unstable();
    hedged_ms.sort_unstable();
    let baseline_p99 = percentile(&baseline_ms, 0.99);
    let (p50, p99) = (percentile(&hedged_ms, 0.50), percentile(&hedged_ms, 0.99));
    let stats = hedged.stats();
    if stats.hedges_won == 0 {
        return Err(format!(
            "no hedge ever won against the slow member (fired={})",
            stats.hedges_fired
        ));
    }
    // The interesting bound: hedged reads must sit near the healthy baseline
    // and under the injected stall every un-hedged read would eat. The floor
    // absorbs the hedge delay plus the server's 25ms accept-poll tick (hedge
    // legs are one-shot connections) plus scheduler jitter, and still sits
    // below the 50ms stall.
    let cap = (2 * baseline_p99).max(45);
    if p99 > cap {
        return Err(format!(
            "hedged p99 {p99}ms exceeds {cap}ms (healthy baseline p99 {baseline_p99}ms)"
        ));
    }
    println!(
        "chaos: seed={seed} fault=hedge fetches={FETCHES} ok baseline_p99={baseline_p99}ms \
         hedged_p50={p50}ms hedged_p99={p99}ms hedges_fired={} hedges_won={}",
        stats.hedges_fired, stats.hedges_won
    );
    let record = BenchRecord {
        seed,
        p50_ms: p50,
        p99_ms: p99,
        availability_pct: 100.0,
        convergence_ms,
        hedges_won: stats.hedges_won,
    };
    group.shutdown();
    Ok(record)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "chaos: {e}\nusage: chaos [--fault none|conn-drop|slow-shard|crash-restart\
                 |corrupt-at-rest|corrupt-restart|replica-kill|partition|hedge|all] \
                 [--sessions N] [--shards N] [--seed S] [--p99-cap-ms MS] [--bench-out PATH]"
            );
            return ExitCode::from(2);
        }
    };
    let t0 = Instant::now();
    let mut records = Vec::with_capacity(args.seeds.len());
    for &seed in &args.seeds {
        let result = match args.fault {
            Fault::CrashRestart => run_crash_restart(&args, seed).map(|()| None),
            Fault::CorruptAtRest => run_corrupt_at_rest(&args, seed).map(|()| None),
            Fault::CorruptRestart => run_corrupt_restart(&args, seed).map(|()| None),
            Fault::ReplicaKill => run_replica_kill(&args, seed).map(Some),
            Fault::Partition => run_partition(&args, seed).map(Some),
            Fault::Hedge => run_hedge(&args, seed).map(Some),
            _ => run_steady(&args, seed).map(Some),
        };
        match result {
            Ok(Some(record)) => records.push(record),
            Ok(None) => {}
            Err(e) => {
                eprintln!("chaos: FAIL seed={seed} fault={}: {e}", args.fault.as_str());
                return ExitCode::from(1);
            }
        }
    }
    if let Some(path) = &args.bench_out {
        if let Err(e) = std::fs::write(path, bench_json(args.fault, &records)) {
            eprintln!("chaos: cannot write bench output {}: {e}", path.display());
            return ExitCode::from(1);
        }
        println!(
            "chaos: wrote {} bench record(s) to {}",
            records.len(),
            path.display()
        );
    }
    println!(
        "chaos: all {} seed(s) passed fault={} in {}ms",
        args.seeds.len(),
        args.fault.as_str(),
        t0.elapsed().as_millis()
    );
    ExitCode::SUCCESS
}
