//! Chaos harness for `limad`: hundreds of concurrent zipf-skewed sessions
//! across tenants, with deterministic fault injection at the service's
//! sites (connection drops, a slow shard, crash mid-WAL-append), asserting
//! two invariants that must hold under every fault plan:
//!
//! 1. **Baseline equivalence** — every value the service returns is equal to
//!    the same script executed in-process with no service and no faults.
//! 2. **Bounded tails** — no request hangs; p99 latency stays under a cap
//!    (generous by default, tightened in CI), and typed overload/deadline
//!    errors are the only acceptable non-successes.
//!
//! Scenarios (`--fault`): `none`, `conn-drop`, `slow-shard`, `crash-restart`,
//! `corrupt-at-rest` (bit-flips committed value files under a live server and
//! requires the scrubber to repair them from lineage), `corrupt-restart`
//! (corrupts the directory between runs and requires recovery-time repair),
//! `all` (conn-drop + slow-shard; the persistence faults run as their own
//! phases).
//! Seeds come from `--seed` or the comma-separated `LIMA_FAULT_SEEDS`
//! environment variable (the CI contract); every trigger decision is a pure
//! function of the seed, so a failing run replays bit-identically.
//!
//! Exit codes: 0 success, 1 invariant violation, 2 usage error.

use lima_algos::runner::run_script;
use lima_client::{ClientOptions, LimadClient, SubmitOptions};
use lima_core::faults::{FaultInjector, FaultSite};
use lima_core::resilience::RetryPolicy;
use lima_core::{LimaConfig, LimaStats};
use limad::{LimadConfig, Server, ShardState};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TENANTS: usize = 4;
const WORKERS: usize = 12;

/// splitmix64 finalizer — the deterministic mixer behind zipf draws and
/// per-seed corpus parameters.
fn mix_seed(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    ConnDrop,
    SlowShard,
    CrashRestart,
    CorruptAtRest,
    CorruptRestart,
    All,
}

impl Fault {
    fn parse(s: &str) -> Option<Fault> {
        match s {
            "none" => Some(Fault::None),
            "conn-drop" => Some(Fault::ConnDrop),
            "slow-shard" => Some(Fault::SlowShard),
            "crash-restart" => Some(Fault::CrashRestart),
            "corrupt-at-rest" => Some(Fault::CorruptAtRest),
            "corrupt-restart" => Some(Fault::CorruptRestart),
            "all" => Some(Fault::All),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::ConnDrop => "conn-drop",
            Fault::SlowShard => "slow-shard",
            Fault::CrashRestart => "crash-restart",
            Fault::CorruptAtRest => "corrupt-at-rest",
            Fault::CorruptRestart => "corrupt-restart",
            Fault::All => "all",
        }
    }
}

struct Args {
    fault: Fault,
    sessions: usize,
    shards: usize,
    seeds: Vec<u64>,
    p99_cap_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut fault = Fault::All;
    let mut sessions = 200usize;
    let mut shards = 4usize;
    let mut seed: Option<u64> = None;
    let mut p99_cap_ms = 10_000u64;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut need = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--fault" => {
                let v = need("--fault")?;
                fault = Fault::parse(&v).ok_or(format!("unknown fault scenario '{v}'"))?;
            }
            "--sessions" => {
                sessions = need("--sessions")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--shards" => shards = need("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = Some(need("--seed")?.parse().map_err(|e| format!("{e}"))?),
            "--p99-cap-ms" => {
                p99_cap_ms = need("--p99-cap-ms")?.parse().map_err(|e| format!("{e}"))?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    // --seed wins; otherwise the CI contract: LIMA_FAULT_SEEDS=1,2,3,4,5.
    let seeds = match seed {
        Some(s) => vec![s],
        None => match std::env::var("LIMA_FAULT_SEEDS") {
            Ok(raw) => raw
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| s.trim().parse().map_err(|e| format!("bad seed '{s}': {e}")))
                .collect::<Result<Vec<u64>, String>>()?,
            Err(_) => vec![7],
        },
    };
    if seeds.is_empty() {
        return Err("no seeds given".into());
    }
    Ok(Args {
        fault,
        sessions,
        shards,
        seeds,
        p99_cap_ms,
    })
}

/// The script corpus: parameterized templates instantiated per seed. Every
/// script is self-contained and deterministic, so the in-process baseline is
/// exact.
fn corpus(seed: u64) -> Vec<String> {
    let mut scripts = Vec::new();
    for i in 0..4u64 {
        let p = 1 + (mix_seed(seed ^ i) % 7);
        scripts.push(format!(
            "X = matrix({p}, 40, 12);\nG = t(X) %*% X;\ns = sum(G);\n"
        ));
        scripts.push(format!(
            "X = matrix(2, 30, 30);\nY = X + {p};\nZ = Y * 2;\ns = sum(Z - X);\n"
        ));
        scripts.push(format!(
            "acc = 0;\nfor (i in 1:{n}) {{\n  acc = acc + i * {p};\n}}\ns = acc;\n",
            n = 50 + p * 10
        ));
        scripts.push(format!(
            "X = matrix({p}, 25, 25);\ns = sum(t(X) %*% X) + {p};\n"
        ));
        scripts.push(format!(
            "X = matrix(3, 50, 8);\nY = X + {p};\ns = sum(X + Y);\n"
        ));
        scripts.push(format!(
            "X = matrix({p}, 20, 20);\nA = X * 3;\nB = A - X;\ns = sum(B) + sum(A);\n"
        ));
    }
    scripts
}

/// Zipf-skewed index over `n` items (exponent ~1.1): item 0 is hottest, the
/// tail is long. Deterministic in (seed, draw index).
fn zipf(seed: u64, draw: u64, n: usize) -> usize {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(1.1)).collect();
    let total: f64 = weights.iter().sum();
    let u = (mix_seed(seed ^ mix_seed(draw)) >> 11) as f64 / (1u64 << 53) as f64;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w / total;
        if u < acc {
            return i;
        }
    }
    n - 1
}

fn injector_for(fault: Fault, seed: u64) -> Option<Arc<FaultInjector>> {
    let inj = match fault {
        Fault::None | Fault::CrashRestart | Fault::CorruptAtRest | Fault::CorruptRestart => {
            return None
        }
        Fault::ConnDrop => {
            FaultInjector::new(seed).fail_with_probability(FaultSite::ConnDrop, 0.05)
        }
        // Exactly one shard is slow; which one rotates with the seed.
        Fault::SlowShard => FaultInjector::new(seed).fail_at(FaultSite::SlowShard, &[seed % 4]),
        Fault::All => FaultInjector::new(seed)
            .fail_with_probability(FaultSite::ConnDrop, 0.05)
            .fail_at(FaultSite::SlowShard, &[seed % 4]),
    };
    Some(Arc::new(inj))
}

/// Runs every script in-process (no service, no faults) and returns the
/// expected `s` values — the oracle every served result is checked against.
fn baseline_for(scripts: &[String]) -> Result<Vec<f64>, String> {
    scripts
        .iter()
        .map(|s| {
            run_script(s, &LimaConfig::lima(), &[])
                .map_err(|e| format!("baseline failed: {e:?}"))?
                .value("s")
                .as_f64()
                .map_err(|e| format!("baseline output: {e:?}"))
        })
        .collect()
}

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Scrapes `/metrics` over raw HTTP and sanity-checks the exposition.
fn scrape_metrics(server: &Server) -> Result<(), String> {
    let mut stream = TcpStream::connect(server.metrics_addr()).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .map_err(|e| e.to_string())?;
    let mut body = String::new();
    stream
        .read_to_string(&mut body)
        .map_err(|e| e.to_string())?;
    if !body.starts_with("HTTP/1.0 200") {
        return Err(format!(
            "scrape did not return 200: {:?}",
            body.lines().next()
        ));
    }
    for needle in [
        "lima_total_hits",
        "lima_srv_requests",
        "limad_shard_state{shard=\"0\"}",
    ] {
        if !body.contains(needle) {
            return Err(format!("scrape output missing '{needle}'"));
        }
    }
    Ok(())
}

struct TrafficReport {
    latencies_ms: Vec<u64>,
    mismatches: Vec<String>,
    hard_errors: Vec<String>,
    typed_errors: usize,
}

/// Drives `sessions` zipf-sampled submits from `WORKERS` client threads
/// against a running server and checks every returned value against the
/// baseline. Typed Overloaded/DeadlineExceeded responses are tolerated
/// (counted); anything else — transport errors included, the client retries
/// those itself — is a hard failure.
fn drive_traffic(
    server: &Server,
    scripts: &[String],
    baseline: &[f64],
    sessions: usize,
    seed: u64,
) -> TrafficReport {
    let addr = server.addr().to_string();
    let next = AtomicUsize::new(0);
    let report = Mutex::new(TrafficReport {
        latencies_ms: Vec::with_capacity(sessions),
        mismatches: Vec::new(),
        hard_errors: Vec::new(),
        typed_errors: 0,
    });
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let addr = &addr;
            let next = &next;
            let report = &report;
            scope.spawn(move || {
                let opts = ClientOptions {
                    // Scripts are deterministic and idempotent, so retrying a
                    // submit after an injected connection drop is safe here.
                    retry_submits: true,
                    retry: RetryPolicy::new(5, 10, seed ^ worker as u64),
                    default_deadline: Duration::from_secs(20),
                    ..ClientOptions::default()
                };
                let tenant = format!("tenant-{}", worker % TENANTS);
                let mut client = LimadClient::new(addr, &tenant, opts);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= sessions {
                        return;
                    }
                    let script_idx = zipf(seed, i as u64, scripts.len());
                    let submit = SubmitOptions {
                        outputs: vec!["s".to_string()],
                        ..SubmitOptions::default()
                    };
                    let t0 = Instant::now();
                    let result = client.submit(&scripts[script_idx], &submit);
                    let ms = t0.elapsed().as_millis() as u64;
                    let mut r = report.lock().unwrap();
                    r.latencies_ms.push(ms);
                    match result {
                        Ok(done) => {
                            let got = done
                                .value("s")
                                .and_then(|v| v.as_f64().ok())
                                .unwrap_or(f64::NAN);
                            if !approx_eq(got, baseline[script_idx]) {
                                r.mismatches.push(format!(
                                    "session {i}: script {script_idx} returned {got}, baseline {}",
                                    baseline[script_idx]
                                ));
                            }
                        }
                        Err(e) if e.code().is_some() => r.typed_errors += 1,
                        Err(e) => r.hard_errors.push(format!("session {i}: {e}")),
                    }
                }
            });
        }
    });
    report.into_inner().unwrap()
}

/// One seeded run of the steady-state scenarios (everything but
/// crash-restart). Returns an error string on any invariant violation.
fn run_steady(args: &Args, seed: u64) -> Result<(), String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;

    let mut template = LimaConfig::lima();
    template.faults = injector_for(args.fault, seed);
    let server = Server::start(LimadConfig {
        shards: args.shards,
        template,
        ..LimadConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;

    let t0 = Instant::now();
    let report = drive_traffic(&server, &scripts, &baseline, args.sessions, seed);
    let wall = t0.elapsed();

    if !report.mismatches.is_empty() {
        return Err(format!(
            "{} baseline mismatches, first: {}",
            report.mismatches.len(),
            report.mismatches[0]
        ));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!(
            "{} hard errors, first: {}",
            report.hard_errors.len(),
            report.hard_errors[0]
        ));
    }
    let mut sorted = report.latencies_ms.clone();
    sorted.sort_unstable();
    let (p50, p99) = (percentile(&sorted, 0.50), percentile(&sorted, 0.99));
    if p99 > args.p99_cap_ms {
        return Err(format!("p99 {p99}ms exceeds cap {}ms", args.p99_cap_ms));
    }
    scrape_metrics(&server)?;

    let drops = LimaStats::get(&server.server_stats().srv_conn_drops);
    println!(
        "chaos: seed={seed} fault={} sessions={} ok p50={p50}ms p99={p99}ms \
         typed_errors={} conn_drops={drops} wall={}ms",
        args.fault.as_str(),
        args.sessions,
        report.typed_errors,
        wall.as_millis()
    );
    Ok(())
}

/// Crash-restart: phase 1 persists under injected crash points (the WAL
/// append tears mid-record on one shard), phase 2 restarts over the same
/// directory and must recover warm — values stay baseline-equal and at least
/// one request is served from a recovered entry.
fn run_crash_restart(args: &Args, seed: u64) -> Result<(), String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;
    let dir = std::env::temp_dir().join(format!("lima-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: serve with a crash injected mid-WAL-append. The store that
    // draws the torn append latches crashed and stops persisting; everything
    // keeps serving from memory.
    let mut template = LimaConfig::lima();
    template.faults = Some(Arc::new(
        FaultInjector::new(seed).fail_at(FaultSite::PersistWalAppend, &[4 + seed % 3]),
    ));
    let first = Server::start(LimadConfig {
        shards: args.shards,
        template,
        persist_root: Some(dir.clone()),
        ..LimadConfig::default()
    })
    .map_err(|e| format!("phase-1 start: {e}"))?;
    let report = drive_traffic(&first, &scripts, &baseline, args.sessions, seed);
    if !report.mismatches.is_empty() {
        return Err(format!(
            "phase 1: {} baseline mismatches under torn WAL, first: {}",
            report.mismatches.len(),
            report.mismatches[0]
        ));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("phase 1: hard error: {}", report.hard_errors[0]));
    }
    let writes: u64 = first
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_writes))
        .sum();
    if writes == 0 {
        return Err("phase 1 persisted nothing; crash-restart proves nothing".into());
    }
    first.shutdown();

    // Phase 2: a fresh process over the same directory. Recovery must
    // tolerate the torn tail, warm at least one shard, and serve re-runs
    // from recovered entries.
    let second = Server::start(LimadConfig {
        shards: args.shards,
        template: LimaConfig::lima(),
        persist_root: Some(dir.clone()),
        ..LimadConfig::default()
    })
    .map_err(|e| format!("phase-2 start: {e}"))?;
    let warm = second
        .shards()
        .iter()
        .filter(|s| s.state() == ShardState::Warm)
        .count();
    if warm == 0 {
        return Err("phase 2: no shard recovered WAL entries".into());
    }
    let report = drive_traffic(&second, &scripts, &baseline, args.sessions, seed ^ 0xC0DE);
    if !report.mismatches.is_empty() {
        return Err(format!(
            "phase 2: recovered values diverge from baseline: {}",
            report.mismatches[0]
        ));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("phase 2: hard error: {}", report.hard_errors[0]));
    }
    let persist_hits: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_hits))
        .sum();
    if persist_hits == 0 {
        return Err("phase 2: warm restart served zero persist hits".into());
    }
    scrape_metrics(&second)?;
    println!(
        "chaos: seed={seed} fault=crash-restart sessions={} ok warm_shards={warm} \
         persist_writes={writes} persist_hits={persist_hits}",
        args.sessions
    );
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Flips one bit mid-file in every committed value file under every
/// `shard-*/values` directory. Returns how many files were corrupted.
fn flip_value_files(root: &std::path::Path) -> Result<usize, String> {
    let mut flipped = 0;
    let shards = std::fs::read_dir(root).map_err(|e| format!("read {root:?}: {e}"))?;
    for shard in shards.flatten() {
        let values = shard.path().join("values");
        let Ok(entries) = std::fs::read_dir(&values) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("val") {
                continue;
            }
            let mut raw = std::fs::read(&path).map_err(|e| format!("read {path:?}: {e}"))?;
            if raw.is_empty() {
                continue;
            }
            let mid = raw.len() / 2;
            raw[mid] ^= 0x01;
            std::fs::write(&path, &raw).map_err(|e| format!("write {path:?}: {e}"))?;
            flipped += 1;
        }
    }
    Ok(flipped)
}

/// Flips one bit mid-file in every shard's active (highest-generation)
/// manifest WAL. Returns how many WALs were corrupted.
fn flip_wal_frames(root: &std::path::Path) -> Result<usize, String> {
    let mut flipped = 0;
    let shards = std::fs::read_dir(root).map_err(|e| format!("read {root:?}: {e}"))?;
    for shard in shards.flatten() {
        let mut best: Option<(u64, std::path::PathBuf)> = None;
        let Ok(entries) = std::fs::read_dir(shard.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(g) = name
                .strip_prefix("manifest.")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                if best.as_ref().is_none_or(|(bg, _)| g > *bg) {
                    best = Some((g, entry.path()));
                }
            }
        }
        let Some((_, path)) = best else {
            continue;
        };
        let mut raw = std::fs::read(&path).map_err(|e| format!("read {path:?}: {e}"))?;
        if raw.is_empty() {
            continue;
        }
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        std::fs::write(&path, &raw).map_err(|e| format!("write {path:?}: {e}"))?;
        flipped += 1;
    }
    Ok(flipped)
}

/// Template for the corruption scenarios: multi-level reuse is disabled so
/// every persisted lineage is built from primitive ops and therefore
/// replayable by the repairer (opaque `fcall:` items are repair-ineligible
/// by design — see DESIGN.md §13).
fn repairable_template() -> LimaConfig {
    let mut template = LimaConfig::lima();
    template.multilevel = false;
    template
}

/// Corrupt-at-rest: warm a persistent server, bit-flip every committed value
/// file and every manifest WAL while the server keeps running, then drive a
/// scrub pass through the admin wire op. The scrubber must detect every
/// flip, repair it — values from lineage, WALs by compacting into a fresh
/// generation — and the served values must stay baseline-equal.
fn run_corrupt_at_rest(args: &Args, seed: u64) -> Result<(), String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;
    let dir = std::env::temp_dir().join(format!("lima-chaos-car-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Background scrubbing is off: the admin wire op is the only scrubber,
    // so the per-pass counters below are deterministic.
    let server = Server::start(LimadConfig {
        shards: args.shards,
        template: repairable_template(),
        persist_root: Some(dir.clone()),
        scrub_interval_ms: 0,
        ..LimadConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;

    let report = drive_traffic(&server, &scripts, &baseline, args.sessions, seed);
    if !report.mismatches.is_empty() {
        return Err(format!("warm-up mismatch: {}", report.mismatches[0]));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("warm-up hard error: {}", report.hard_errors[0]));
    }
    let writes: u64 = server
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_writes))
        .sum();
    if writes == 0 {
        return Err("warm-up persisted nothing; corruption proves nothing".into());
    }

    let flipped = flip_value_files(&dir)?;
    if flipped == 0 {
        return Err("no value files found to corrupt".into());
    }
    // Damage the WALs themselves too: every live record is resident, so the
    // scrubber heals a bad frame by compacting into a fresh generation.
    let flipped_wals = flip_wal_frames(&dir)?;
    if flipped_wals == 0 {
        return Err("no manifest WALs found to corrupt".into());
    }

    let mut admin = LimadClient::new(
        &server.addr().to_string(),
        "chaos-admin",
        ClientOptions {
            default_deadline: Duration::from_secs(60),
            ..ClientOptions::default()
        },
    );
    let reports = admin.scrub().map_err(|e| format!("scrub rpc: {e}"))?;
    let corrupt: u64 = reports.iter().map(|r| r.corrupt).sum();
    let repaired: u64 = reports.iter().map(|r| r.repaired).sum();
    let repair_failures: u64 = reports.iter().map(|r| r.repair_failures).sum();
    let quarantined: u64 = reports.iter().map(|r| r.quarantined).sum();
    if reports.iter().any(|r| !r.completed) {
        return Err("scrub pass did not complete a full sweep".into());
    }
    let expected = (flipped + flipped_wals) as u64;
    if corrupt < expected {
        return Err(format!(
            "scrub found {corrupt} corruptions but {flipped} value files and \
             {flipped_wals} WALs were flipped"
        ));
    }
    if repaired < corrupt || repair_failures > 0 || quarantined > 0 {
        return Err(format!(
            "scrub dropped entries instead of healing them: corrupt={corrupt} \
             repaired={repaired} repair_failures={repair_failures} quarantined={quarantined}"
        ));
    }

    // The healed cache must keep serving baseline-equal values with no
    // unexplained misses (every repaired entry is still resident).
    let report = drive_traffic(&server, &scripts, &baseline, args.sessions, seed ^ 0xBEEF);
    if !report.mismatches.is_empty() {
        return Err(format!("post-repair mismatch: {}", report.mismatches[0]));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("post-repair hard error: {}", report.hard_errors[0]));
    }
    let repairs: u64 = server
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_repairs))
        .sum();
    if repairs == 0 {
        return Err("no persist_repairs recorded despite corrupt files".into());
    }
    scrape_metrics(&server)?;
    println!(
        "chaos: seed={seed} fault=corrupt-at-rest sessions={} ok flipped={flipped} \
         flipped_wals={flipped_wals} corrupt={corrupt} repaired={repaired}",
        args.sessions
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Corrupt-restart: warm a persistent server, shut it down, bit-flip every
/// committed value file offline, restart over the same directory. Recovery
/// verifies checksums eagerly, so every flip must be found and repaired from
/// lineage at startup — shards come up warm with nothing dropped.
fn run_corrupt_restart(args: &Args, seed: u64) -> Result<(), String> {
    let scripts = corpus(seed);
    let baseline = baseline_for(&scripts)?;
    let dir = std::env::temp_dir().join(format!("lima-chaos-cr-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let first = Server::start(LimadConfig {
        shards: args.shards,
        template: repairable_template(),
        persist_root: Some(dir.clone()),
        scrub_interval_ms: 0,
        ..LimadConfig::default()
    })
    .map_err(|e| format!("phase-1 start: {e}"))?;
    let report = drive_traffic(&first, &scripts, &baseline, args.sessions, seed);
    if !report.mismatches.is_empty() {
        return Err(format!("phase 1 mismatch: {}", report.mismatches[0]));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("phase 1 hard error: {}", report.hard_errors[0]));
    }
    let writes: u64 = first
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_writes))
        .sum();
    if writes == 0 {
        return Err("phase 1 persisted nothing; corruption proves nothing".into());
    }
    first.shutdown();

    let flipped = flip_value_files(&dir)?;
    if flipped == 0 {
        return Err("no value files found to corrupt".into());
    }

    let second = Server::start(LimadConfig {
        shards: args.shards,
        template: repairable_template(),
        persist_root: Some(dir.clone()),
        scrub_interval_ms: 0,
        ..LimadConfig::default()
    })
    .map_err(|e| format!("phase-2 start: {e}"))?;
    let warm = second
        .shards()
        .iter()
        .filter(|s| s.state() == ShardState::Warm)
        .count();
    if warm == 0 {
        return Err("phase 2: no shard recovered after corruption".into());
    }
    let repairs: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_repairs))
        .sum();
    let repair_failures: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_repair_failures))
        .sum();
    let dropped: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_dropped))
        .sum();
    if repairs < flipped as u64 {
        return Err(format!(
            "recovery repaired {repairs} of {flipped} corrupted values"
        ));
    }
    if repair_failures > 0 || dropped > 0 {
        return Err(format!(
            "recovery dropped entries instead of healing them: repairs={repairs} \
             repair_failures={repair_failures} dropped={dropped}"
        ));
    }
    let report = drive_traffic(&second, &scripts, &baseline, args.sessions, seed ^ 0xC0DE);
    if !report.mismatches.is_empty() {
        return Err(format!("phase 2 mismatch: {}", report.mismatches[0]));
    }
    if !report.hard_errors.is_empty() {
        return Err(format!("phase 2 hard error: {}", report.hard_errors[0]));
    }
    let persist_hits: u64 = second
        .shards()
        .iter()
        .map(|s| LimaStats::get(&s.stats().persist_hits))
        .sum();
    if persist_hits == 0 {
        return Err("phase 2 served zero persist hits after repair".into());
    }
    scrape_metrics(&second)?;
    println!(
        "chaos: seed={seed} fault=corrupt-restart sessions={} ok warm_shards={warm} \
         flipped={flipped} repairs={repairs} persist_hits={persist_hits}",
        args.sessions
    );
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "chaos: {e}\nusage: chaos [--fault none|conn-drop|slow-shard|crash-restart\
                 |corrupt-at-rest|corrupt-restart|all] \
                 [--sessions N] [--shards N] [--seed S] [--p99-cap-ms MS]"
            );
            return ExitCode::from(2);
        }
    };
    let t0 = Instant::now();
    for &seed in &args.seeds {
        let result = match args.fault {
            Fault::CrashRestart => run_crash_restart(&args, seed),
            Fault::CorruptAtRest => run_corrupt_at_rest(&args, seed),
            Fault::CorruptRestart => run_corrupt_restart(&args, seed),
            _ => run_steady(&args, seed),
        };
        if let Err(e) = result {
            eprintln!("chaos: FAIL seed={seed} fault={}: {e}", args.fault.as_str());
            return ExitCode::from(1);
        }
    }
    println!(
        "chaos: all {} seed(s) passed fault={} in {}ms",
        args.seeds.len(),
        args.fault.as_str(),
        t0.elapsed().as_millis()
    );
    ExitCode::SUCCESS
}
