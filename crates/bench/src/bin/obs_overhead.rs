//! Overhead guard for lima-obs: a hub that is *attached but disabled* must
//! cost at most `LIMA_OBS_OVERHEAD_MAX` (default 1.01 = +1%) relative to a
//! configuration with no hub attached at all, measured on an
//! instruction-dense workload where the per-instruction gate check is the
//! dominant difference.
//!
//! Methodology: the two configurations are run in strict A/B alternation
//! (so drift in machine load hits both sides equally) and their medians are
//! compared. `LIMA_OBS_REPS` overrides the repetition count.

use lima_algos::runner::run_script;
use lima_core::{LimaConfig, Obs};
use lima_matrix::{DenseMatrix, Value};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Many small instructions per iteration: interpreter pre/post-processing
/// (where the obs gate sits) dominates, kernels stay cheap.
const SCRIPT: &str = "
    s = 0;
    for (i in 1:300) {
      A = X * i;
      B = A + X;
      C = B - X;
      s = s + sum(C);
    }
";

fn time_once(config: &LimaConfig, x: &Value) -> Duration {
    let t0 = Instant::now();
    let r = run_script(SCRIPT, config, &[("X", x.clone())]).expect("overhead workload runs");
    let elapsed = t0.elapsed();
    assert!(r.value("s").as_f64().is_ok());
    elapsed
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn main() -> ExitCode {
    let reps: usize = env_parse("LIMA_OBS_REPS", 15);
    let max_ratio: f64 = env_parse("LIMA_OBS_OVERHEAD_MAX", 1.01);
    let x = Value::matrix(DenseMatrix::filled(48, 48, 1.25));

    let detached = LimaConfig::lima();
    let attached = LimaConfig::lima().with_obs(Arc::new(Obs::disabled()));

    // Warm up caches, allocator, and code paths on both sides.
    time_once(&detached, &x);
    time_once(&attached, &x);

    let mut base = Vec::with_capacity(reps);
    let mut gated = Vec::with_capacity(reps);
    for _ in 0..reps {
        base.push(time_once(&detached, &x));
        gated.push(time_once(&attached, &x));
    }
    let base_med = median(base);
    let gated_med = median(gated);
    let ratio = gated_med.as_secs_f64() / base_med.as_secs_f64().max(1e-9);
    println!(
        "obs_overhead: detached median {:.3}ms, attached-disabled median {:.3}ms, ratio {:.4} (limit {:.4}, {} reps)",
        base_med.as_secs_f64() * 1e3,
        gated_med.as_secs_f64() * 1e3,
        ratio,
        max_ratio,
        reps
    );
    if ratio > max_ratio {
        eprintln!(
            "obs_overhead: FAIL — disabled tracing costs {:.2}% (> {:.2}% allowed)",
            (ratio - 1.0) * 100.0,
            (max_ratio - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
