//! Criterion benches for the crash-safe persistent reuse cache:
//!
//! * raw persist throughput (atomic value write + WAL commit) per value size,
//! * startup recovery latency as a function of manifest length,
//! * cold vs warm-restart gridsearch-LM end-to-end (the headline win:
//!   a second process reusing a prior process's cache).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lima_algos::pipelines;
use lima_algos::runner::run_script;
use lima_core::cache::persist::PersistentCacheStore;
use lima_core::lineage::item::LineageItem;
use lima_core::LimaConfig;
use lima_matrix::{DenseMatrix, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "lima-bench-persist-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn matrix(rows: usize, cols: usize) -> Value {
    let data: Vec<f64> = (0..rows * cols).map(|i| (i % 97) as f64 * 0.5).collect();
    Value::matrix(DenseMatrix::new(rows, cols, data).expect("shape"))
}

fn bench_persist_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist_write");
    g.sample_size(10);
    for dim in [64usize, 256, 1024] {
        let value = matrix(dim, dim);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{dim}x{dim}")),
            &dim,
            |b, _| {
                let dir = tmp_dir("write");
                let (store, _, _) = PersistentCacheStore::open(&dir, 0, None).expect("open");
                let mut i = 0u64;
                b.iter(|| {
                    let root = LineageItem::op_with_data("read", format!("var:m{i}"), vec![]);
                    i += 1;
                    store.persist(&root, &value, 1_000).expect("persist")
                });
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
            },
        );
    }
    g.finish();
}

fn bench_recovery_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist_recovery");
    g.sample_size(10);
    for entries in [16usize, 128, 512] {
        let dir = tmp_dir("recover");
        {
            let (store, _, _) = PersistentCacheStore::open(&dir, 0, None).expect("open");
            let value = matrix(32, 32);
            for i in 0..entries {
                let root = LineageItem::op_with_data("read", format!("var:m{i}"), vec![]);
                store.persist(&root, &value, 1_000).expect("persist");
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| PersistentCacheStore::open(&dir, 0, None).expect("open"))
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

fn bench_warm_restart(c: &mut Criterion) {
    let grid = pipelines::hyperparameter_grid(3, 2, 2);
    let p = pipelines::hlm(2_000, 30, 2, 10, &grid, false, 5);
    let inputs = p.input_refs();
    let mut g = c.benchmark_group("gridsearch_lm_restart");
    g.sample_size(10);
    g.bench_function("cold", |b| {
        b.iter(|| {
            let dir = tmp_dir("cold");
            let r = run_script(
                &p.script,
                &LimaConfig::lima().with_persistence(&dir),
                &inputs,
            )
            .expect("run");
            let _ = std::fs::remove_dir_all(&dir);
            r.elapsed
        })
    });
    g.bench_function("warm", |b| {
        // One prior "process" fills the store; each iteration restarts on it.
        let dir = tmp_dir("warm");
        run_script(
            &p.script,
            &LimaConfig::lima().with_persistence(&dir),
            &inputs,
        )
        .expect("seed");
        b.iter(|| {
            run_script(
                &p.script,
                &LimaConfig::lima().with_persistence(&dir),
                &inputs,
            )
            .expect("run")
            .elapsed
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_persist_write,
    bench_recovery_scan,
    bench_warm_restart
);
criterion_main!(benches);
