//! Criterion end-to-end benches of the reuse machinery: one bench per
//! evaluation family (Fig 7a partial reuse, Fig 7b multi-level reuse,
//! Fig 9b HLM, Fig 6a tracing overhead), comparing Base against LIMA
//! configurations at small scale.

use criterion::{criterion_group, criterion_main, Criterion};
use lima_algos::pipelines;
use lima_bench::{run_pipeline, Config, DEFAULT_BUDGET};

fn bench_fig6a_tracing(c: &mut Criterion) {
    let p = pipelines::minibatch_micro(4_000, 78, 32, 1);
    let mut g = c.benchmark_group("fig6a_minibatch");
    g.sample_size(10);
    for cfg in [Config::Base, Config::LT, Config::LTP, Config::LTD] {
        let config = cfg.to_config(DEFAULT_BUDGET);
        g.bench_function(cfg.label(), |b| b.iter(|| run_pipeline(&p, &config)));
    }
    g.finish();
}

fn bench_fig7a_partial(c: &mut Criterion) {
    let p = pipelines::steplm_core(4_000, 80, 30, 30, 3);
    let mut g = c.benchmark_group("fig7a_steplm_core");
    g.sample_size(10);
    for (cfg, label) in [
        (Config::Base, "Base"),
        (Config::LimaNoCA, "LIMA"),
        (Config::Lima, "LIMA-CA"),
    ] {
        let config = cfg.to_config(DEFAULT_BUDGET);
        g.bench_function(label, |b| b.iter(|| run_pipeline(&p, &config)));
    }
    g.finish();
}

fn bench_fig7b_multilevel(c: &mut Criterion) {
    let p = pipelines::mlogreg_repeat(1_500, 40, 4, 4, 5, 3);
    let mut g = c.benchmark_group("fig7b_multilevel");
    g.sample_size(10);
    for cfg in [Config::Base, Config::LimaFR, Config::LimaMLR] {
        let config = cfg.to_config(DEFAULT_BUDGET);
        g.bench_function(cfg.label(), |b| b.iter(|| run_pipeline(&p, &config)));
    }
    g.finish();
}

fn bench_fig9b_hlm(c: &mut Criterion) {
    let grid = pipelines::hyperparameter_grid(3, 2, 2);
    let p = pipelines::hlm(8_000, 40, 2, 12, &grid, false, 5);
    let mut g = c.benchmark_group("fig9b_hlm");
    g.sample_size(10);
    for cfg in [Config::Base, Config::Lima] {
        let config = cfg.to_config(DEFAULT_BUDGET);
        g.bench_function(cfg.label(), |b| b.iter(|| run_pipeline(&p, &config)));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig6a_tracing,
    bench_fig7a_partial,
    bench_fig7b_multilevel,
    bench_fig9b_hlm
);
criterion_main!(benches);
