//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * cache-budget sweep — how much budget the reuse benefits need,
//! * eviction-policy sweep including the abandoned Hybrid strategy,
//! * eviction-watermark sweep (batched eviction hysteresis, an
//!   implementation choice this reproduction adds on top of the paper),
//! * unmarking on/off — the compiler-assistance pollution ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lima_algos::pipelines;
use lima_bench::{run_pipeline, Config};
use lima_core::{EvictionPolicy, LimaConfig};

fn bench_budget_sweep(c: &mut Criterion) {
    let grid = pipelines::hyperparameter_grid(3, 2, 2);
    let p = pipelines::hlm(6_000, 40, 2, 12, &grid, false, 5);
    let mut g = c.benchmark_group("ablation_budget");
    g.sample_size(10);
    for budget_kb in [64usize, 1_024, 16_384, 262_144] {
        let config = Config::Lima.to_config(budget_kb * 1024);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{budget_kb}KB")),
            &budget_kb,
            |b, _| b.iter(|| run_pipeline(&p, &config)),
        );
    }
    g.finish();
}

fn bench_policy_sweep(c: &mut Criterion) {
    let p = pipelines::minibatch_train(8_000, 128, 256, 4, 7);
    let budget = (8_000 / 256) * (2 * 256 * 128 + 128 * 128 + 3 * 128) * 8 * 7 / 10;
    let mut g = c.benchmark_group("ablation_policy");
    g.sample_size(10);
    for policy in [
        EvictionPolicy::Lru,
        EvictionPolicy::DagHeight,
        EvictionPolicy::CostSize,
        EvictionPolicy::Hybrid,
    ] {
        let config = LimaConfig {
            policy,
            compiler_assist: false,
            budget_bytes: budget,
            eviction_watermark: 0.98,
            ..LimaConfig::lima()
        };
        g.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| run_pipeline(&p, &config))
        });
    }
    g.finish();
}

fn bench_watermark_sweep(c: &mut Criterion) {
    // Pollution-heavy workload: every op cached, constant eviction churn.
    let p = pipelines::minibatch_micro(6_000, 78, 16, 1);
    let mut g = c.benchmark_group("ablation_watermark");
    g.sample_size(10);
    for watermark in [0.5f64, 0.8, 0.98] {
        let config = LimaConfig {
            budget_bytes: 4 * 1024 * 1024,
            eviction_watermark: watermark,
            compiler_assist: false,
            multilevel: false,
            spill: false,
            ..LimaConfig::lima()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{watermark}")),
            &watermark,
            |b, _| b.iter(|| run_pipeline(&p, &config)),
        );
    }
    g.finish();
}

fn bench_unmarking(c: &mut Criterion) {
    // The Fig-6 loop: with unmarking, loop-carried chains skip the cache.
    let p = pipelines::minibatch_micro(6_000, 78, 32, 1);
    let mut g = c.benchmark_group("ablation_unmarking");
    g.sample_size(10);
    for (label, assist) in [("unmarked", true), ("polluting", false)] {
        let config = LimaConfig {
            compiler_assist: assist,
            multilevel: false,
            ..LimaConfig::lima()
        };
        g.bench_function(label, |b| b.iter(|| run_pipeline(&p, &config)));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_budget_sweep,
    bench_policy_sweep,
    bench_watermark_sweep,
    bench_unmarking
);
criterion_main!(benches);
