//! Criterion benches of cache-internal behaviour under memory pressure:
//! the Fig 8(a) phase pipeline per eviction policy, plus raw probe/put/evict
//! throughput of the lineage cache.

use criterion::{criterion_group, criterion_main, Criterion};
use lima_algos::pipelines;
use lima_bench::{run_pipeline, Config};
use lima_core::cache::Probe;
use lima_core::lineage::item::LineageItem;
use lima_core::{LimaConfig, LineageCache};
use lima_matrix::{DenseMatrix, Value};

fn bench_fig8a_policies(c: &mut Criterion) {
    let p = pipelines::eviction_phases(96, 12, 8, 24, 6);
    let budget = 12 * 2 * (96 * 96 * 8 + 64) + 128 * 1024;
    let mut g = c.benchmark_group("fig8a_policies");
    g.sample_size(10);
    for cfg in [
        Config::Base,
        Config::LimaLru,
        Config::LimaCostSize,
        Config::LimaInfinite,
    ] {
        let mut config = cfg.to_config(budget);
        config.eviction_watermark = 0.98;
        g.bench_function(cfg.label(), |b| b.iter(|| run_pipeline(&p, &config)));
    }
    g.finish();
}

fn bench_cache_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_throughput");
    g.sample_size(10);
    // Probe-hit throughput.
    let cache = LineageCache::new(LimaConfig::default());
    let item = LineageItem::op("ba+*", vec![LineageItem::op_with_data("read", "X", vec![])]);
    match cache.acquire(&item).expect("cacheable") {
        Probe::Reserved(r) => r.fulfill(&Value::matrix(DenseMatrix::zeros(32, 32)), 1_000),
        Probe::Hit(_) => unreachable!("fresh cache"),
    }
    g.bench_function("probe_hit", |b| {
        b.iter(|| match cache.acquire(&item).expect("cacheable") {
            Probe::Hit(v) => v,
            Probe::Reserved(_) => panic!("expected hit"),
        })
    });
    // Put + evict churn under a tight budget.
    g.bench_function("put_evict_churn_100", |b| {
        b.iter(|| {
            let cache = LineageCache::new(LimaConfig {
                budget_bytes: 200_000,
                spill: false,
                ..LimaConfig::default()
            });
            for i in 0..100 {
                let item = LineageItem::op(
                    "ba+*",
                    vec![LineageItem::op_with_data("read", format!("X{i}"), vec![])],
                );
                match cache.acquire(&item).expect("cacheable") {
                    Probe::Reserved(r) => {
                        r.fulfill(&Value::matrix(DenseMatrix::zeros(50, 50)), 1_000)
                    }
                    Probe::Hit(_) => {}
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig8a_policies, bench_cache_throughput);
criterion_main!(benches);
