//! Criterion micro-benchmarks of lineage operations (Fig 6 territory):
//! per-item tracing cost, memoized hashing/equality on deep traces, dedup
//! expansion, and serialization round-trips.

use criterion::{criterion_group, criterion_main, Criterion};
use lima_core::lineage::dedup::DedupPatch;
use lima_core::lineage::item::{lineage_eq, LinRef, LineageItem};
use lima_core::lineage::serialize::{deserialize_lineage, serialize_lineage};
use std::hint::black_box;

fn chain(n: usize) -> LinRef {
    let mut node = LineageItem::op_with_data("read", "X", vec![]);
    for _ in 0..n {
        node = LineageItem::op("+", vec![node.clone(), node]);
    }
    node
}

fn bench_item_creation(c: &mut Criterion) {
    let x = LineageItem::op_with_data("read", "X", vec![]);
    let y = LineageItem::op_with_data("read", "Y", vec![]);
    c.bench_function("item_create_binary", |b| {
        b.iter(|| LineageItem::op("ba+*", vec![black_box(&x).clone(), black_box(&y).clone()]))
    });
}

fn bench_hash_and_eq(c: &mut Criterion) {
    // First hash walks the chain; repeated hashes are O(1) (memoized).
    c.bench_function("hash_chain_10k_cold", |b| {
        b.iter_with_setup(|| chain(10_000), |n| n.hash_value())
    });
    let n = chain(10_000);
    n.hash_value();
    c.bench_function("hash_chain_10k_warm", |b| {
        b.iter(|| black_box(&n).hash_value())
    });
    let a = chain(2_000);
    let b2 = chain(2_000);
    c.bench_function("eq_chain_2k_equal", |b| {
        b.iter(|| assert!(lineage_eq(black_box(&a), black_box(&b2))))
    });
    let c2 = chain(2_001);
    c.bench_function("eq_chain_mismatch_pruned_by_hash", |b| {
        b.iter(|| assert!(!lineage_eq(black_box(&a), black_box(&c2))))
    });
}

fn bench_dedup(c: &mut Criterion) {
    let p0 = LineageItem::placeholder(0);
    let p1 = LineageItem::placeholder(1);
    let body = LineageItem::op("+", vec![LineageItem::op("ba+*", vec![p0, p1.clone()]), p1]);
    let patch = DedupPatch::new("loop:bench", 0, 2, vec![("p".into(), body)]);
    let g = LineageItem::op_with_data("read", "G", vec![]);
    c.bench_function("dedup_chain_1k_hash", |b| {
        b.iter_with_setup(
            || {
                let mut p = LineageItem::op_with_data("read", "p0", vec![]);
                for _ in 0..1_000 {
                    p = LineageItem::dedup(patch.clone(), "p", vec![g.clone(), p]);
                }
                p
            },
            |p| p.hash_value(),
        )
    });
}

fn bench_serialize(c: &mut Criterion) {
    let root = chain(5_000);
    c.bench_function("serialize_5k", |b| {
        b.iter(|| serialize_lineage(black_box(&root)))
    });
    let log = serialize_lineage(&root);
    c.bench_function("deserialize_5k", |b| {
        b.iter(|| deserialize_lineage(black_box(&log)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_item_creation, bench_hash_and_eq, bench_dedup, bench_serialize
}
criterion_main!(benches);
