//! Criterion micro-benchmarks of the matrix substrate kernels that dominate
//! the paper's workloads: GEMM, `tsmm`, solve, eigen, and the reorg ops the
//! partial rewrites build compensations from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lima_matrix::ops::{
    cbind, eigen_symmetric, matmult, rbind, slice, solve, transpose, tsmm, TsmmSide,
};
use lima_matrix::DenseMatrix;
use std::hint::black_box;

fn mk(rows: usize, cols: usize, salt: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| {
        (((i as u64 * 31 + j as u64 * 17 + salt) % 23) as f64) / 23.0 - 0.5
    })
}

fn bench_matmult(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmult");
    g.sample_size(10);
    for n in [64usize, 256] {
        let a = mk(n, n, 1);
        let b = mk(n, n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| matmult(black_box(&a), black_box(&b)).unwrap())
        });
    }
    g.finish();
}

fn bench_tsmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsmm");
    g.sample_size(10);
    for (rows, cols) in [(2_000usize, 50usize), (10_000, 100)] {
        let x = mk(rows, cols, 3);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &rows,
            |bch, _| bch.iter(|| tsmm(black_box(&x), TsmmSide::Left).unwrap()),
        );
    }
    g.finish();
}

fn bench_solve_and_eigen(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers");
    g.sample_size(10);
    let x = mk(500, 60, 5);
    let a = tsmm(&x, TsmmSide::Left).unwrap();
    let spd = {
        let mut m = a.clone();
        for i in 0..m.rows() {
            m.set(i, i, m.get(i, i) + 1.0);
        }
        m
    };
    let b = mk(60, 1, 7);
    g.bench_function("solve_60", |bch| {
        bch.iter(|| solve(black_box(&spd), black_box(&b)).unwrap())
    });
    g.bench_function("eigen_60", |bch| {
        bch.iter(|| eigen_symmetric(black_box(&spd)).unwrap())
    });
    g.finish();
}

fn bench_reorg(c: &mut Criterion) {
    let mut g = c.benchmark_group("reorg");
    g.sample_size(10);
    let x = mk(20_000, 60, 9);
    let d = mk(20_000, 1, 11);
    g.bench_function("cbind_20000x60+1", |bch| {
        bch.iter(|| cbind(black_box(&x), black_box(&d)).unwrap())
    });
    let top = mk(10_000, 60, 13);
    g.bench_function("rbind_2x10000x60", |bch| {
        bch.iter(|| rbind(black_box(&top), black_box(&top)).unwrap())
    });
    g.bench_function("slice_rows", |bch| {
        bch.iter(|| slice(black_box(&x), 5_000, 14_999, 0, 59).unwrap())
    });
    g.bench_function("transpose", |bch| bch.iter(|| transpose(black_box(&x))));
    g.finish();
}

criterion_group!(
    benches,
    bench_matmult,
    bench_tsmm,
    bench_solve_and_eigen,
    bench_reorg
);
criterion_main!(benches);
