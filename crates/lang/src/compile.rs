//! Lowers the AST into a `lima-runtime` program: statements become program
//! blocks, expressions become instruction sequences over temporaries, and
//! builtins map onto the runtime's instruction set. The runtime's compiler
//! passes (IDs, determinism, dedup, unmarking, reuse-aware rewrites) run as
//! the final step.

use crate::ast::{Arg, Expr, FunctionDef, IndexSel, Script, Stmt};
use crate::parser::{parse, ParseError};
use lima_core::LimaConfig;
use lima_matrix::ops::{AggFn, BinOp, TsmmSide, UnOp};
use lima_runtime::instr::RandDistKind;
use lima_runtime::{Block, ExprProg, Function, Instr, Op, Operand, Program};
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Compilation error (parse or lowering).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    pub msg: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError { msg: e.to_string() }
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError { msg: msg.into() })
}

/// Parses, lowers, and runs the runtime compiler passes on a script.
pub fn compile_script(src: &str, config: &LimaConfig) -> Result<Program, CompileError> {
    let mut program = compile_script_uncompiled(src)?;
    lima_runtime::compiler::compile(&mut program, config)
        .map_err(|e| CompileError { msg: e.to_string() })?;
    Ok(program)
}

/// Parses and lowers a script without running the compiler passes
/// (tests and tooling).
pub fn compile_script_uncompiled(src: &str) -> Result<Program, CompileError> {
    let ast = parse(src)?;
    let mut lowerer = Lowerer::new(&ast);
    let body = lowerer.lower_stmts(&ast.body)?;
    let mut program = Program::new(body);
    for fdef in &ast.functions {
        let fbody = lowerer.lower_stmts(&fdef.body)?;
        let mut f = Function::new(
            fdef.name.clone(),
            fdef.params.iter().map(|(n, _)| n.clone()).collect(),
            fdef.outputs.clone(),
            fbody,
        );
        f.deterministic = false; // analysis pass fills this in
        program.add_function(f);
    }
    program.fingerprint = fingerprint(src);
    Ok(program)
}

fn fingerprint(src: &str) -> u64 {
    let mut h = lima_core::lineage::item::FxHasher::default();
    src.hash(&mut h);
    h.finish()
}

struct Lowerer {
    next_temp: usize,
    user_functions: HashSet<String>,
    function_defs: Vec<FunctionDef>,
}

impl Lowerer {
    fn new(script: &Script) -> Self {
        Lowerer {
            next_temp: 0,
            user_functions: script.functions.iter().map(|f| f.name.clone()).collect(),
            function_defs: script.functions.clone(),
        }
    }

    fn temp(&mut self) -> String {
        self.next_temp += 1;
        format!("_t{}", self.next_temp)
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<Block>, CompileError> {
        let mut blocks = Vec::new();
        let mut current: Vec<Instr> = Vec::new();
        macro_rules! flush {
            () => {
                if !current.is_empty() {
                    blocks.push(Block::basic(std::mem::take(&mut current)));
                }
            };
        }
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, value } => {
                    self.lower_expr_into(value, target, &mut current)?;
                }
                Stmt::MultiAssign { targets, call } => {
                    let Expr::Call { name, args } = call else {
                        return err("multi-assignment requires a call");
                    };
                    self.lower_multi_call(name, args, targets, &mut current)?;
                }
                Stmt::IndexAssign {
                    target,
                    rows,
                    cols,
                    value,
                } => {
                    let v = self.lower_expr(value, &mut current)?;
                    let rl = self.index_start(rows, &mut current)?;
                    let cl = self.index_start(cols, &mut current)?;
                    current.push(Instr::new(
                        Op::LeftIndex,
                        vec![Operand::var(target), v, rl, cl],
                        target,
                    ));
                }
                Stmt::Print(e) => {
                    let v = self.lower_expr(e, &mut current)?;
                    current.push(Instr::effect(Op::Print, vec![v]));
                }
                Stmt::Write(e, path) => {
                    let v = self.lower_expr(e, &mut current)?;
                    let p = self.lower_expr(path, &mut current)?;
                    current.push(Instr::effect(Op::Write, vec![v, p]));
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    flush!();
                    let pred = self.lower_expr_prog(cond)?;
                    let t = self.lower_stmts(then_body)?;
                    let e = self.lower_stmts(else_body)?;
                    blocks.push(Block::if_else(pred, t, e));
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    by,
                    body,
                    parallel,
                } => {
                    flush!();
                    let from = self.lower_expr_prog(from)?;
                    let to = self.lower_expr_prog(to)?;
                    let by = match by {
                        Some(b) => self.lower_expr_prog(b)?,
                        None => ExprProg::lit(Operand::i64(1)),
                    };
                    let b = self.lower_stmts(body)?;
                    blocks.push(if *parallel {
                        Block::parfor(var, from, to, by, b)
                    } else {
                        Block::for_loop(var, from, to, by, b)
                    });
                }
                Stmt::While { cond, body } => {
                    flush!();
                    let pred = self.lower_expr_prog(cond)?;
                    let b = self.lower_stmts(body)?;
                    blocks.push(Block::while_loop(pred, b));
                }
            }
        }
        if !current.is_empty() {
            blocks.push(Block::basic(current));
        }
        Ok(blocks)
    }

    fn lower_expr_prog(&mut self, e: &Expr) -> Result<ExprProg, CompileError> {
        let mut instrs = Vec::new();
        let result = self.lower_expr(e, &mut instrs)?;
        Ok(ExprProg::new(instrs, result))
    }

    /// Lowers an expression, directing the final instruction's output to
    /// `target` when possible (avoids a trailing copy).
    fn lower_expr_into(
        &mut self,
        e: &Expr,
        target: &str,
        instrs: &mut Vec<Instr>,
    ) -> Result<(), CompileError> {
        let before = instrs.len();
        let result = self.lower_expr(e, instrs)?;
        match result {
            Operand::Var(v) if instrs.len() > before => {
                // Retarget the instruction that produced the temp.
                let last = instrs
                    .iter_mut()
                    .rev()
                    .find(|i| i.outputs.len() == 1 && i.outputs[0] == v);
                match last {
                    Some(i) if v.starts_with("_t") => i.outputs[0] = target.to_string(),
                    _ => instrs.push(Instr::new(Op::Assign, vec![Operand::Var(v)], target)),
                }
            }
            other => instrs.push(Instr::new(Op::Assign, vec![other], target)),
        }
        Ok(())
    }

    fn lower_expr(&mut self, e: &Expr, instrs: &mut Vec<Instr>) -> Result<Operand, CompileError> {
        Ok(match e {
            Expr::Int(v) => Operand::i64(*v),
            Expr::Float(v) => Operand::f64(*v),
            Expr::Str(s) => Operand::str(s),
            Expr::Bool(b) => Operand::bool(*b),
            Expr::Var(v) => Operand::var(v),
            Expr::Neg(inner) => {
                let v = self.lower_expr(inner, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Unary(UnOp::Neg), vec![v], &out));
                Operand::var(out)
            }
            Expr::Not(inner) => {
                let v = self.lower_expr(inner, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Unary(UnOp::Not), vec![v], &out));
                Operand::var(out)
            }
            Expr::Binary(op, a, b) => {
                let va = self.lower_expr(a, instrs)?;
                let vb = self.lower_expr(b, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Binary(*op), vec![va, vb], &out));
                Operand::var(out)
            }
            Expr::MatMul(a, b) => self.lower_matmul(a, b, instrs)?,
            Expr::Call { name, args } => self.lower_call(name, args, instrs)?,
            Expr::Index { base, rows, cols } => self.lower_index(base, rows, cols, instrs)?,
        })
    }

    /// Lowers `a %*% b` with the SystemDS-style `tsmm` peephole:
    /// `t(X) %*% X → tsmm(X, LEFT)` and `X %*% t(X) → tsmm(X, RIGHT)`.
    fn lower_matmul(
        &mut self,
        a: &Expr,
        b: &Expr,
        instrs: &mut Vec<Instr>,
    ) -> Result<Operand, CompileError> {
        fn transposed_of(e: &Expr) -> Option<&Expr> {
            match e {
                Expr::Call { name, args }
                    if name == "t" && args.len() == 1 && args[0].name.is_none() =>
                {
                    Some(&args[0].value)
                }
                _ => None,
            }
        }
        if let Some(inner) = transposed_of(a) {
            if inner == b {
                let v = self.lower_expr(inner, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Tsmm(TsmmSide::Left), vec![v], &out));
                return Ok(Operand::var(out));
            }
        }
        if let Some(inner) = transposed_of(b) {
            if inner == a {
                let v = self.lower_expr(inner, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Tsmm(TsmmSide::Right), vec![v], &out));
                return Ok(Operand::var(out));
            }
        }
        let va = self.lower_expr(a, instrs)?;
        let vb = self.lower_expr(b, instrs)?;
        let out = self.temp();
        instrs.push(Instr::new(Op::MatMult, vec![va, vb], &out));
        Ok(Operand::var(out))
    }

    /// The 1-based start position of an index selector (for left-indexing).
    fn index_start(
        &mut self,
        sel: &IndexSel,
        instrs: &mut Vec<Instr>,
    ) -> Result<Operand, CompileError> {
        Ok(match sel {
            IndexSel::All => Operand::i64(1),
            IndexSel::Single(e) | IndexSel::Range(e, _) => self.lower_expr(e, instrs)?,
        })
    }

    fn lower_index(
        &mut self,
        base: &Expr,
        rows: &IndexSel,
        cols: &IndexSel,
        instrs: &mut Vec<Instr>,
    ) -> Result<Operand, CompileError> {
        let mut cur = self.lower_expr(base, instrs)?;
        // Ranged selectors compile into a single rightIndex when possible.
        let range_bounds = |sel: &IndexSel| matches!(sel, IndexSel::All | IndexSel::Range(_, _));
        if range_bounds(rows) && range_bounds(cols) {
            let (rl, ru) = self.range_ops(rows, instrs)?;
            let (cl, cu) = self.range_ops(cols, instrs)?;
            let out = self.temp();
            instrs.push(Instr::new(Op::RightIndex, vec![cur, rl, ru, cl, cu], &out));
            return Ok(Operand::var(out));
        }
        // Single selectors use select-rows/cols (scalar positions and
        // 1-based index vectors share the same syntax in DML).
        match rows {
            IndexSel::All => {}
            IndexSel::Single(e) => {
                let idx = self.lower_expr(e, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::SelectRows, vec![cur, idx], &out));
                cur = Operand::var(out);
            }
            IndexSel::Range(a, b) => {
                let rl = self.lower_expr(a, instrs)?;
                let ru = self.lower_expr(b, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(
                    Op::RightIndex,
                    vec![cur, rl, ru, Operand::i64(1), Operand::i64(0)],
                    &out,
                ));
                cur = Operand::var(out);
            }
        }
        match cols {
            IndexSel::All => {}
            IndexSel::Single(e) => {
                let idx = self.lower_expr(e, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::SelectCols, vec![cur, idx], &out));
                cur = Operand::var(out);
            }
            IndexSel::Range(a, b) => {
                let cl = self.lower_expr(a, instrs)?;
                let cu = self.lower_expr(b, instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(
                    Op::RightIndex,
                    vec![cur, Operand::i64(1), Operand::i64(0), cl, cu],
                    &out,
                ));
                cur = Operand::var(out);
            }
        }
        Ok(cur)
    }

    /// Bounds of a ranged selector as (lo, hi) operands; `All` is `(1, 0)`
    /// with 0 meaning "to the end".
    fn range_ops(
        &mut self,
        sel: &IndexSel,
        instrs: &mut Vec<Instr>,
    ) -> Result<(Operand, Operand), CompileError> {
        Ok(match sel {
            IndexSel::All => (Operand::i64(1), Operand::i64(0)),
            IndexSel::Range(a, b) => (self.lower_expr(a, instrs)?, self.lower_expr(b, instrs)?),
            IndexSel::Single(_) => unreachable!("caller checks"),
        })
    }

    fn lower_multi_call(
        &mut self,
        name: &str,
        args: &[Arg],
        targets: &[String],
        instrs: &mut Vec<Instr>,
    ) -> Result<(), CompileError> {
        if name == "eigen" {
            if targets.len() != 2 || args.len() != 1 {
                return err("eigen returns [values, vectors] and takes one argument");
            }
            let c = self.lower_expr(&args[0].value, instrs)?;
            instrs.push(Instr::multi(Op::Eigen, vec![c], targets.to_vec()));
            return Ok(());
        }
        if self.user_functions.contains(name) {
            let inputs = self.user_call_args(name, args, instrs)?;
            instrs.push(Instr::multi(
                Op::FCall(name.to_string()),
                inputs,
                targets.to_vec(),
            ));
            return Ok(());
        }
        err(format!("'{name}' is not a multi-return function"))
    }

    /// Resolves user-function call arguments (positional + named + defaults)
    /// into positional operands.
    fn user_call_args(
        &mut self,
        name: &str,
        args: &[Arg],
        instrs: &mut Vec<Instr>,
    ) -> Result<Vec<Operand>, CompileError> {
        let fdef = self
            .function_defs
            .iter()
            .find(|f| f.name == name)
            .cloned()
            .ok_or_else(|| CompileError {
                msg: format!("unknown function '{name}'"),
            })?;
        let mut slots: Vec<Option<Operand>> = vec![None; fdef.params.len()];
        let mut pos = 0usize;
        for arg in args {
            let idx = match &arg.name {
                Some(n) => fdef
                    .params
                    .iter()
                    .position(|(p, _)| p == n)
                    .ok_or_else(|| CompileError {
                        msg: format!("function '{name}' has no parameter '{n}'"),
                    })?,
                None => {
                    while pos < slots.len() && slots[pos].is_some() {
                        pos += 1;
                    }
                    if pos >= slots.len() {
                        return err(format!("too many arguments for '{name}'"));
                    }
                    pos
                }
            };
            if slots[idx].is_some() {
                return err(format!(
                    "duplicate argument for parameter {idx} of '{name}'"
                ));
            }
            slots[idx] = Some(self.lower_expr(&arg.value, instrs)?);
        }
        let mut out = Vec::with_capacity(slots.len());
        for (slot, (pname, default)) in slots.into_iter().zip(&fdef.params) {
            match (slot, default) {
                (Some(v), _) => out.push(v),
                (None, Some(d)) => out.push(self.lower_expr(d, instrs)?),
                (None, None) => {
                    return err(format!("missing argument '{pname}' for '{name}'"));
                }
            }
        }
        Ok(out)
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Arg],
        instrs: &mut Vec<Instr>,
    ) -> Result<Operand, CompileError> {
        // User functions first: single-output call in expression position.
        if self.user_functions.contains(name) {
            let inputs = self.user_call_args(name, args, instrs)?;
            let out = self.temp();
            instrs.push(Instr::multi(
                Op::FCall(name.to_string()),
                inputs,
                vec![out.clone()],
            ));
            return Ok(Operand::var(out));
        }

        let mut positional = Vec::new();
        for a in args {
            if a.name.is_none() {
                positional.push(&a.value);
            }
        }
        let named = |n: &str| args.iter().find(|a| a.name.as_deref() == Some(n));

        macro_rules! one {
            ($op:expr) => {{
                if positional.len() != 1 || args.len() != 1 {
                    return err(format!("'{name}' takes one argument"));
                }
                let v = self.lower_expr(positional[0], instrs)?;
                let out = self.temp();
                instrs.push(Instr::new($op, vec![v], &out));
                Ok(Operand::var(out))
            }};
        }
        macro_rules! two {
            ($op:expr) => {{
                if positional.len() != 2 || args.len() != 2 {
                    return err(format!("'{name}' takes two arguments"));
                }
                let a = self.lower_expr(positional[0], instrs)?;
                let b = self.lower_expr(positional[1], instrs)?;
                let out = self.temp();
                instrs.push(Instr::new($op, vec![a, b], &out));
                Ok(Operand::var(out))
            }};
        }

        match name {
            "t" => one!(Op::Transpose),
            "sum" => one!(Op::FullAgg(AggFn::Sum)),
            "mean" => one!(Op::FullAgg(AggFn::Mean)),
            "var" => one!(Op::FullAgg(AggFn::Var)),
            "min" | "max" => {
                let f = if name == "min" {
                    AggFn::Min
                } else {
                    AggFn::Max
                };
                let b = if name == "min" {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                match positional.len() {
                    1 => one!(Op::FullAgg(f)),
                    2 => two!(Op::Binary(b)),
                    _ => err(format!("'{name}' takes one or two arguments")),
                }
            }
            "colSums" => one!(Op::ColAgg(AggFn::Sum)),
            "colMeans" => one!(Op::ColAgg(AggFn::Mean)),
            "colMins" => one!(Op::ColAgg(AggFn::Min)),
            "colMaxs" => one!(Op::ColAgg(AggFn::Max)),
            "colVars" => one!(Op::ColAgg(AggFn::Var)),
            "rowSums" => one!(Op::RowAgg(AggFn::Sum)),
            "rowMeans" => one!(Op::RowAgg(AggFn::Mean)),
            "rowMins" => one!(Op::RowAgg(AggFn::Min)),
            "rowMaxs" => one!(Op::RowAgg(AggFn::Max)),
            "rowVars" => one!(Op::RowAgg(AggFn::Var)),
            "rowIndexMax" => one!(Op::RowIndexMax),
            "nrow" => one!(Op::Nrow),
            "ncol" => one!(Op::Ncol),
            "exp" => one!(Op::Unary(UnOp::Exp)),
            "log" => one!(Op::Unary(UnOp::Log)),
            "sqrt" => one!(Op::Unary(UnOp::Sqrt)),
            "abs" => one!(Op::Unary(UnOp::Abs)),
            "round" => one!(Op::Unary(UnOp::Round)),
            "floor" => one!(Op::Unary(UnOp::Floor)),
            "ceil" => one!(Op::Unary(UnOp::Ceil)),
            "sign" => one!(Op::Unary(UnOp::Sign)),
            "sigmoid" => one!(Op::Unary(UnOp::Sigmoid)),
            "as.scalar" => one!(Op::CastScalar),
            "as.matrix" => one!(Op::CastMatrix),
            "rev" => one!(Op::Rev),
            "diag" => one!(Op::Diag),
            "solve" => two!(Op::Solve),
            "table" => two!(Op::Table),
            "read" => one!(Op::Read),
            "cbind" | "rbind" => {
                if positional.len() < 2 {
                    return err(format!("'{name}' takes at least two arguments"));
                }
                let op = if name == "cbind" {
                    Op::Cbind
                } else {
                    Op::Rbind
                };
                let mut acc = self.lower_expr(positional[0], instrs)?;
                for p in &positional[1..] {
                    let rhs = self.lower_expr(p, instrs)?;
                    let out = self.temp();
                    instrs.push(Instr::new(op.clone(), vec![acc, rhs], &out));
                    acc = Operand::var(out);
                }
                Ok(acc)
            }
            "matrix" => {
                if positional.len() == 3 {
                    let v = self.lower_expr(positional[0], instrs)?;
                    let r = self.lower_expr(positional[1], instrs)?;
                    let c = self.lower_expr(positional[2], instrs)?;
                    let out = self.temp();
                    instrs.push(Instr::new(Op::Fill, vec![v, r, c], &out));
                    Ok(Operand::var(out))
                } else if positional.len() == 1 {
                    // matrix(X, rows=, cols=): reshape
                    let x = self.lower_expr(positional[0], instrs)?;
                    let (Some(r), Some(c)) = (named("rows"), named("cols")) else {
                        return err("matrix(X, rows=, cols=) requires named dims");
                    };
                    let r = self.lower_expr(&r.value, instrs)?;
                    let c = self.lower_expr(&c.value, instrs)?;
                    let out = self.temp();
                    instrs.push(Instr::new(Op::Reshape, vec![x, r, c], &out));
                    Ok(Operand::var(out))
                } else {
                    err("matrix() takes (v, rows, cols) or (X, rows=, cols=)")
                }
            }
            "rand" => {
                let get = |n: &str| named(n).map(|a| a.value.clone());
                let rows = get("rows").ok_or_else(|| CompileError {
                    msg: "rand requires rows=".into(),
                })?;
                let cols = get("cols").ok_or_else(|| CompileError {
                    msg: "rand requires cols=".into(),
                })?;
                let kind = match get("pdf") {
                    Some(Expr::Str(s)) if s == "normal" => RandDistKind::Normal,
                    Some(Expr::Str(s)) if s == "uniform" => RandDistKind::Uniform,
                    None => RandDistKind::Uniform,
                    Some(other) => {
                        return err(format!("rand pdf must be a string literal, got {other:?}"))
                    }
                };
                let (p1_default, p2_default) = match kind {
                    RandDistKind::Uniform => (Expr::Float(0.0), Expr::Float(1.0)),
                    RandDistKind::Normal => (Expr::Float(0.0), Expr::Float(1.0)),
                };
                let p1 = get(if kind == RandDistKind::Uniform {
                    "min"
                } else {
                    "mean"
                })
                .unwrap_or(p1_default);
                let p2 = get(if kind == RandDistKind::Uniform {
                    "max"
                } else {
                    "sd"
                })
                .unwrap_or(p2_default);
                let sparsity = get("sparsity").unwrap_or(Expr::Float(1.0));
                let seed = get("seed").unwrap_or(Expr::Int(-1));
                let ins = vec![
                    self.lower_expr(&rows, instrs)?,
                    self.lower_expr(&cols, instrs)?,
                    self.lower_expr(&p1, instrs)?,
                    self.lower_expr(&p2, instrs)?,
                    self.lower_expr(&sparsity, instrs)?,
                    self.lower_expr(&seed, instrs)?,
                ];
                let out = self.temp();
                instrs.push(Instr::new(Op::Rand(kind), ins, &out));
                Ok(Operand::var(out))
            }
            "sample" => {
                if positional.len() < 2 || positional.len() > 3 {
                    return err("sample takes (range, size[, seed])");
                }
                let range = self.lower_expr(positional[0], instrs)?;
                let size = self.lower_expr(positional[1], instrs)?;
                let seed = if positional.len() == 3 {
                    self.lower_expr(positional[2], instrs)?
                } else {
                    Operand::i64(-1)
                };
                let out = self.temp();
                instrs.push(Instr::new(Op::Sample, vec![range, size, seed], &out));
                Ok(Operand::var(out))
            }
            "seq" => {
                if positional.len() < 2 || positional.len() > 3 {
                    return err("seq takes (from, to[, by])");
                }
                let f = self.lower_expr(positional[0], instrs)?;
                let t = self.lower_expr(positional[1], instrs)?;
                let b = if positional.len() == 3 {
                    self.lower_expr(positional[2], instrs)?
                } else {
                    Operand::f64(1.0)
                };
                let out = self.temp();
                instrs.push(Instr::new(Op::Seq, vec![f, t, b], &out));
                Ok(Operand::var(out))
            }
            "order" => {
                if positional.is_empty() {
                    return err("order takes (V[, decreasing])");
                }
                let v = self.lower_expr(positional[0], instrs)?;
                let dec = match named("decreasing") {
                    Some(a) => self.lower_expr(&a.value, instrs)?,
                    None if positional.len() > 1 => self.lower_expr(positional[1], instrs)?,
                    None => Operand::bool(false),
                };
                let out = self.temp();
                instrs.push(Instr::new(Op::Order, vec![v, dec], &out));
                Ok(Operand::var(out))
            }
            "list" => {
                let mut ins = Vec::new();
                for p in &positional {
                    ins.push(self.lower_expr(p, instrs)?);
                }
                let out = self.temp();
                instrs.push(Instr::new(Op::ListNew, ins, &out));
                Ok(Operand::var(out))
            }
            "getElement" => two!(Op::ListGet),
            "toString" => {
                if positional.len() != 1 {
                    return err("toString takes one argument");
                }
                let v = self.lower_expr(positional[0], instrs)?;
                let out = self.temp();
                instrs.push(Instr::new(Op::Concat, vec![Operand::str(""), v], &out));
                Ok(Operand::var(out))
            }
            "lineage" => {
                if positional.len() != 1 {
                    return err("lineage takes one variable argument");
                }
                let Expr::Var(v) = positional[0] else {
                    return err("lineage() requires a variable, not an expression");
                };
                let out = self.temp();
                instrs.push(Instr::new(Op::LineageOf, vec![Operand::var(v)], &out));
                Ok(Operand::var(out))
            }
            "eigen" => err("eigen must be used as [evals, evects] = eigen(C)"),
            other => err(format!("unknown function '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lima_runtime::{execute_program, ExecutionContext};

    fn run_src(src: &str, cfg: LimaConfig) -> ExecutionContext {
        let program = compile_script(src, &cfg).expect("compiles");
        let mut ctx = ExecutionContext::new(cfg);
        execute_program(&program, &mut ctx).expect("runs");
        ctx
    }

    #[test]
    fn arithmetic_and_assignment() {
        let ctx = run_src(
            "x = 2 + 3 * 4; y = (2 + 3) * 4; z = 2 ^ 3 ^ 2;",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["x"].as_f64().unwrap(), 14.0);
        assert_eq!(ctx.symtab["y"].as_f64().unwrap(), 20.0);
        // right-associative: 2^(3^2) = 512
        assert_eq!(ctx.symtab["z"].as_f64().unwrap(), 512.0);
    }

    #[test]
    fn matrices_and_builtins() {
        let ctx = run_src(
            "X = matrix(2.0, 3, 4);
             s = sum(X);
             c = colSums(X);
             n = nrow(X) * ncol(X);",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["s"].as_f64().unwrap(), 24.0);
        assert_eq!(ctx.symtab["c"].as_matrix().unwrap().shape(), (1, 4));
        assert_eq!(ctx.symtab["n"].as_f64().unwrap(), 12.0);
    }

    #[test]
    fn tsmm_peephole_fires() {
        let program = compile_script("G = t(X) %*% X;", &LimaConfig::base()).unwrap();
        match &program.body[0] {
            Block::Basic { instrs, .. } => {
                assert_eq!(instrs.len(), 1);
                assert!(matches!(instrs[0].op, Op::Tsmm(TsmmSide::Left)));
            }
            _ => panic!(),
        }
        let program = compile_script("G = X %*% t(X);", &LimaConfig::base()).unwrap();
        match &program.body[0] {
            Block::Basic { instrs, .. } => {
                assert!(matches!(instrs[0].op, Op::Tsmm(TsmmSide::Right)));
            }
            _ => panic!(),
        }
        // Different operands: no peephole.
        let program = compile_script("G = t(X) %*% Y;", &LimaConfig::base()).unwrap();
        match &program.body[0] {
            Block::Basic { instrs, .. } => {
                assert!(instrs.iter().any(|i| matches!(i.op, Op::MatMult)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn control_flow_executes() {
        let ctx = run_src(
            "s = 0; for (i in 1:10) { s = s + i; }
             if (s == 55) { ok = 1; } else { ok = 0; }
             w = 1; while (w < 100) { w = w * 3; }",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["s"].as_f64().unwrap(), 55.0);
        assert_eq!(ctx.symtab["ok"].as_f64().unwrap(), 1.0);
        assert_eq!(ctx.symtab["w"].as_f64().unwrap(), 243.0);
    }

    #[test]
    fn indexing_forms_execute() {
        let ctx = run_src(
            "X = rand(rows=6, cols=5, seed=3);
             a = X[2:4, 1:2];
             b = X[, 3];
             c = X[5, ];
             s = sample(5, 3, 7);
             d = X[, s];",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["a"].as_matrix().unwrap().shape(), (3, 2));
        assert_eq!(ctx.symtab["b"].as_matrix().unwrap().shape(), (6, 1));
        assert_eq!(ctx.symtab["c"].as_matrix().unwrap().shape(), (1, 5));
        assert_eq!(ctx.symtab["d"].as_matrix().unwrap().shape(), (6, 3));
    }

    #[test]
    fn indexed_assignment_executes() {
        let ctx = run_src(
            "B = matrix(0.0, 3, 3);
             B[2, ] = matrix(7.0, 1, 3);
             B[1, 1] = as.matrix(5);",
            LimaConfig::base(),
        );
        let b = ctx.symtab["B"].as_matrix().unwrap();
        assert_eq!(b.get(1, 0), 7.0);
        assert_eq!(b.get(0, 0), 5.0);
    }

    #[test]
    fn functions_with_defaults_and_named_args() {
        let ctx = run_src(
            "f = function(X, scale = 2.0) return (Y) { Y = X * scale; }
             A = matrix(3.0, 2, 2);
             B = f(A);
             C = f(A, scale = 10.0);
             D = f(scale = 4.0, X = A);",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["B"].as_matrix().unwrap().get(0, 0), 6.0);
        assert_eq!(ctx.symtab["C"].as_matrix().unwrap().get(0, 0), 30.0);
        assert_eq!(ctx.symtab["D"].as_matrix().unwrap().get(0, 0), 12.0);
    }

    #[test]
    fn multi_return_functions() {
        let ctx = run_src(
            "split = function(X) return (a, b) {
                a = X[1:2, ]; b = X[3:4, ];
             }
             X = rand(rows=4, cols=3, seed=1);
             [top, bottom] = split(X);",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["top"].as_matrix().unwrap().shape(), (2, 3));
        assert_eq!(ctx.symtab["bottom"].as_matrix().unwrap().shape(), (2, 3));
    }

    #[test]
    fn eigen_multi_assign() {
        let ctx = run_src(
            "C = matrix(0.0, 2, 2);
             C[1, 1] = as.matrix(2); C[2, 2] = as.matrix(5);
             [evals, evects] = eigen(C);",
            LimaConfig::base(),
        );
        assert_eq!(ctx.symtab["evals"].as_matrix().unwrap().shape(), (2, 1));
    }

    #[test]
    fn parfor_executes_in_parallel() {
        let ctx = run_src(
            "B = matrix(0.0, 8, 2);
             parfor (i in 1:8) {
                B[i, ] = matrix(1.0, 1, 2) * i;
             }",
            LimaConfig::lima(),
        );
        let b = ctx.symtab["B"].as_matrix().unwrap();
        for i in 0..8 {
            assert_eq!(b.get(i, 0), (i + 1) as f64);
        }
    }

    #[test]
    fn print_and_string_concat() {
        let ctx = run_src("x = 2; print('x = ' + toString(x));", LimaConfig::base());
        assert_eq!(ctx.stdout, vec!["x = 2"]);
    }

    #[test]
    fn compile_errors_are_reported() {
        assert!(compile_script("x = unknownFn(1)", &LimaConfig::base()).is_err());
        assert!(compile_script("x = rand(cols=2)", &LimaConfig::base()).is_err());
        assert!(compile_script(
            "f = function(a) return (b) { b = a; } x = f()",
            &LimaConfig::base()
        )
        .is_err());
        assert!(compile_script(
            "f = function(a) return (b) { b = a; } x = f(1, 2)",
            &LimaConfig::base()
        )
        .is_err());
        assert!(compile_script("x = eigen(C)", &LimaConfig::base()).is_err());
        assert!(compile_script("x = 1 +", &LimaConfig::base()).is_err());
    }

    #[test]
    fn lineage_builtin_returns_serialized_log() {
        let ctx = run_src(
            "X = matrix(1.0, 2, 2);
             Y = X + X;
             l = lineage(Y);
             print(l);",
            LimaConfig::lima(),
        );
        let log = ctx.stdout.join("");
        assert!(log.contains("::out"), "log: {log}");
        assert!(log.contains(" I +"), "log: {log}");
        // The printed log deserializes back into a valid lineage DAG.
        assert!(lima_core::lineage::serialize::deserialize_lineage(&log).is_ok());
        // lineage() on an expression is a compile error; without tracing it
        // is a runtime error.
        assert!(compile_script("l = lineage(1 + 2);", &LimaConfig::base()).is_err());
        let program = compile_script(
            "X = matrix(1.0, 1, 1); l = lineage(X);",
            &LimaConfig::base(),
        )
        .unwrap();
        let mut c = lima_runtime::ExecutionContext::new(LimaConfig::base());
        assert!(lima_runtime::execute_program(&program, &mut c).is_err());
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a1 = compile_script_uncompiled("x = 1").unwrap();
        let a2 = compile_script_uncompiled("x = 1").unwrap();
        let b = compile_script_uncompiled("x = 2").unwrap();
        assert_eq!(a1.fingerprint, a2.fingerprint);
        assert_ne!(a1.fingerprint, b.fingerprint);
    }

    #[test]
    fn string_plus_concatenates_at_runtime() {
        // `+` with a string operand must concatenate, mirroring DML.
        let ctx = run_src("msg = 'n=' + 5; print(msg);", LimaConfig::base());
        assert_eq!(ctx.stdout, vec!["n=5"]);
    }
}
